//! Seeded violation corpus for the span-emit determinism lint markers.
//! Like `unordered_send.rs`, this file is NOT compiled — it exists so CI
//! can prove `cargo xtask lint xtask/fixtures` still flags hash-ordered
//! iteration on the paths that feed the span ring: the merged span export
//! must stay byte-identical under equal seeds, so span emission is as
//! order-sensitive as a send.

use std::collections::{HashMap, HashSet};

struct Telemetry;
impl Telemetry {
    #[allow(clippy::too_many_arguments)]
    fn record_span(
        &self,
        _start: u64,
        _end: u64,
        _trace: u64,
        _span: u64,
        _parent: u64,
        _query: u64,
        _stage: &'static str,
        _rows: u64,
        _bytes: u64,
        _aux: u64,
    ) {
    }
    fn span_jsonl(&self) -> String {
        String::new()
    }
}

/// VIOLATION: per-group state walked in hash order while the function emits
/// a span — any ordering leak (first/last group, tie-breaks) would make the
/// equal-seed byte-identical span export flap.
fn flush_with_span(tel: &Telemetry, now: u64, groups: &HashMap<String, u64>) {
    let mut rows = 0;
    let mut first = String::new();
    for (key, n) in groups.iter() {
        if rows == 0 {
            first = key.clone();
        }
        rows += n;
    }
    let _ = first;
    tel.record_span(now, now, 1, 2, 1, 7, "window.flush", rows, 0, 0);
}

/// VIOLATION: hash-set order reaches the span export path.
fn export_members(tel: &Telemetry) -> String {
    let members: HashSet<u64> = HashSet::new();
    let mut out = String::new();
    for m in &members {
        out.push_str(&m.to_string());
    }
    out.push_str(&tel.span_jsonl());
    out
}

/// CLEAN: same shape, materialised into a B-tree order before emission.
fn flush_sorted(tel: &Telemetry, now: u64, groups: &HashMap<String, u64>) {
    let ordered: std::collections::BTreeMap<_, _> = groups.iter().collect();
    let rows = ordered.values().map(|n| **n).sum();
    tel.record_span(now, now, 1, 2, 1, 7, "window.flush", rows, 0, 0);
}
