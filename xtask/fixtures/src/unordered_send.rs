//! Seeded violation corpus for the send-path determinism lint.  This file
//! is NOT compiled — it lives outside any crate's source tree and exists so
//! CI can prove `cargo xtask lint` still catches the PR 7 bug class:
//! `cargo xtask lint xtask/fixtures` must FAIL with exactly the findings
//! below, while the real tree passes.

use std::collections::{HashMap, HashSet};

struct Ctx;
impl Ctx {
    fn send(&mut self, _to: u64, _msg: &str) {}
    fn output(&mut self, _msg: &str) {}
}

/// VIOLATION: hash-order fan-out straight into the wire.
fn broadcast_pending(ctx: &mut Ctx, pending: &HashMap<u64, String>) {
    for (to, msg) in pending.iter() {
        ctx.send(*to, msg);
    }
}

/// VIOLATION: hash-set order reaches an output stream.
fn report_peers(ctx: &mut Ctx) {
    let peers: HashSet<u64> = HashSet::new();
    for p in &peers {
        ctx.output(&format!("peer {p}"));
    }
}

/// CLEAN: same shape, sorted before anything escapes.
fn broadcast_sorted(ctx: &mut Ctx, pending: &HashMap<u64, String>) {
    let mut items: Vec<_> = pending.iter().collect();
    items.sort_by_key(|(to, _)| **to);
    for (to, msg) in items {
        ctx.send(*to, msg);
    }
}

/// CLEAN: audited site — order is folded commutatively before the send.
fn merged_send(ctx: &mut Ctx, pending: &HashMap<u64, u64>) {
    let mut sum = 0;
    // det-lint: allow (commutative fold; order cannot reach the wire)
    for (_, v) in pending.iter() {
        sum += v;
    }
    ctx.send(0, &sum.to_string());
}

/// CLEAN: no send/trace/persist marker in this function.
fn local_count(pending: &HashMap<u64, String>) -> usize {
    pending.iter().count()
}
