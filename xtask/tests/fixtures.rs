//! The determinism lint against its seeded fixture corpus and the live
//! workspace: the fixture must FAIL with exactly the four seeded findings
//! (two send-path, two span-emit), and the real tree must PASS (PR 7
//! sorted every send path; the lint's job is to keep it that way).

use std::path::PathBuf;
use xtask::lint;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

#[test]
fn seeded_fixture_fails_with_expected_findings() {
    let findings = lint::lint_tree(&workspace_root().join("xtask/fixtures"));
    assert_eq!(
        findings.len(),
        4,
        "expected exactly the four seeded violations, got: {findings:?}"
    );
    assert_eq!(findings[0].name, "pending");
    assert_eq!(findings[0].marker, "ctx.send");
    assert_eq!(findings[1].name, "peers");
    assert_eq!(findings[1].marker, "ctx.output");
    assert_eq!(findings[2].name, "groups");
    assert_eq!(findings[2].marker, ".record_span(");
    assert_eq!(findings[3].name, "members");
    assert_eq!(findings[3].marker, "span_jsonl");
}

#[test]
fn live_tree_passes() {
    let findings = lint::lint_tree(&workspace_root());
    assert!(
        findings.is_empty(),
        "send-path determinism lint must pass on the tree: {findings:?}"
    );
}
