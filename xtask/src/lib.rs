//! Workspace automation library: the send-path determinism lint.
//!
//! The `xtask` binary (`cargo xtask lint`) is a thin wrapper over
//! [`lint::lint_tree`]; the logic lives here so the fixture tests can drive
//! it in-process.

pub mod lint;
