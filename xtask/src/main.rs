//! `cargo xtask` — workspace automation.
//!
//! The one subcommand today is `lint`: the send-path determinism lint that
//! mechanically enforces the invariant PR 7 established by hand — nothing
//! iterates a `HashMap`/`HashSet` in unordered order on a path that sends
//! messages, emits trace events, or persists state.  See
//! `docs/ANALYSIS.md` ("The determinism lint") for the rule, the
//! suppressions, and the allowlist-annotation workflow.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = match args.next() {
                Some(dir) => PathBuf::from(dir),
                None => workspace_root(),
            };
            let findings = lint::lint_tree(&root);
            for f in &findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                eprintln!("xtask lint: ok");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask lint: {} unordered-iteration finding(s) on send/trace/persist paths",
                    findings.len()
                );
                eprintln!(
                    "  fix: sort before emitting, or annotate an audited site with \
                     `// det-lint: allow (reason)`"
                );
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [dir]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: the manifest dir's parent (xtask lives one level in).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}
