//! The send-path determinism lint: a dependency-free lexical scanner that
//! flags unordered `HashMap`/`HashSet` iteration inside functions that send
//! messages, emit trace events, or persist state.
//!
//! Rationale: the simulator's equal-seed byte-identical trace guarantee (and
//! the durable-segment format) dies the moment hash-iteration order reaches
//! a wire, trace, or disk path — the PR 7 bug class.  `syn` is not available
//! offline, so the scanner is lexical: it strips comments/strings, collects
//! identifiers bound to `HashMap`/`HashSet` (lets, struct fields,
//! parameters), carves the file into `fn` bodies by brace matching, and
//! flags `name.iter()`-family calls and `for _ in name` loops inside bodies
//! that contain a send/trace/persist marker.
//!
//! Two suppressions keep it honest with the tree's established idiom:
//!
//! * **sorted-nearby** — the flagged line or the five lines after it call
//!   `.sort`/`.sort_by`/`.sort_unstable`/`.sort_by_key`, or collect into a
//!   `BTreeMap`/`BTreeSet` (the standard "materialise then order" pattern);
//! * **audited allowlist** — the flagged line or the two lines above it
//!   carry a `det-lint: allow (reason)` comment.  Use this only for sites
//!   where order provably cannot reach the wire (e.g. commutative merges).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Substrings marking a function as a send/trace/persist path.
const MARKERS: &[&str] = &[
    "ctx.send",
    "ctx.output",
    ".event(",
    "persist",
    "write_segment",
    "trace_jsonl",
    ".record_span(",
    "span_jsonl",
];

/// Iteration methods whose order is the hash map's internal order.
const UNORDERED_CALLS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (workspace-relative when possible).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The `HashMap`/`HashSet` binding iterated.
    pub name: String,
    /// The marker that makes the enclosing function a sensitive path.
    pub marker: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: unordered iteration of `{}` in a function that reaches `{}`",
            self.file, self.line, self.name, self.marker
        )
    }
}

/// Lint every `.rs` file under `root`'s source directories.
pub fn lint_tree(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        if let Ok(source) = fs::read_to_string(&path) {
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            findings.extend(lint_file(&label, &source));
        }
    }
    findings
}

/// Recursively collect linted `.rs` files: only `src/` trees, skipping
/// build output and the lint's own test fixtures.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            // Lint library/binary sources; tests and benches assert rather
            // than send, and fixtures are the lint's own test corpus.
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let in_src = rel
                .components()
                .any(|c| c.as_os_str().to_string_lossy() == "src");
            if in_src {
                out.push(path.clone());
            }
        }
    }
}

/// Lint one file's source text.
pub fn lint_file(label: &str, source: &str) -> Vec<Finding> {
    let original: Vec<&str> = source.lines().collect();
    let sanitized = sanitize(source);
    let sanitized: Vec<&str> = sanitized.lines().collect();

    let hash_names = collect_hash_names(&sanitized);
    if hash_names.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    for (start, end) in function_spans(&sanitized) {
        let Some(marker) = MARKERS.iter().find(|m| {
            sanitized[start..=end.min(sanitized.len() - 1)]
                .iter()
                .any(|l| l.contains(*m))
        }) else {
            continue;
        };
        for idx in start..=end.min(sanitized.len() - 1) {
            let line = sanitized[idx];
            for name in &hash_names {
                if !iterates_unordered(line, name) {
                    continue;
                }
                if sorted_nearby(&sanitized, idx) || allow_annotated(&original, idx) {
                    continue;
                }
                findings.push(Finding {
                    file: label.to_string(),
                    line: idx + 1,
                    name: name.clone(),
                    marker: (*marker).to_string(),
                });
            }
        }
    }
    findings
}

/// `line` iterates `name` in hash order: `name.iter()`-family or a
/// `for _ in name` / `for _ in &name` loop header.
fn iterates_unordered(line: &str, name: &str) -> bool {
    for call in UNORDERED_CALLS {
        let pat = format!("{name}{call}");
        if let Some(pos) = line.find(&pat) {
            if !prev_is_ident(line, pos) {
                return true;
            }
        }
    }
    if let Some(pos) = line.find(" in ") {
        let tail = line[pos + 4..].trim_start().trim_start_matches('&');
        let tail = tail.trim_start_matches("mut ");
        if line.trim_start().starts_with("for ") && tail.starts_with(name) {
            let rest = &tail[name.len()..];
            // Exactly the binding (loop body brace or end of line), not a
            // method call (covered above) or a longer identifier.
            if rest.trim_start().starts_with('{') || rest.trim().is_empty() {
                return true;
            }
        }
    }
    false
}

/// The character before `pos` continues an identifier (so the match is a
/// suffix of a longer name).
fn prev_is_ident(line: &str, pos: usize) -> bool {
    pos > 0
        && line[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// The flagged line or the five after it impose an order before anything
/// escapes: a `.sort*` call or a collect into an ordered B-tree container.
fn sorted_nearby(lines: &[&str], idx: usize) -> bool {
    lines
        .iter()
        .skip(idx)
        .take(6)
        .any(|l| l.contains(".sort") || l.contains("BTreeMap") || l.contains("BTreeSet"))
}

/// The flagged line or the two above carry an audited-site annotation.
fn allow_annotated(original: &[&str], idx: usize) -> bool {
    original
        .iter()
        .take(idx + 1)
        .rev()
        .take(3)
        .any(|l| l.contains("det-lint: allow"))
}

/// Names bound to a `HashMap`/`HashSet` by a `let`, a struct field, or a
/// typed parameter, collected lexically.
fn collect_hash_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            // `name: HashMap<...>` — fields, params, typed lets.
            let mut search = 0;
            while let Some(found) = line[search..].find(ty) {
                let abs = search + found;
                search = abs + ty.len();
                // `name: HashMap<…>`, `name: &HashMap<…>`, `name: &mut
                // HashMap<…>` — fields, params, typed lets all reduce to
                // "identifier, colon" once references are peeled.
                let mut before = line[..abs].trim_end();
                if let Some(b) = before.strip_suffix("mut") {
                    before = b.trim_end();
                }
                before = before.trim_end_matches('&').trim_end();
                if let Some(colon) = before.strip_suffix(':') {
                    if let Some(name) = trailing_ident(colon) {
                        push_unique(&mut names, name);
                    }
                } else if let Some(eq) = before.strip_suffix('=') {
                    // `let name = HashMap::new()` / `with_capacity`.
                    if let Some(name) = trailing_ident(eq.trim_end()) {
                        push_unique(&mut names, name);
                    }
                }
            }
        }
    }
    names
}

/// The identifier ending `s`, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &s[start..end];
    let first = ident.chars().next()?;
    (first.is_alphabetic() || first == '_').then(|| ident.to_string())
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if name != "mut" && name != "let" && !names.contains(&name) {
        names.push(name);
    }
}

/// `(start_line, end_line)` spans of `fn` bodies, by brace matching over
/// the sanitized text.  Nested functions fold into their parent's span —
/// conservative in the right direction (a nested helper inherits its
/// parent's sensitivity).
fn function_spans(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        let is_fn = line.trim_start().starts_with("fn ")
            || line.contains(" fn ")
            || line.trim_start().starts_with("pub fn ");
        if !is_fn {
            i += 1;
            continue;
        }
        // Find the opening brace (may be lines below, after the signature).
        let mut depth: i64 = 0;
        let mut opened = false;
        let start = i;
        let mut j = i;
        'outer: while j < lines.len() {
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // A semicolon before any brace: a trait method
                    // declaration, no body to scan.
                    ';' if !opened => {
                        break 'outer;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                spans.push((start, j));
                break;
            }
            j += 1;
        }
        i = if opened { j.max(i) + 1 } else { i + 1 };
    }
    spans
}

/// Blank out comments and string/char literals, preserving line structure,
/// so lexical matching never fires inside them.
fn sanitize(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut in_block_comment = 0u32;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if in_block_comment > 0 {
            if c == '*' && next == Some('/') {
                in_block_comment -= 1;
                i += 2;
            } else {
                if c == '/' && next == Some('*') {
                    in_block_comment += 1;
                    i += 1;
                }
                if c == '\n' {
                    out.push('\n');
                }
                i += 1;
            }
            continue;
        }
        match c {
            '/' if next == Some('/') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                in_block_comment = 1;
                i += 2;
            }
            '"' => {
                // String literal (handles escapes; raw strings r"…" land
                // here too since the quote is what matters).
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if bytes[i] == '"' {
                        i += 1;
                        break;
                    }
                    if bytes[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
                out.push('"');
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within three
                // chars (`'x'`, `'\n'`, `'\''`).
                if next == Some('\\') {
                    // Escaped char literal.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                    out.push('\'');
                } else if bytes.get(i + 2).copied() == Some('\'') {
                    i += 3;
                    out.push('\'');
                } else {
                    // Lifetime: keep the apostrophe, scan on.
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIOLATION: &str = r#"
use std::collections::HashMap;
fn flush(ctx: &mut Ctx) {
    let pending: HashMap<String, u64> = HashMap::new();
    for (k, v) in pending.iter() {
        ctx.send(k, v);
    }
}
"#;

    #[test]
    fn flags_unordered_send() {
        let findings = lint_file("v.rs", VIOLATION);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].name, "pending");
        assert_eq!(findings[0].marker, "ctx.send");
    }

    #[test]
    fn sorted_iteration_passes() {
        let src = r#"
fn flush(ctx: &mut Ctx) {
    let pending: HashMap<String, u64> = HashMap::new();
    let mut items: Vec<_> = pending.iter().collect();
    items.sort();
    for (k, v) in items {
        ctx.send(k, v);
    }
}
"#;
        assert!(lint_file("s.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = r#"
fn flush(ctx: &mut Ctx) {
    let pending: HashMap<String, u64> = HashMap::new();
    // det-lint: allow (merged commutatively before any send)
    for (k, v) in pending.iter() {
        merge(k, v);
    }
    ctx.send(0, merged);
}
"#;
        assert!(lint_file("a.rs", src).is_empty());
    }

    #[test]
    fn non_send_function_passes() {
        let src = r#"
fn count(pending: &HashMap<String, u64>) -> usize {
    pending.iter().count()
}
"#;
        assert!(lint_file("n.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = r#"
fn doc(ctx: &mut Ctx) {
    // pending.iter() in a comment
    let s = "pending.iter()";
    ctx.send(0, s);
}
"#;
        assert!(lint_file("c.rs", src).is_empty());
    }

    #[test]
    fn span_emit_path_is_sensitive() {
        // Span rows/bytes folded in hash order would make the equal-seed
        // byte-identical span export flap — the path is as sensitive as a
        // send.
        let src = r#"
use std::collections::HashMap;
fn flush_span(tel: &Telemetry, now: u64) {
    let per_group: HashMap<String, u64> = HashMap::new();
    let mut rows = 0;
    for (_, n) in per_group.iter() {
        rows += n;
    }
    tel.record_span(now, now, 1, 2, 1, 7, "window.flush", rows, 0, 0);
}
"#;
        let findings = lint_file("sp.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].marker, ".record_span(");
    }

    #[test]
    fn for_loop_over_set_is_flagged() {
        let src = r#"
use std::collections::HashSet;
fn flush(ctx: &mut Ctx) {
    let peers: HashSet<u64> = HashSet::new();
    for p in &peers {
        ctx.send(p, ());
    }
}
"#;
        let findings = lint_file("f.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].name, "peers");
    }
}
