//! # pier — facade crate for the PIER reproduction
//!
//! PIER ("Peer-to-peer Information Exchange and Retrieval") is an
//! Internet-scale relational query processor built over a distributed hash
//! table, described in *"The Architecture of PIER: an Internet-Scale Query
//! Processor"* (CIDR 2005).  This workspace reproduces the system in Rust.
//!
//! This crate simply re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! `pier` crate:
//!
//! * [`runtime`] — Virtual Runtime Interface, discrete-event simulator,
//!   physical runtime, UdpCC.
//! * [`dht`] — the overlay network: identifiers, Chord-style routing,
//!   soft-state object manager, Table-2 wrapper API, distribution and
//!   aggregation trees.
//! * [`pht`] — Prefix Hash Tree range-index substrate.
//! * [`qp`] — the query processor: tuples, operators, opgraphs, dataflow,
//!   dissemination, hierarchical operators, SQL-ish front end.
//! * [`cq`] — the continuous-query subsystem: tumbling/sliding windows with
//!   budgeted per-node state, snapshot/delta output semantics, and the
//!   soft-state lease lifecycle of standing queries.
//! * [`mqo`] — multi-query sharing: plan fingerprinting, the vectorised
//!   predicate index, and share-group execution that turns N
//!   constant-varied standing queries into one shared dataflow.
//! * [`analyze`] — static plan cost/boundedness analysis (PIQL-style
//!   predeclared bounds) and the SLO admission layer that admits, sheds to
//!   sampling, or rejects standing queries before dissemination (see
//!   `docs/ANALYSIS.md`).
//! * [`security`] — the §4.1 defenses: duplicate-insensitive sketches,
//!   redundant aggregation topologies and adversary fidelity metrics, rate
//!   limitation, spot-checking with early commitment, and the
//!   accountability/reputation database.
//! * [`gnutella`] — a Gnutella-style flooding-search baseline used by the
//!   Figure-1 comparison.
//! * [`telemetry`] — the self-monitoring layer: per-node metric hubs
//!   (counters, gauges, histograms) and bounded structured event traces,
//!   stamped with sim time for deterministic replay, queryable through
//!   PIER itself via the `system.metrics` namespace (see
//!   `docs/OBSERVABILITY.md`).
//! * [`trace`] — sampled distributed tracing: wire-propagated trace
//!   contexts, deterministic merged span exports (JSONL + Chrome
//!   `trace_event`), and the `EXPLAIN ANALYZE` [`trace::QueryProfile`]
//!   that reconciles measured spans against `pier-analyze`'s static
//!   bounds.
//! * [`harness`] — cluster builder, workload generators, metrics and the
//!   experiment drivers that regenerate every figure/table of the paper.
//!
//! See `README.md` for a quickstart, the crate map and how to run the
//! examples and benches.

pub use pier_analyze as analyze;
pub use pier_core as qp;
pub use pier_cq as cq;
pub use pier_dht as dht;
pub use pier_gnutella as gnutella;
pub use pier_harness as harness;
pub use pier_mqo as mqo;
pub use pier_pht as pht;
pub use pier_runtime as runtime;
pub use pier_security as security;
pub use pier_telemetry as telemetry;
pub use pier_trace as trace;
