//! Multi-query sharing (pier-mqo): equivalence with independent execution
//! and share-group lifecycle over a live cluster.
//!
//! The load-bearing claim of the sharing layer is that it is *invisible* in
//! the results: N constant-varied standing queries executed through share
//! groups deliver, per query and per window, exactly the rows independent
//! per-query execution delivers — under steady state, under mid-stream
//! query install/uninstall, and under node churn.  These tests run the
//! `many_tenants` workload twice from the same seed (sharing on/off) and
//! compare the per-tenant per-window result multisets, then pin the
//! refcounted teardown: once every tenant's query ends, no node retains a
//! share group.

use pier::harness::tenants::{many_tenants, ManyTenantsConfig, ManyTenantsOutcome};
use pier::qp::Value;
use pier::runtime::SimTime;
use std::collections::BTreeMap;

/// Canonical view of one tenant's windows restricted to `[from, to]`:
/// window bounds → sorted row renderings (a multiset fingerprint).
fn canonical(
    outcome: &ManyTenantsOutcome,
    tenant: usize,
    from: SimTime,
    to: SimTime,
) -> BTreeMap<(SimTime, SimTime), Vec<String>> {
    outcome.tenants[tenant]
        .windows
        .iter()
        .filter(|((start, end), _)| *start >= from && *end <= to)
        .map(|(bounds, rows)| {
            let mut rendered: Vec<String> =
                rows.iter().map(std::string::ToString::to_string).collect();
            rendered.sort();
            (*bounds, rendered)
        })
        .collect()
}

/// Compare every tenant's windows between a shared and an independent run
/// over the spans where the two executions are *defined* to agree:
///
/// * from the first window opening after the tenant installed (a shared
///   member joining a live group sees the group's already-accumulated state
///   for in-flight windows — a strictly more complete first answer);
/// * up to the last window fully refined before the tenant's query wound
///   down (a query dying mid-refinement truncates the two modes' late
///   partials at different relay depths);
/// * excluding a guard band around a node-churn instant: a killed node
///   holds different in-flight window state in the two modes (that is the
///   sharing), so windows *straddling* the kill lose different partials —
///   windows fully before it, and windows opening after repair completed,
///   must still match exactly.  Repair spans failure detection, ring
///   stabilisation, owner-cache expiry, and — since lease renewals back
///   off exponentially on no-progress rounds — up to two stretched renewal
///   rounds before churned-in nodes receive the plan, so the post-churn
///   guard is 12 s: a seed sweep puts the last loss-affected window start
///   at churn + 9 s, and nothing diverges beyond it.
fn assert_equivalent(
    shared: &ManyTenantsOutcome,
    independent: &ManyTenantsOutcome,
    label: &str,
) -> usize {
    assert_eq!(shared.tenants.len(), independent.tenants.len());
    assert_eq!(shared.churn_at, independent.churn_at);
    let mut compared_rows = 0usize;
    for tenant in 0..shared.tenants.len() {
        let s = &shared.tenants[tenant];
        let i = &independent.tenants[tenant];
        assert_eq!(s.query_id, i.query_id, "same seed ⇒ same ids");
        assert_eq!(s.src, i.src);
        let from = s.installed_at.max(i.installed_at) + 3_000_000;
        let to = if s.ends_at < shared.stream.1 + 10_000_000 {
            // Early teardown: stop at windows fully refined pre-teardown.
            s.ends_at.saturating_sub(6_000_000)
        } else {
            shared.stream.1
        };
        let spans: Vec<(SimTime, SimTime)> = match shared.churn_at {
            Some(churn) => vec![
                (from, churn.saturating_sub(4_000_000).min(to)),
                ((churn + 12_000_000).max(from), to),
            ],
            None => vec![(from, to)],
        };
        for (from, to) in spans {
            if from >= to {
                continue;
            }
            let a = canonical(shared, tenant, from, to);
            let b = canonical(independent, tenant, from, to);
            assert_eq!(
                a, b,
                "{label}: tenant {tenant} ({}) diverges between shared and independent \
                 execution in [{from}, {to}]",
                s.src
            );
            compared_rows += a.values().map(Vec::len).sum::<usize>();
        }
    }
    compared_rows
}

/// Shared runs must leave nothing behind once every tenant ended.
fn assert_no_leaked_groups(shared: &ManyTenantsOutcome, label: &str) {
    assert_eq!(
        (shared.residual_groups, shared.residual_members),
        (0, 0),
        "{label}: share groups must be retired once all members ended"
    );
}

#[test]
fn shared_execution_matches_independent_execution_steady_state() {
    let mut cfg = ManyTenantsConfig::new(10, 24, 12, 61);
    cfg.sharing = true;
    let shared = many_tenants(&cfg);
    cfg.sharing = false;
    let independent = many_tenants(&cfg);
    // The stream actually exercised sharing…
    assert!(shared.max_shared_groups >= 1, "tenants must form a group");
    assert_eq!(independent.max_shared_groups, 0);
    // …results are identical, and the comparison is not vacuous.
    let rows = assert_equivalent(&shared, &independent, "steady");
    assert!(
        rows > 100,
        "equivalence must cover a substantial result set, covered {rows}"
    );
    // Every tenant must have received real windows with its own source.
    for t in &shared.tenants {
        assert!(
            !t.windows.is_empty(),
            "tenant {} received no windows",
            t.src
        );
        for rows in t.windows.values() {
            for row in rows {
                assert_eq!(row.get("src").and_then(Value::as_str), Some(t.src.as_str()));
            }
        }
    }
    assert_no_leaked_groups(&shared, "steady");
}

#[test]
fn shared_execution_matches_independent_under_install_uninstall_mid_stream() {
    let mut cfg = ManyTenantsConfig::new(8, 16, 15, 77);
    cfg.late_installs = 4;
    cfg.early_uninstalls = 4;
    cfg.sharing = true;
    let shared = many_tenants(&cfg);
    cfg.sharing = false;
    let independent = many_tenants(&cfg);
    let rows = assert_equivalent(&shared, &independent, "membership churn");
    assert!(rows > 50, "covered {rows}");
    // Late installs joined the (already live) group and still got windows.
    for tenant in 12..16 {
        assert!(
            !shared.tenants[tenant].windows.is_empty(),
            "late tenant {tenant} received no windows"
        );
    }
    assert_no_leaked_groups(&shared, "membership churn");
}

#[test]
fn shared_execution_matches_independent_under_node_churn() {
    // 28 s of stream keeps the post-repair comparison span (churn + 12 s
    // onward) wide enough that the equivalence check is not vacuous.
    let mut cfg = ManyTenantsConfig::new(10, 12, 28, 93);
    cfg.churn = Some((6, 2, 2));
    cfg.sharing = true;
    let shared = many_tenants(&cfg);
    cfg.sharing = false;
    let independent = many_tenants(&cfg);
    let rows = assert_equivalent(&shared, &independent, "node churn");
    assert!(rows > 50, "covered {rows}");
    assert_no_leaked_groups(&shared, "node churn");
}
