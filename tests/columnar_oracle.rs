//! Differential oracle suite for the typed columnar layout.
//!
//! Every property here pits the typed [`Column`] layouts (native `i64`/`f64`
//! buffers, dictionary and arena strings, validity bitmaps) against the
//! `Vec<Value>` **reference layout** over the same logical rows:
//!
//! * ingest inference reproduces the exact row values (bit-for-bit, NaNs
//!   included — values are compared through their byte encoding);
//! * the chunk body codec round-trips encode → decode → re-encode
//!   byte-identically, for every layout, and its length matches the wire
//!   accounting;
//! * every kernel — compiled predicate masks (`eval_column`), filter,
//!   gather, group-by aggregation, the `pier-mqo` predicate index, the
//!   chunk-native symmetric hash join — produces the same output over the
//!   typed chunk as over the reference chunk, which in turn matches per-row
//!   evaluation.
//!
//! Building the `pier-core` crate with `--features reference-layout` forces
//! every ingest path onto the reference layout, so the whole workspace test
//! suite doubles as the fallback-arm oracle run (CI runs both).

use pier::mqo::PredicateIndex;
use pier::qp::tuple::ColumnChunk;
use pier::qp::{
    AggFunc, CmpOp, Column, CompiledPredicate, Expr, GroupBy, JoinSide, LocalOperator, Schema,
    SchemaRegistry, SymmetricHashJoin, Tuple, TupleBatch, Value,
};
use pier::runtime::WireSize;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic SplitMix64 stream turning one sampled `u64` into a whole
/// mixed-type chunk (the shim has no recursive value strategies).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Column shapes covering every typed layout plus the degradation paths.
const PROFILES: usize = 9;

fn gen_value(rng: &mut Gen, profile: usize) -> Value {
    match profile {
        // Pure ints, occasionally extreme.
        0 => Value::Int(if rng.chance(5) {
            i64::MIN + rng.below(3) as i64
        } else {
            rng.below(50) as i64 - 25
        }),
        // Ints with nulls (validity bitmap; leading nulls exercise the
        // deferred promotion).
        1 => {
            if rng.chance(30) {
                Value::Null
            } else {
                Value::Int(rng.below(1000) as i64)
            }
        }
        // Floats: fractional, integral (hash-kernel cast path), huge
        // integral (beyond 2^53), NaN, and ±0.
        2 => Value::Float(match rng.below(6) {
            0 => rng.below(100) as f64 + 0.5,
            1 => rng.below(100) as f64,
            2 => 9_007_199_254_740_993.0 + rng.below(4) as f64,
            3 => f64::NAN,
            4 => -0.0,
            _ => -(rng.below(50) as f64) * 1.25,
        }),
        // Floats with nulls.
        3 => {
            if rng.chance(25) {
                Value::Null
            } else {
                Value::Float(rng.below(40) as f64 / 4.0)
            }
        }
        // Bools with nulls.
        4 => match rng.below(3) {
            0 => Value::Null,
            1 => Value::Bool(false),
            _ => Value::Bool(true),
        },
        // Low-cardinality strings (dictionary layout), some nulls.
        5 => {
            if rng.chance(10) {
                Value::Null
            } else {
                Value::str(["alpha", "beta", "gamma", "delta"][rng.below(4) as usize])
            }
        }
        // High-cardinality strings: spills the dictionary into the arena.
        6 => Value::Str(format!("s{}-{}", rng.below(1 << 20), rng.below(97)).into()),
        // Bytes: always the reference layout.
        7 => Value::bytes(
            (0..rng.below(6))
                .map(|_| rng.next() as u8)
                .collect::<Vec<_>>(),
        ),
        // Mixed types: degrades a typed column back to the reference layout
        // mid-ingest.
        _ => match rng.below(5) {
            0 => Value::Int(rng.below(30) as i64),
            1 => Value::Float(rng.below(30) as f64 + 0.25),
            2 => Value::str("mixed"),
            3 => Value::Null,
            _ => Value::Bool(rng.chance(50)),
        },
    }
}

/// One generated chunk in both layouts over identical logical rows.
struct OraclePair {
    schema: Arc<Schema>,
    values: Vec<Vec<Value>>,
    typed: ColumnChunk,
    reference: ColumnChunk,
}

fn gen_pair(seed: u64, rows: usize, cols: usize) -> OraclePair {
    let mut rng = Gen::new(seed);
    let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = SchemaRegistry::global().intern("oracle", &name_refs);
    let values: Vec<Vec<Value>> = (0..cols)
        .map(|_| {
            let profile = rng.below(PROFILES as u64) as usize;
            (0..rows).map(|_| gen_value(&mut rng, profile)).collect()
        })
        .collect();
    let typed = ColumnChunk::from_value_columns(Arc::clone(&schema), values.clone(), rows);
    let reference = ColumnChunk::from_columns(
        Arc::clone(&schema),
        values.iter().cloned().map(Column::values_layout).collect(),
        rows,
    );
    OraclePair {
        schema,
        values,
        typed,
        reference,
    }
}

/// Byte encoding of a value — the NaN-proof equality used throughout (two
/// values are "the same" iff their wire encodings are identical).
fn bytes_of(v: &Value) -> Vec<u8> {
    let mut buf = Vec::new();
    v.encode(&mut buf);
    buf
}

fn chunk_rows_bytes(chunk: &ColumnChunk) -> Vec<Vec<Vec<u8>>> {
    (0..chunk.rows())
        .map(|r| {
            (0..chunk.schema().arity())
                .map(|c| bytes_of(&chunk.col(c).value(r)))
                .collect()
        })
        .collect()
}

/// Random predicates exercising every vectorised kernel shape against the
/// generated columns: `col op const` in both orientations, `col op col`,
/// `Contains`, bare boolean columns, and conjunctions.
fn gen_predicates(rng: &mut Gen, cols: usize) -> Vec<Expr> {
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let mut out = Vec::new();
    for _ in 0..12 {
        let c = format!("c{}", rng.below(cols as u64));
        let op = ops[rng.below(6) as usize];
        let constant = gen_value(
            &mut Gen::new(rng.next()),
            rng.below(PROFILES as u64) as usize,
        );
        out.push(match rng.below(6) {
            0 => Expr::cmp(op, Expr::lit(constant), Expr::col(&c)),
            1 => {
                let c2 = format!("c{}", rng.below(cols as u64));
                Expr::cmp(op, Expr::col(&c), Expr::col(&c2))
            }
            2 => Expr::Contains(c, ["alpha", "et", "s1", "x"][rng.below(4) as usize].into()),
            3 => Expr::col(&c),
            4 => Expr::And(
                Box::new(Expr::cmp(op, Expr::col(&c), Expr::lit(constant))),
                Box::new(Expr::cmp(
                    CmpOp::Ge,
                    Expr::col(&format!("c{}", rng.below(cols as u64))),
                    Expr::lit(0i64),
                )),
            ),
            _ => Expr::cmp(op, Expr::col(&c), Expr::lit(constant)),
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ingest inference is lossless: every row of every typed column reads
    /// back bit-identical to the generated value, and identical to the
    /// reference layout's read of the same row.
    #[test]
    fn typed_ingest_is_lossless(seed: u64, rows in 0usize..40, cols in 1usize..7) {
        let pair = gen_pair(seed, rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                let want = bytes_of(&pair.values[c][r]);
                prop_assert_eq!(&bytes_of(&pair.typed.col(c).value(r)), &want);
                prop_assert_eq!(&bytes_of(&pair.reference.col(c).value(r)), &want);
                prop_assert_eq!(
                    &bytes_of(&pair.typed.col(c).value_ref(r).to_value()),
                    &want
                );
            }
        }
    }

    /// The chunk body codec round-trips **bit-for-bit** for every layout
    /// (dictionary pages, byte arenas, packed validity words): decode of an
    /// encode re-encodes to the identical byte string, preserves all row
    /// values, and the encoded length matches the wire accounting.
    #[test]
    fn chunk_codec_round_trips_bit_for_bit(seed: u64, rows in 0usize..48, cols in 1usize..6) {
        let pair = gen_pair(seed, rows, cols);
        for chunk in [&pair.typed, &pair.reference] {
            let mut encoded = Vec::new();
            chunk.encode_body(&mut encoded);
            prop_assert_eq!(
                encoded.len(),
                chunk.wire_size() - pair.schema.wire_size(),
                "encoded body length must equal the accounted body wire size"
            );
            let (decoded, used) = ColumnChunk::decode_body(Arc::clone(&pair.schema), &encoded)
                .expect("own encoding must decode");
            prop_assert_eq!(used, encoded.len());
            prop_assert_eq!(chunk_rows_bytes(&decoded), chunk_rows_bytes(chunk));
            let mut re_encoded = Vec::new();
            decoded.encode_body(&mut re_encoded);
            prop_assert_eq!(&re_encoded, &encoded, "re-encode must be byte-identical");
        }
    }

    /// Compiled predicate masks over typed chunks equal the reference
    /// layout's masks, which equal per-row evaluation over materialised
    /// tuples — for arbitrary mixed-type chunks with nulls and arbitrary
    /// predicate shapes.
    #[test]
    fn predicate_kernels_match_reference(seed: u64, rows in 0usize..40, cols in 1usize..6) {
        let pair = gen_pair(seed, rows, cols);
        let mut rng = Gen::new(seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
        for expr in gen_predicates(&mut rng, cols) {
            let mut pred = CompiledPredicate::new(expr.clone());
            let typed_mask = pred.for_schema(pair.typed.schema()).eval_column(&pair.typed);
            let ref_mask = pred
                .for_schema(pair.reference.schema())
                .eval_column(&pair.reference);
            prop_assert_eq!(&typed_mask, &ref_mask, "typed vs reference mask for {:?}", expr);
            for (r, &bit) in typed_mask.iter().enumerate() {
                let row = pair.typed.row(r);
                prop_assert_eq!(
                    bit,
                    pred.matches_tuple(&row),
                    "row {} of {:?}",
                    r,
                    expr
                );
            }
        }
    }

    /// `filter` and `gather` preserve rows bit-for-bit across layouts
    /// (duplicate and out-of-order gather indices included).
    #[test]
    fn filter_and_gather_match_reference(seed: u64, rows in 0usize..40, cols in 1usize..6) {
        let pair = gen_pair(seed, rows, cols);
        let mut rng = Gen::new(seed ^ 0xF00D);
        let mask: Vec<bool> = (0..rows).map(|_| rng.chance(55)).collect();
        prop_assert_eq!(
            chunk_rows_bytes(&pair.typed.filter(&mask)),
            chunk_rows_bytes(&pair.reference.filter(&mask))
        );
        let idx: Vec<u32> = if rows == 0 {
            Vec::new()
        } else {
            (0..rng.below(60))
                .map(|_| rng.below(rows as u64) as u32)
                .collect()
        };
        let typed_g = pair.typed.gather(&idx);
        prop_assert_eq!(typed_g.rows(), idx.len());
        prop_assert_eq!(
            chunk_rows_bytes(&typed_g),
            chunk_rows_bytes(&pair.reference.gather(&idx))
        );
    }

    /// Chunk-at-a-time group-by over the typed layout produces exactly the
    /// reference layout's groups and aggregates (rendered — NaN-tolerant).
    #[test]
    fn group_by_matches_reference(seed: u64, rows in 0usize..60) {
        let pair = gen_pair(seed, rows, 4);
        let mk = || {
            GroupBy::new(
                vec!["c0".into()],
                vec![
                    AggFunc::Count,
                    AggFunc::Sum("c1".into()),
                    AggFunc::Min("c2".into()),
                    AggFunc::Max("c3".into()),
                    AggFunc::Avg("c1".into()),
                ],
                "out",
            )
        };
        let render = |tuples: Vec<Tuple>| -> Vec<String> {
            tuples.iter().map(Tuple::to_string).collect()
        };
        let mut typed_gb = mk();
        let mut ref_gb = mk();
        let mut typed_batch = TupleBatch::default();
        typed_batch.push_chunk(pair.typed.clone());
        let mut ref_batch = TupleBatch::default();
        ref_batch.push_chunk(pair.reference.clone());
        prop_assert!(typed_gb.push_batch(&typed_batch).is_empty());
        prop_assert!(ref_gb.push_batch(&ref_batch).is_empty());
        prop_assert_eq!(render(typed_gb.flush()), render(ref_gb.flush()));
    }

    /// The shared predicate index computes identical member masks and union
    /// over typed and reference chunks (hash kernels, ordering kernels and
    /// the vectorised fallback alike).
    #[test]
    fn predicate_index_matches_reference(seed: u64, rows in 0usize..40, cols in 1usize..5) {
        let pair = gen_pair(seed, rows, cols);
        let mut rng = Gen::new(seed ^ 0xABCD);
        let mut index = PredicateIndex::new();
        let mut ids = Vec::new();
        for (id, expr) in gen_predicates(&mut rng, cols).into_iter().enumerate() {
            let id = id as u64;
            // Wrap some predicates in Or to force the fallback path too.
            let expr = if rng.chance(25) {
                Expr::Or(Box::new(expr), Box::new(Expr::col("c0")))
            } else {
                expr
            };
            prop_assert!(index.insert(id, expr));
            ids.push(id);
        }
        index.eval_chunk(&pair.typed);
        let typed_masks: Vec<Vec<bool>> = ids
            .iter()
            .map(|id| index.member_mask(*id).expect("indexed").to_bools())
            .collect();
        let typed_union = index.union().to_bools();
        index.eval_chunk(&pair.reference);
        for (id, want) in ids.iter().zip(&typed_masks) {
            prop_assert_eq!(
                &index.member_mask(*id).expect("indexed").to_bools(),
                want,
                "member {} diverged between layouts",
                id
            );
        }
        prop_assert_eq!(&index.union().to_bools(), &typed_union);
    }

    /// The gather-based symmetric hash join emits, as a multiset, exactly
    /// the tuples the reference layout (and hence the per-tuple path) emits,
    /// and tracks identical state sizes.
    #[test]
    fn join_matches_reference(seed: u64, rows in 0usize..30) {
        let left = gen_pair(seed, rows, 3);
        let right = gen_pair(seed ^ 0x77, rows / 2 + 1, 2);
        // Re-home the right chunks under a different table name so join
        // schemas differ (column collision handling included).
        let rnames: Vec<&str> = vec!["c0", "k1"];
        let rschema = SchemaRegistry::global().intern("rhs", &rnames);
        let right_typed = ColumnChunk::from_value_columns(
            Arc::clone(&rschema),
            right.values.clone(),
            right.typed.rows(),
        );
        let right_ref = ColumnChunk::from_columns(
            Arc::clone(&rschema),
            right.values.iter().cloned().map(Column::values_layout).collect(),
            right.typed.rows(),
        );
        let key = vec!["c0".to_string()];
        let mut typed_join = SymmetricHashJoin::new(key.clone(), key.clone(), "j");
        let mut ref_join = SymmetricHashJoin::new(key.clone(), key, "j");
        let mut typed_out: Vec<String> = Vec::new();
        let mut ref_out: Vec<String> = Vec::new();
        typed_out.extend(
            typed_join
                .push_chunk_batch(JoinSide::Left, &left.typed)
                .iter()
                .map(|t| t.to_string()),
        );
        ref_out.extend(
            ref_join
                .push_chunk(JoinSide::Left, &left.reference)
                .iter()
                .map(Tuple::to_string),
        );
        typed_out.extend(
            typed_join
                .push_chunk_batch(JoinSide::Right, &right_typed)
                .iter()
                .map(|t| t.to_string()),
        );
        ref_out.extend(
            ref_join
                .push_chunk(JoinSide::Right, &right_ref)
                .iter()
                .map(Tuple::to_string),
        );
        typed_out.sort();
        ref_out.sort();
        prop_assert_eq!(typed_out, ref_out);
        prop_assert_eq!(typed_join.state_size(), ref_join.state_size());
    }
}

/// The dictionary layout spills to the arena past its cardinality cap and
/// both sides of the spill keep reading identically — a directed (non-random)
/// check that the oracle pair construction covers the spill boundary.
#[test]
fn dictionary_spill_boundary_reads_identically() {
    let rows = 4 * (pier::qp::DICT_MAX + 8);
    let vals: Vec<Value> = (0..rows)
        .map(|i| Value::Str(format!("k{}", i / 4).into()))
        .collect();
    let typed = Column::from_values(vals.clone());
    let reference = Column::values_layout(vals.clone());
    assert_eq!(typed.layout_name(), "str", "spill must land in the arena");
    for r in 0..rows {
        assert_eq!(bytes_of(&typed.value(r)), bytes_of(&reference.value(r)));
    }
    let mut enc = Vec::new();
    typed.encode_body(&mut enc);
    let (decoded, used) = Column::decode_body(rows, &enc).expect("decodes");
    assert_eq!(used, enc.len());
    let mut re_enc = Vec::new();
    decoded.encode_body(&mut re_enc);
    assert_eq!(re_enc, enc);
}
