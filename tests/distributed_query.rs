//! End-to-end distributed query tests spanning every crate: SQL front end →
//! plan → dissemination → opgraph execution over the DHT → results at the
//! proxy, including failure injection and the malformed-tuple policy.

use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{sqlish, Expr, JoinSpec, OpGraph, PlanBuilder, SinkSpec, SourceSpec, Tuple, Value};

#[test]
fn sql_keyword_search_end_to_end() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(20, 101));
    let key_cols = vec!["keyword".to_string()];
    for i in 0..8 {
        let kw = if i % 2 == 0 { "rust" } else { "java" };
        let tuple = Tuple::new(
            "files",
            vec![
                ("keyword", Value::Str(kw.into())),
                ("file", Value::Str(format!("f{i}").into())),
                ("size", Value::Int(i as i64 * 100)),
            ],
        );
        let from = cluster.addr(i % cluster.len());
        cluster.publish(from, "files", &key_cols, tuple);
    }
    cluster.settle(3_000_000);
    let proxy = cluster.addr(4);
    let plan = sqlish::compile(
        "SELECT file FROM files WHERE keyword = 'rust' AND size >= 200",
        proxy,
        10_000_000,
    )
    .unwrap();
    let outcome = cluster.run_query(proxy, plan);
    let mut files: Vec<String> = outcome
        .tuples()
        .iter()
        .filter_map(|t| t.get("file").and_then(|v| v.as_str().map(String::from)))
        .collect();
    files.sort();
    assert_eq!(files, vec!["f2", "f4", "f6"]);
}

#[test]
fn sql_aggregation_matches_ground_truth() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(15, 202));
    // Each node logs a few events; "198.51.100.7" dominates.
    let mut expected_hot = 0i64;
    for i in 0..cluster.len() {
        for j in 0..4 {
            let src = if j < 3 { "198.51.100.7" } else { "203.0.113.9" };
            if j < 3 {
                expected_hot += 1;
            }
            let addr = cluster.addr(i);
            cluster.add_local_row(
                addr,
                "events",
                Tuple::new(
                    "events",
                    vec![("src", Value::Str(src.into())), ("port", Value::Int(j))],
                ),
            );
        }
    }
    let proxy = cluster.addr(2);
    let plan = sqlish::compile(
        "SELECT src, COUNT(*) FROM events GROUP BY src TOP 1 BY count",
        proxy,
        20_000_000,
    )
    .unwrap();
    let outcome = cluster.run_query(proxy, plan);
    assert_eq!(outcome.results.len(), 1, "TOP 1 must return a single group");
    let top = &outcome.tuples()[0];
    assert_eq!(top.get("src").unwrap().as_str().unwrap(), "198.51.100.7");
    assert_eq!(top.get("count").unwrap().as_i64().unwrap(), expected_hot);
}

#[test]
fn rehash_symmetric_hash_join_produces_correct_join() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(12, 303));
    let key = vec!["b".to_string()];
    // r(a, b) and s(b, c): the join result is known exactly.
    let r_rows = [(1, 10), (2, 20), (3, 10), (4, 30)];
    let s_rows = [(10, 100), (20, 200), (40, 400)];
    for (i, (a, b)) in r_rows.iter().enumerate() {
        let from = cluster.addr(i % cluster.len());
        cluster.publish(
            from,
            "r",
            &key,
            Tuple::new("r", vec![("a", Value::Int(*a)), ("b", Value::Int(*b))]),
        );
    }
    for (i, (b, c)) in s_rows.iter().enumerate() {
        let from = cluster.addr((i + 5) % cluster.len());
        cluster.publish(
            from,
            "s",
            &key,
            Tuple::new("s", vec![("b", Value::Int(*b)), ("c", Value::Int(*c))]),
        );
    }
    cluster.settle(3_000_000);
    let proxy = cluster.addr(0);
    let ns = "q.join".to_string();
    let plan = PlanBuilder::new(proxy)
        .timeout(20_000_000)
        .opgraph(OpGraph {
            id: 0,
            source: SourceSpec::Table {
                namespace: "r".into(),
            },
            join: None,
            ops: vec![],
            sink: SinkSpec::Rehash {
                namespace: ns.clone(),
                key_cols: key.clone(),
            },
        })
        .opgraph(OpGraph {
            id: 1,
            source: SourceSpec::Table {
                namespace: "s".into(),
            },
            join: None,
            ops: vec![],
            sink: SinkSpec::Rehash {
                namespace: ns.clone(),
                key_cols: key.clone(),
            },
        })
        .opgraph(OpGraph {
            id: 2,
            source: SourceSpec::Table { namespace: ns },
            join: Some(JoinSpec {
                left_table: "r".into(),
                right_table: "s".into(),
                left_key: key.clone(),
                right_key: key.clone(),
                output_table: "r_s".into(),
            }),
            ops: vec![],
            sink: SinkSpec::ToProxy,
        })
        .build();
    let outcome = cluster.run_query(proxy, plan);
    // Expected: r tuples with b=10 (two of them) join s(10,100); r with b=20
    // joins s(20,200); r with b=30 has no partner.  Total 3 results.
    assert_eq!(outcome.results.len(), 3, "join result cardinality");
    for t in outcome.tuples() {
        let b = t.get("b").unwrap().as_i64().unwrap();
        let c = t.get("c").unwrap().as_i64().unwrap();
        assert_eq!(c, b * 10, "join produced a mismatched pair: {t}");
    }
}

#[test]
fn malformed_tuples_are_discarded_not_fatal() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(8, 404));
    let key_cols = vec!["keyword".to_string()];
    // One well-formed tuple, one missing the filtered column, one with the
    // wrong type for it.
    let rows = vec![
        Tuple::new(
            "files",
            vec![
                ("keyword", Value::Str("k".into())),
                ("size", Value::Int(10)),
            ],
        ),
        Tuple::new("files", vec![("keyword", Value::Str("k".into()))]),
        Tuple::new(
            "files",
            vec![
                ("keyword", Value::Str("k".into())),
                ("size", Value::Str("huge".into())),
            ],
        ),
    ];
    for (i, t) in rows.into_iter().enumerate() {
        let from = cluster.addr(i % cluster.len());
        cluster.publish(from, "files", &key_cols, t);
    }
    cluster.settle(3_000_000);
    let proxy = cluster.addr(1);
    let plan = PlanBuilder::select(
        proxy,
        "files",
        Expr::cmp(pier::qp::CmpOp::Ge, Expr::col("size"), Expr::lit(5i64)),
        vec![],
        10_000_000,
    );
    let outcome = cluster.run_query(proxy, plan);
    assert_eq!(
        outcome.results.len(),
        1,
        "only the well-formed tuple satisfies the predicate; the others are silently discarded"
    );
}

#[test]
fn query_survives_minority_node_failures() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(20, 505));
    let key_cols = vec!["keyword".to_string()];
    for i in 0..30 {
        let from = cluster.addr(i % cluster.len());
        cluster.publish(
            from,
            "files",
            &key_cols,
            Tuple::new(
                "files",
                vec![
                    ("keyword", Value::Str("survivor".into())),
                    ("file", Value::Str(format!("f{i}").into())),
                ],
            ),
        );
    }
    cluster.settle(3_000_000);
    // Fail three nodes (but never the proxy).
    for i in 1..=3 {
        let addr = cluster.addr(i);
        let now = cluster.sim.now();
        cluster.sim.fail_node_at(addr, now);
    }
    cluster.settle(1_000_000);
    let proxy = cluster.addr(10);
    let plan = PlanBuilder::select(
        proxy,
        "files",
        Expr::eq("keyword", "survivor"),
        vec!["file".to_string()],
        15_000_000,
    );
    let outcome = cluster.run_query(proxy, plan);
    // Some rows may have lived on the failed nodes, but the query must still
    // complete and return most of the data.
    assert!(
        outcome.results.len() >= 20,
        "expected most rows to survive, got {}",
        outcome.results.len()
    );
}
