//! Chaos-recovery integration tests: deterministic fault injection and the
//! telemetry that documents it.
//!
//! Two invariants from the robustness work are pinned here rather than in
//! the (release-built) chaos bench so that `cargo test` alone can catch a
//! regression:
//!
//! 1. **Replayability** — equal-seed chaos runs produce byte-identical
//!    telemetry traces.  Every message drop, partition and crash is driven
//!    off the seeded [`FaultPlan`] RNG, and no send path may iterate a
//!    hash-ordered container, or the replay diverges.
//! 2. **Reconciliation** — the `fault.inject` / `partition.heal` events the
//!    trace records agree exactly with the fault plan's own applied-fault
//!    counters: telemetry is a faithful journal of the schedule, not a
//!    best-effort sample.
//!
//! [`FaultPlan`]: pier::runtime::FaultPlan

use pier::harness::{run_chaos, ChaosConfig};

/// A deliberately small gauntlet so the debug-build test stays fast while
/// still exercising every phase: loss, partition + heal, and a one-node
/// crash/restart storm.
fn small_config(seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::standard(8, seed);
    cfg.tenants = 2;
    cfg.events_per_node_per_sec = 4;
    cfg.sources = 16;
    cfg.baseline_secs = 4;
    cfg.degraded_secs = 6;
    cfg.heal_secs = 5;
    cfg.storm_secs = 8;
    cfg.storm_kills = 1;
    cfg
}

/// Count trace lines whose event kind is `event` and (optionally) whose
/// `kind` field carries the given fault label.
fn count_events(trace: &str, event: &str, label: Option<&str>) -> u64 {
    let event_pat = format!("\"kind\":\"{event}\"");
    let label_pat = label.map(|l| format!("\"kind\":\"{l}\""));
    trace
        .lines()
        .filter(|line| line.contains(&event_pat))
        .filter(|line| label_pat.as_ref().is_none_or(|p| line.contains(p)))
        .count() as u64
}

#[test]
fn equal_seed_chaos_runs_replay_byte_for_byte() {
    let cfg = small_config(7);
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert!(!a.trace.is_empty(), "the trace must record the run");
    assert_eq!(
        a.trace, b.trace,
        "equal-seed chaos runs must produce byte-identical telemetry traces"
    );
    assert_eq!(a.fault_counts, b.fault_counts);
    assert_eq!(a.windows, b.windows, "results must replay too");
    assert_eq!(a.restarted, b.restarted);
}

#[test]
fn trace_fault_events_reconcile_with_the_plan() {
    let out = run_chaos(&small_config(7));
    let c = &out.fault_counts;

    // Every applied fault appears as exactly one trace event, labelled with
    // the plan's stable fault label.
    assert!(c.losses > 0 && c.partition_drops > 0, "faults must fire");
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("loss")),
        c.losses
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("partition_drop")),
        c.partition_drops
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("partition_start")),
        c.partitions_started
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("crash")),
        c.crashes
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("restart")),
        c.restarts
    );

    // Heals are surfaced as their own event kind (recovery, not a fault).
    assert_eq!(
        count_events(&out.trace, "partition.heal", None),
        c.partitions_healed
    );
    assert!(c.partitions_healed > 0, "the partition must heal");

    // The chaos phases never enable duplication or reordering — duplicate
    // partial deltas would double-count through additive refinement merges.
    assert_eq!(c.duplicates, 0);
    assert_eq!(c.reorders, 0);

    // The storm's armed crash/restart pairs all fired.
    assert_eq!(c.restarts as usize, out.restarted.len());
    assert!(!out.restarted.is_empty(), "the storm must restart a node");
}
