//! Chaos-recovery integration tests: deterministic fault injection and the
//! telemetry that documents it.
//!
//! Two invariants from the robustness work are pinned here rather than in
//! the (release-built) chaos bench so that `cargo test` alone can catch a
//! regression:
//!
//! 1. **Replayability** — equal-seed chaos runs produce byte-identical
//!    telemetry traces.  Every message drop, partition and crash is driven
//!    off the seeded [`FaultPlan`] RNG, and no send path may iterate a
//!    hash-ordered container, or the replay diverges.
//! 2. **Reconciliation** — the `fault.inject` / `partition.heal` events the
//!    trace records agree exactly with the fault plan's own applied-fault
//!    counters: telemetry is a faithful journal of the schedule, not a
//!    best-effort sample.
//!
//! [`FaultPlan`]: pier::runtime::FaultPlan

use pier::harness::{run_chaos, ChaosConfig};

/// Mix the CI seed matrix into a test's default seed: `PIER_SEED`, when
/// set, perturbs the chaos seed so replayability and reconciliation are
/// checked over distinct fault realisations (every assertion here is
/// structural and must hold for any seed).
fn seeded(default: u64) -> u64 {
    match std::env::var("PIER_SEED") {
        Ok(s) => default ^ s.trim().parse::<u64>().expect("PIER_SEED must be a u64"),
        Err(_) => default,
    }
}

/// A deliberately small gauntlet so the debug-build test stays fast while
/// still exercising every phase: loss, partition + heal, and a one-node
/// crash/restart storm.
fn small_config(seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::standard(8, seed);
    cfg.tenants = 2;
    cfg.events_per_node_per_sec = 4;
    cfg.sources = 16;
    cfg.baseline_secs = 4;
    cfg.degraded_secs = 6;
    cfg.heal_secs = 5;
    cfg.storm_secs = 8;
    cfg.storm_kills = 1;
    cfg
}

/// Count trace lines whose event kind is `event` and (optionally) whose
/// `kind` field carries the given fault label.
fn count_events(trace: &str, event: &str, label: Option<&str>) -> u64 {
    let event_pat = format!("\"kind\":\"{event}\"");
    let label_pat = label.map(|l| format!("\"kind\":\"{l}\""));
    trace
        .lines()
        .filter(|line| line.contains(&event_pat))
        .filter(|line| label_pat.as_ref().is_none_or(|p| line.contains(p)))
        .count() as u64
}

#[test]
fn equal_seed_chaos_runs_replay_byte_for_byte() {
    let cfg = small_config(seeded(7));
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert!(!a.trace.is_empty(), "the trace must record the run");
    assert_eq!(
        a.trace, b.trace,
        "equal-seed chaos runs must produce byte-identical telemetry traces"
    );
    assert_eq!(a.fault_counts, b.fault_counts);
    assert_eq!(a.windows, b.windows, "results must replay too");
    assert_eq!(a.restarted, b.restarted);
}

#[test]
fn trace_fault_events_reconcile_with_the_plan() {
    let out = run_chaos(&small_config(seeded(7)));
    let c = &out.fault_counts;

    // Every applied fault appears as exactly one trace event, labelled with
    // the plan's stable fault label.
    assert!(c.losses > 0 && c.partition_drops > 0, "faults must fire");
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("loss")),
        c.losses
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("partition_drop")),
        c.partition_drops
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("partition_start")),
        c.partitions_started
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("crash")),
        c.crashes
    );
    assert_eq!(
        count_events(&out.trace, "fault.inject", Some("restart")),
        c.restarts
    );

    // Heals are surfaced as their own event kind (recovery, not a fault).
    assert_eq!(
        count_events(&out.trace, "partition.heal", None),
        c.partitions_healed
    );
    assert!(c.partitions_healed > 0, "the partition must heal");

    // The chaos phases never enable duplication or reordering — duplicate
    // partial deltas would double-count through additive refinement merges.
    assert_eq!(c.duplicates, 0);
    assert_eq!(c.reorders, 0);

    // The storm's armed crash/restart pairs all fired.
    assert_eq!(c.restarts as usize, out.restarted.len());
    assert!(!out.restarted.is_empty(), "the storm must restart a node");
}

/// The gather-based symmetric-hash join survives a [`FaultPlan`]
/// loss/restart schedule: events are dropped by a seeded loss draw
/// (churn), and at each pre-drawn storm restart the operator is rebuilt
/// from scratch by replaying the surviving event log — exactly the warm
/// restart the durable-segment path performs.  After every rebuild and at
/// the end of the run, the chunk-native join, the per-tuple join and a
/// brute-force nested-loop reference computed directly from the surviving
/// inputs must agree as multisets, with identical state sizes.
#[test]
fn join_rebuild_under_faultplan_loss_and_restart_matches_reference() {
    use pier::qp::tuple::ColumnChunk;
    use pier::qp::{JoinSide, SymmetricHashJoin, Tuple, TupleBatch, Value};
    use pier::runtime::rng::Rng64;
    use pier::runtime::sim::FaultPlan;
    use pier::runtime::NodeAddr;

    let seed = seeded(0xC0FFEE);
    // Pre-draw the restart schedule from a real fault plan: three kills in
    // the virtual window [2s, 10s), victims drawn by the plan's RNG.
    let victims = [NodeAddr(3)];
    let plan = FaultPlan::new(seed)
        .with_restart_storm(2_000_000, 10_000_000, &victims, 3, 100_000, 500_000);
    let restarts: Vec<u64> = plan.storm().iter().filter_map(|e| e.restart_at).collect();
    assert_eq!(restarts.len(), 3, "every storm kill must restart");

    // One virtual event per 10ms over 12s; each carries its timestamp.
    // The loss draw (churn) removes ~20% before either join sees them.
    let mut loss = Rng64::new(seed ^ 0x10555);
    let mut events: Vec<(u64, JoinSide, Tuple)> = Vec::new();
    for i in 0..1200u64 {
        let at = i * 10_000;
        if loss.chance(0.2) {
            continue;
        }
        let t = if i % 9 == 0 {
            (
                at,
                JoinSide::Right,
                Tuple::new(
                    "blocked",
                    vec![("src", Value::Str(format!("10.0.0.{}", i % 13).into()))],
                ),
            )
        } else {
            (
                at,
                JoinSide::Left,
                Tuple::new(
                    "flows",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{}", i % 8).into())),
                        ("bytes", Value::Int((i * 17) as i64)),
                    ],
                ),
            )
        };
        events.push(t);
    }

    let key = || vec!["src".to_string()];
    let multiset = |tuples: &[Tuple]| {
        let mut rows: Vec<String> = tuples.iter().map(Tuple::to_string).collect();
        rows.sort();
        rows
    };
    // Brute-force oracle: every (flow, blocked) pair with equal keys among
    // the surviving inputs seen so far.
    let brute_force = |log: &[(u64, JoinSide, Tuple)]| -> Vec<String> {
        let mut out = Vec::new();
        for (_, ls, l) in log.iter().filter(|(_, s, _)| *s == JoinSide::Left) {
            debug_assert_eq!(*ls, JoinSide::Left);
            for (_, _, r) in log.iter().filter(|(_, s, _)| *s == JoinSide::Right) {
                if l.get("src").zip(r.get("src")).is_some_and(|(a, b)| a == b) {
                    out.push(l.join_with(r, "hits").to_string());
                }
            }
        }
        out.sort();
        out
    };
    // Replay `log` through fresh instances of both join paths (the warm
    // restart), returning their emissions and final states.
    let replay = |log: &[(u64, JoinSide, Tuple)]| {
        let mut chunked = SymmetricHashJoin::new(key(), key(), "hits");
        let mut per_tuple = SymmetricHashJoin::new(key(), key(), "hits");
        let mut chunk_out = Vec::new();
        let mut tuple_out = Vec::new();
        // The chunk path replays in arrival-run batches, as a durable
        // segment scan would hand them over.
        let mut run: Vec<Tuple> = Vec::new();
        let mut run_side = JoinSide::Left;
        for (_, side, t) in log {
            tuple_out.extend(per_tuple.push_side(*side, t.clone()));
            if *side != run_side && !run.is_empty() {
                for chunk in TupleBatch::new(std::mem::take(&mut run)).chunks() {
                    chunk_out.extend(chunked.push_chunk_batch(run_side, chunk).into_tuples());
                }
            }
            run_side = *side;
            run.push(t.clone());
        }
        for chunk in TupleBatch::new(run).chunks() {
            chunk_out.extend(chunked.push_chunk_batch(run_side, chunk).into_tuples());
        }
        (chunk_out, tuple_out, chunked, per_tuple)
    };

    // Walk the schedule: at each restart boundary, rebuild from the
    // survivor log so far and check all three paths agree.
    let mut checked = 0;
    for boundary in restarts.iter().copied() {
        let prefix: Vec<_> = events
            .iter()
            .filter(|(at, _, _)| *at < boundary)
            .cloned()
            .collect();
        let (chunk_out, tuple_out, chunked, per_tuple) = replay(&prefix);
        let expected = brute_force(&prefix);
        assert_eq!(multiset(&chunk_out), expected, "rebuild at t={boundary}");
        assert_eq!(multiset(&tuple_out), expected, "rebuild at t={boundary}");
        assert_eq!(chunked.state_size(), per_tuple.state_size());
        assert!(!chunk_out.is_empty(), "joins must fire before t={boundary}");
        checked += 1;
    }
    assert_eq!(checked, 3);

    // And the full run, single-tuple pushes entering as one-row chunks.
    let (chunk_out, tuple_out, mut chunked, _) = replay(&events);
    let expected = brute_force(&events);
    assert_eq!(multiset(&chunk_out), expected);
    assert_eq!(multiset(&tuple_out), expected);
    // A late straggler arriving after the rebuild still joins against the
    // replayed state (one-row chunk through the same gather path).
    let straggler = Tuple::new(
        "flows",
        vec![
            ("src", Value::Str("10.0.0.1".into())),
            ("bytes", Value::Int(-1)),
        ],
    );
    let late = chunked.push_chunk_batch(JoinSide::Left, &ColumnChunk::from_tuple(&straggler));
    assert!(
        !late.is_empty(),
        "a straggler keyed to a blocked source must join after replay"
    );
}
