//! Integration tests for the distributed index types of §3.3.3 beyond the
//! equality index — the PHT-style range index and secondary indexes — and
//! for recursive (reachability) queries evaluated as rounds of distributed
//! index joins (§3.3.2).  All of them drive full simulated PIER deployments
//! through the public `pier` facade.

use pier::harness::{recursion, Cluster, ClusterConfig};
use pier::qp::{
    range_index::range_scan_plan, secondary_index, Dissemination, Expr, PlanBuilder,
    RangeIndexConfig, Tuple, Value,
};

fn reading(i: i64, temp: i64) -> Tuple {
    Tuple::new(
        "readings",
        vec![
            ("sensor", Value::Str(format!("s{i}").into())),
            ("temp", Value::Int(temp)),
        ],
    )
}

#[test]
fn range_index_returns_exactly_the_rows_in_range() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(24, 31));
    let config = RangeIndexConfig::new(5, 16);
    let mut expected = 0usize;
    for i in 0..300i64 {
        let temp = (i * 219) % 65_536;
        if (10_000..=20_000).contains(&temp) {
            expected += 1;
        }
        let from = cluster.addr((i as usize) % cluster.len());
        cluster.publish_range_indexed(from, "readings", "temp", config, reading(i, temp));
    }
    cluster.settle(4_000_000);
    let proxy = cluster.addr(2);
    let plan = range_scan_plan(
        proxy,
        "readings",
        "temp",
        10_000,
        20_000,
        config,
        vec!["sensor".into(), "temp".into()],
        12_000_000,
    );
    assert!(matches!(plan.dissemination, Dissemination::ByRange { .. }));
    let outcome = cluster.run_query(proxy, plan);
    assert_eq!(outcome.results.len(), expected, "range scan must be exact");
    for t in outcome.tuples() {
        let temp = t.get("temp").and_then(pier::qp::Value::as_i64).unwrap();
        assert!((10_000..=20_000).contains(&temp), "out-of-range row {t}");
    }
    assert!(
        expected > 0,
        "the workload must place rows inside the range"
    );
}

#[test]
fn range_queries_tolerate_malformed_rows() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(12, 8));
    let config = RangeIndexConfig::new(4, 16);
    // Well-formed rows.
    for i in 0..20i64 {
        let from = cluster.addr((i as usize) % cluster.len());
        cluster.publish_range_indexed(from, "readings", "temp", config, reading(i, 1_000 + i));
    }
    // Malformed rows: missing or non-integer temp — silently not indexed.
    let from = cluster.addr(0);
    cluster.publish_range_indexed(
        from,
        "readings",
        "temp",
        config,
        Tuple::new("readings", vec![("sensor", Value::Str("broken".into()))]),
    );
    cluster.publish_range_indexed(
        from,
        "readings",
        "temp",
        config,
        Tuple::new("readings", vec![("temp", Value::Str("hot".into()))]),
    );
    cluster.settle(3_000_000);
    let proxy = cluster.addr(1);
    let outcome = cluster.run_query(
        proxy,
        range_scan_plan(
            proxy,
            "readings",
            "temp",
            0,
            65_535,
            config,
            vec![],
            10_000_000,
        ),
    );
    assert_eq!(
        outcome.results.len(),
        20,
        "only the well-formed rows are visible"
    );
}

#[test]
fn secondary_index_semi_join_matches_broadcast_scan() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(20, 17));
    let key_cols = vec!["file".to_string()];
    let index_cols = vec!["keyword".to_string()];
    for i in 0..80usize {
        let keyword = if i % 10 == 0 { "needle" } else { "hay" };
        let tuple = Tuple::new(
            "files",
            vec![
                ("file", Value::Str(format!("f{i}").into())),
                ("keyword", Value::str(keyword)),
            ],
        );
        let from = cluster.addr(i % cluster.len());
        cluster.publish_with_secondary_indexes(from, "files", &key_cols, &index_cols, tuple);
    }
    cluster.settle(4_000_000);
    let proxy = cluster.addr(4);
    let scan = cluster.run_query(
        proxy,
        PlanBuilder::select(
            proxy,
            "files",
            Expr::eq("keyword", "needle"),
            vec![],
            10_000_000,
        ),
    );
    let via_index = cluster.run_query(
        proxy,
        secondary_index::lookup_plan(
            proxy,
            "files",
            "keyword",
            Value::Str("needle".into()),
            10_000_000,
        ),
    );
    assert_eq!(scan.results.len(), 8);
    assert_eq!(via_index.results.len(), 8);
    // The semi-join results carry the base table's columns.
    for t in via_index.tuples() {
        assert!(t.get("file").is_some(), "base columns must be present: {t}");
    }
}

#[test]
fn distributed_reachability_agrees_with_local_closure_across_seeds() {
    for seed in [1, 9] {
        let result = recursion::distributed_reachability(10, 16, 2, seed);
        assert!(
            result.matches_reference,
            "seed {seed}: distributed {} vs reference {}",
            result.reached_distributed, result.reached_reference
        );
    }
}
