//! Admission soundness: the static `CostReport` really is an upper bound.
//!
//! `pier-analyze` derives every figure without executing anything, so the
//! whole design stands on one claim: for any run whose actual environment
//! stays within the declared [`EnvModel`], the measured telemetry counters
//! never exceed the bounds the report predicts.  This suite checks that
//! claim on the three standing workloads (netmon, many-tenants, chaos), and
//! property-tests the verdict rules: a finite-window plan is never
//! `Unbounded`, a standing plan without a window always is, and every
//! sqlish-expressible plan gets a verdict and a report.
//!
//! It also pins the degradation semantics end to end: a rejected tenant
//! receives the machine-readable report and zero results while every other
//! tenant's per-window output is bit-identical to a run where the rejected
//! query was never submitted; a shed tenant runs at the derived sampling
//! modulus.

use pier::analyze::{admission_factory, analyze, Boundedness, CostReport, EnvModel};
use pier::harness::{
    continuous_netmon, many_tenants, run_chaos, ChaosConfig, Cluster, ClusterConfig,
    ClusterTelemetrySummary, ContinuousNetmonConfig, ManyTenantsConfig,
};
use pier::qp::sqlish;
use pier::runtime::NodeAddr;
use pier::telemetry::TelemetryConfig;
use proptest::prelude::*;

/// Compile `sql` and derive its static report under the default env model.
fn report_for(sql: &str, tenant: u64) -> CostReport {
    let mut plan = sqlish::compile(sql, NodeAddr(0), 60_000_000).expect("query compiles");
    plan.tenant = tenant;
    analyze(&plan, &EnvModel::default())
}

/// Window instances a standing query can have opened over `run_us` of
/// stream time: one per slide, plus the overlap fringe, plus the retention
/// horizon the root keeps refining.
fn window_instances(r: &CostReport, run_us: u64) -> u64 {
    run_us / r.window_slide_us.max(1) + r.windows_per_event + 4
}

/// Run-level bounds derived from the per-window/per-flush report figures.
struct RunBounds {
    /// Rows accepted into window stores, cluster-wide, whole run: local
    /// inserts on every reached node plus partials absorbed at (and relayed
    /// toward) each root.
    accepted: u64,
    /// Resident window-store bytes on any single node at any instant.
    state_per_node: u64,
    /// Resident window-store bytes summed over the cluster.
    state_total: u64,
    /// `PutBatch` entries shipped cluster-wide over the whole run.
    entries: u64,
}

fn run_bounds(reports: &[CostReport], run_us: u64) -> RunBounds {
    let mut b = RunBounds {
        accepted: 0,
        state_per_node: 0,
        state_total: 0,
        entries: 0,
    };
    for r in reports {
        let w = window_instances(r, run_us);
        let local = w * r.nodes_reached * r.rows_per_window_per_node;
        // Each sender ships at most `groups` partials per window; a partial
        // may be absorbed at every relay hop plus the root itself.
        let root = w * r.root_fan_in * r.groups_per_window * (r.dht_hops + 1);
        b.accepted += local + root;
        b.state_per_node += r.state_bytes_per_node;
        b.state_total += r.nodes_reached * r.state_bytes_per_node;
        b.entries += w * r.nodes_reached * r.entries_per_flush_per_node;
    }
    b
}

/// The shared assertions: measured telemetry within the static bounds.
fn assert_sound(tel: &ClusterTelemetrySummary, bounds: &RunBounds, workload: &str) {
    assert!(
        tel.cq_accepted <= bounds.accepted,
        "{workload}: measured rows {} exceed static bound {}",
        tel.cq_accepted,
        bounds.accepted
    );
    assert!(
        tel.max_node_state_bytes <= bounds.state_per_node,
        "{workload}: one node held {} state bytes, static per-node bound {}",
        tel.max_node_state_bytes,
        bounds.state_per_node
    );
    assert!(
        tel.cq_state_bytes <= bounds.state_total,
        "{workload}: cluster state {} exceeds static bound {}",
        tel.cq_state_bytes,
        bounds.state_total
    );
    assert!(
        tel.put_batch_entries <= bounds.entries,
        "{workload}: measured PutBatch entries {} exceed static bound {}",
        tel.put_batch_entries,
        bounds.entries
    );
}

#[test]
fn netmon_static_report_bounds_measured_telemetry() {
    let mut cfg = ContinuousNetmonConfig::steady(12, 30, 42);
    cfg.pier.telemetry = TelemetryConfig::enabled();
    cfg.pier.admission = Some(admission_factory);

    let report = report_for(&ContinuousNetmonConfig::default_query(), 0);
    assert!(
        matches!(report.boundedness, Boundedness::Bounded { .. }),
        "the windowed netmon query is engine-bounded, got {:?}",
        report.boundedness
    );

    let out = continuous_netmon(&cfg);
    assert!(
        !out.windows.is_empty(),
        "admission on: results must still flow"
    );
    assert!(out.telemetry.admission_admit >= 1);
    assert_eq!(out.telemetry.admission_reject, 0);
    assert!(
        out.telemetry.cq_accepted > 0,
        "telemetry must actually measure the run"
    );
    let bounds = run_bounds(&[report], cfg.run_secs * 1_000_000);
    assert_sound(&out.telemetry, &bounds, "netmon");
}

#[test]
fn many_tenants_static_reports_bound_measured_telemetry() {
    let mut cfg = ManyTenantsConfig::new(8, 6, 20, 7);
    cfg.sharing = false;
    cfg.pier.telemetry = TelemetryConfig::enabled();
    cfg.pier.admission = Some(admission_factory);

    let reports: Vec<CostReport> = (0..cfg.tenants)
        .map(|i| {
            let (_, sql) = cfg.tenant_query(i);
            report_for(&sql, i as u64)
        })
        .collect();
    for r in &reports {
        assert!(matches!(r.boundedness, Boundedness::Bounded { .. }));
        // `WHERE src = '<mine>'` pins the only group column.
        assert_eq!(r.groups_per_window, 1);
    }

    let out = many_tenants(&cfg);
    for t in &out.tenants {
        let a = t.admission.as_ref().expect("admission layer reported");
        assert!(a.accepted, "within-budget tenants are admitted");
        assert_eq!(a.sample_every, 1);
        assert!(a.report.contains("\"decision\":\"admit\""));
        assert!(a.report.contains("\"verdict\":\"bounded\""));
    }
    assert_eq!(out.telemetry.admission_admit, cfg.tenants as u64);
    assert_eq!(out.telemetry.admission_reject, 0);
    assert!(out.telemetry.cq_accepted > 0);
    let bounds = run_bounds(&reports, cfg.run_secs * 1_000_000);
    assert_sound(&out.telemetry, &bounds, "many_tenants");
}

#[test]
fn chaos_static_reports_bound_measured_telemetry() {
    let mut cfg = ChaosConfig::standard(12, 3);
    cfg.pier.admission = Some(admission_factory);
    // The chaos driver runs share-eligible tenants through `pier-mqo`;
    // mirror that in the policy so follow-on members charge marginally.
    cfg.pier.slo.shared_execution = true;

    let stream_secs = cfg.baseline_secs + cfg.degraded_secs + cfg.heal_secs + cfg.storm_secs;
    let mut reports = vec![report_for(
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s",
        0,
    )];
    for t in 0..cfg.tenants {
        let src = format!("10.0.{}.{}", (t / 256) % 256, t % 256);
        let sql = format!(
            "SELECT src, COUNT(*) FROM packets WHERE src = '{src}' \
             GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        );
        reports.push(report_for(&sql, 0));
    }

    let out = run_chaos(&cfg);
    // Crash/restart storms reset restarted nodes' counters, so only the
    // direction of the inequality is meaningful — and rejects are sticky
    // evidence either way.
    assert!(out.telemetry.admission_admit >= 1);
    assert_eq!(out.telemetry.admission_reject, 0);
    assert!(out.telemetry.cq_accepted > 0);
    let bounds = run_bounds(&reports, stream_secs * 1_000_000);
    assert_sound(&out.telemetry, &bounds, "chaos");
}

/// A rejected tenant gets the machine-readable report, zero results, and —
/// the SLO isolation property — zero effect on everyone else: the admitted
/// tenants' per-window outputs are identical to the all-admitted run.
#[test]
fn rejected_tenant_has_zero_effect_on_admitted_tenants() {
    let base = || {
        let mut cfg = ManyTenantsConfig::new(8, 5, 16, 11);
        cfg.sharing = false;
        cfg.pier.admission = Some(admission_factory);
        cfg
    };

    let all = many_tenants(&base());
    let mut cfg = base();
    // Tenant 0's ceiling admits nothing and leaves no remaining budget for
    // a sampling modulus to fit into: reject, not shed.
    let mut tight = cfg.pier.slo.default_budget;
    tight.max_rows_per_window_per_node = 0;
    cfg.pier.slo.tenants.insert(0, tight);
    let one_rejected = many_tenants(&cfg);

    let rejected = one_rejected.tenants[0]
        .admission
        .as_ref()
        .expect("decision reported");
    assert!(!rejected.accepted);
    assert!(rejected.report.contains("\"decision\":\"reject\""));
    assert!(rejected.report.contains("\"report\":{"));
    assert!(
        one_rejected.tenants[0].windows.is_empty(),
        "a rejected query must never produce results"
    );

    for i in 1..all.tenants.len() {
        let a = &all.tenants[i];
        let b = &one_rejected.tenants[i];
        assert!(
            b.admission.as_ref().is_some_and(|d| d.accepted),
            "tenant {i} stays admitted"
        );
        assert_eq!(
            a.windows, b.windows,
            "tenant {i}'s results must not change when tenant 0 is rejected"
        );
    }
    assert!(
        all.tenants[1..].iter().any(|t| !t.windows.is_empty()),
        "equivalence must compare real results, not two empty runs"
    );
}

/// A tenant over budget with shedding enabled runs degraded: the derived
/// sampling modulus is stamped into the plan and reported back.
#[test]
fn over_budget_tenant_is_shed_to_sampling() {
    let mut cfg = ManyTenantsConfig::new(8, 3, 16, 13);
    cfg.sharing = false;
    cfg.pier.admission = Some(admission_factory);
    // 2s window at the declared 16 ev/s is 32 predicted rows; a ceiling of
    // 8 forces 1-in-4 sampling.
    let mut tight = cfg.pier.slo.default_budget;
    tight.max_rows_per_window_per_node = 8;
    cfg.pier.slo.tenants.insert(0, tight);

    let out = many_tenants(&cfg);
    let shed = out.tenants[0]
        .admission
        .as_ref()
        .expect("decision reported");
    assert!(shed.accepted, "shedding degrades, it does not reject");
    assert!(shed.sample_every >= 4);
    assert!(shed.report.contains("\"decision\":\"shed\""));
    for t in &out.tenants[1..] {
        let a = t.admission.as_ref().expect("decision reported");
        assert!(a.accepted);
        assert_eq!(a.sample_every, 1, "other tenants run at full rate");
    }
}

/// The `admission.{admit,shed,reject}` trace events reconcile exactly with
/// the counters of the same name (the telemetry contract every other
/// subsystem honors — see `docs/OBSERVABILITY.md`).
#[test]
fn admission_trace_events_reconcile_with_counters() {
    let mut cfg = ClusterConfig::lan(6, 5).with_telemetry(TelemetryConfig::enabled());
    cfg.pier.admission = Some(admission_factory);
    // Tenant 1 sheds (32 declared rows against a ceiling of 8); tenant 2
    // rejects (no ceiling at all leaves no room for a sampling modulus).
    let mut shed = cfg.pier.slo.default_budget;
    shed.max_rows_per_window_per_node = 8;
    cfg.pier.slo.tenants.insert(1, shed);
    let mut reject = cfg.pier.slo.default_budget;
    reject.max_rows_per_window_per_node = 0;
    cfg.pier.slo.tenants.insert(2, reject);

    let mut cluster = Cluster::start(&cfg);
    cluster.settle(2_000_000);
    let proxy = cluster.addr(0);
    for tenant in 0..3u64 {
        let mut plan = sqlish::compile(
            "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s",
            proxy,
            20_000_000,
        )
        .expect("query compiles");
        plan.tenant = tenant;
        cluster.sim.invoke(proxy, move |node, ctx| {
            node.submit_query(ctx, plan);
        });
    }
    cluster.sim.run_for(3_000_000);

    let tel = cluster.telemetry(proxy).expect("telemetry enabled");
    let trace = tel.trace_jsonl();
    for kind in ["admission.admit", "admission.shed", "admission.reject"] {
        let events = trace
            .lines()
            .filter(|l| l.contains(&format!("\"kind\":\"{kind}\"")))
            .count() as u64;
        assert_eq!(events, 1, "exactly one {kind} decision was made");
        assert_eq!(
            events,
            tel.counter(kind),
            "{kind} trace events must reconcile with the counter"
        );
    }
}

// ---------------------------------------------------------------------------
// Verdict rules, property-tested.
// ---------------------------------------------------------------------------

/// Build one sqlish statement from the sampled shape knobs.  Returns `None`
/// for combinations sqlish rejects (e.g. WINDOW without an aggregate).
fn sql_case(agg: bool, grouped: bool, pred: u32, window: Option<(u64, u64)>) -> Option<String> {
    if window.is_some() && !agg {
        return None; // sqlish: WINDOW requires an aggregate
    }
    let select = if agg {
        "SELECT src, COUNT(*) FROM packets"
    } else {
        "SELECT src FROM packets"
    };
    let mut sql = select.to_string();
    match pred {
        1 => sql.push_str(" WHERE src = '10.0.0.1'"),
        2 => sql.push_str(" WHERE len > 100"),
        _ => {}
    }
    if grouped || agg {
        sql.push_str(" GROUP BY src");
    }
    if let Some((size, slide)) = window {
        sql.push_str(&format!(" WINDOW {size}s SLIDE {slide}s EVERY 5s"));
    }
    Some(sql)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sqlish-expressible plan gets a verdict and a report, and the
    /// window rule holds in both directions: a finite-window plan is never
    /// `Unbounded`; a standing plan without a window always is.
    #[test]
    fn verdicts_follow_the_window_rule(
        agg in 0u32..2,
        grouped in 0u32..2,
        pred in 0u32..3,
        windowed in 0u32..2,
        size_s in 1u64..30,
        slide_div in 1u64..4,
    ) {
        let window = (windowed == 1).then(|| (size_s, (size_s / slide_div).max(1)));
        let Some(sql) = sql_case(agg == 1, grouped == 1, pred, window) else {
            return Ok(());
        };
        let Ok(mut plan) = sqlish::compile(&sql, NodeAddr(0), 60_000_000) else {
            return Ok(());
        };
        if window.is_none() {
            // sqlish only makes windowed plans standing; force the
            // standing-no-window shape the rule forbids.
            plan.continuous = true;
        }
        let report = analyze(&plan, &EnvModel::default());

        // Total: a verdict and a parseable report for every plan.
        let json = report.to_json();
        prop_assert!(json.starts_with('{') && json.ends_with('}'));
        prop_assert!(json.contains("\"verdict\":\""));

        if window.is_some() {
            prop_assert!(
                !matches!(report.boundedness, Boundedness::Unbounded { .. }),
                "finite-window plan reported Unbounded: {sql}"
            );
            // The engine-enforced figures scale with the declared window.
            prop_assert_eq!(
                report.rows_per_window_per_node,
                size_s * EnvModel::default().events_per_node_per_sec
            );
            prop_assert!(report.window_slide_us > 0);
        } else {
            prop_assert!(
                matches!(report.boundedness, Boundedness::Unbounded { .. }),
                "standing no-window plan not reported Unbounded: {sql}"
            );
        }
    }

    /// One-shot plans are finite under assumptions — `ConditionallyBounded`
    /// with the assumptions listed, never `Unbounded`.
    #[test]
    fn one_shot_scans_are_conditionally_bounded(
        agg in 0u32..2,
        grouped in 0u32..2,
        pred in 0u32..3,
    ) {
        let Some(sql) = sql_case(agg == 1, grouped == 1, pred, None) else {
            return Ok(());
        };
        let Ok(plan) = sqlish::compile(&sql, NodeAddr(0), 60_000_000) else {
            return Ok(());
        };
        let report = analyze(&plan, &EnvModel::default());
        match &report.boundedness {
            Boundedness::ConditionallyBounded { bound, assumptions } => {
                prop_assert!(*bound > 0);
                prop_assert!(!assumptions.is_empty());
            }
            other => prop_assert!(false, "one-shot scan got {other:?} for {sql}"),
        }
    }
}
