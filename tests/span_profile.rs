//! Distributed-tracing and EXPLAIN ANALYZE guarantees.
//!
//! The span layer inherits the workspace's determinism contract: spans are
//! stamped with virtual time and per-node ordinals (never wall clock), the
//! sampling decision is drawn once from the seeded RNG at the proxy, and
//! the cluster-wide export is merged under a total order — so equal seeds
//! must produce **byte-identical** merged span JSONL.  Tracing must also be
//! free when off (zero spans, zero wire-size change, identical results)
//! and honest when on: every `window.flush` span reconciles one-for-one
//! against the `cq.window_flushes` counters, and the measured profile must
//! stay under the static `pier-analyze` cost bounds.

use pier::harness::{
    continuous_netmon, continuous_netmon_observed, explain_analyze_netmon, Cluster, ClusterConfig,
    ContinuousNetmonConfig, ContinuousOutcome,
};
use pier::qp::{sqlish, PierOut, TelemetryConfig, TraceConfig, Tuple, Value};
use std::collections::BTreeMap;

fn traced_cfg(nodes: usize, run_secs: u64, seed: u64) -> ContinuousNetmonConfig {
    let mut cfg = ContinuousNetmonConfig::steady(nodes, run_secs, seed);
    cfg.pier.telemetry = TelemetryConfig::enabled();
    cfg.pier.telemetry.span_capacity = 65_536;
    cfg.pier.trace = TraceConfig::sample_all();
    cfg
}

/// Canonical rendering of the per-window result rows (sorted strings per
/// window), so two runs' result streams can be compared exactly.
fn window_rows(out: &ContinuousOutcome) -> BTreeMap<(u64, u64), Vec<String>> {
    out.windows
        .iter()
        .map(|(w, e)| {
            let mut rows: Vec<String> = e.rows.iter().map(ToString::to_string).collect();
            rows.sort();
            (*w, rows)
        })
        .collect()
}

#[test]
fn equal_seeds_export_byte_identical_merged_span_jsonl() {
    let cfg = traced_cfg(8, 10, 17);
    let (a, cluster_a) = continuous_netmon_observed(&cfg);
    let (b, cluster_b) = continuous_netmon_observed(&cfg);
    let ja = cluster_a.merged_span_jsonl();
    let jb = cluster_b.merged_span_jsonl();
    assert!(!ja.is_empty(), "a traced run must record spans");
    assert_eq!(ja, jb, "equal seeds must export byte-identical span JSONL");
    assert_eq!(a.events, b.events);
    assert_eq!(window_rows(&a), window_rows(&b));
    // The merged Chrome profile is a pure function of the merged stream,
    // so it inherits the byte identity.
    assert_eq!(
        pier::trace::chrome_trace_json(&cluster_a.merged_spans()),
        pier::trace::chrome_trace_json(&cluster_b.merged_spans())
    );
}

#[test]
fn window_flush_spans_reconcile_one_for_one_against_cq_counters() {
    let cfg = traced_cfg(8, 10, 29);
    let (out, cluster) = continuous_netmon_observed(&cfg);
    assert_eq!(out.telemetry.trace_dropped, 0, "export must be complete");

    let mut flushes = 0u64;
    let mut partials = 0u64;
    for i in 0..cluster.len() {
        if let Some(tel) = cluster.telemetry(cluster.addr(i)) {
            flushes += tel.counter("cq.window_flushes");
            partials += tel.counter("cq.flush_partials");
        }
    }
    assert!(flushes > 0, "the standing query must flush windows");

    let merged = cluster.merged_spans();
    let flush_spans: Vec<_> = merged
        .iter()
        .filter(|ns| ns.span.stage == "window.flush" && ns.span.query_id == out.query_id)
        .collect();
    // One traced query, sampled: every counted flush recorded exactly one
    // span, and the spans' row totals are the counted partials.
    assert_eq!(flush_spans.len() as u64, flushes);
    assert_eq!(
        flush_spans.iter().map(|ns| ns.span.rows).sum::<u64>(),
        partials
    );
}

#[test]
fn sampling_off_means_zero_spans_zero_wire_change_identical_results() {
    // Telemetry on, tracing off: no spans may be recorded and the wire
    // must look exactly like the plain untraced baseline.
    let mut off = ContinuousNetmonConfig::steady(8, 8, 41);
    off.pier.telemetry = TelemetryConfig::enabled();
    assert!(!off.pier.trace.enabled(), "tracing defaults off");
    let (out_off, cluster_off) = continuous_netmon_observed(&off);
    assert!(cluster_off.merged_spans().is_empty(), "no sampled queries");
    assert!(cluster_off.merged_span_jsonl().is_empty());

    let plain = ContinuousNetmonConfig::steady(8, 8, 41);
    let out_plain = continuous_netmon(&plain);
    assert_eq!(
        out_off.total_bytes, out_plain.total_bytes,
        "tracing off must add zero wire bytes over the untraced baseline"
    );
    assert_eq!(out_off.total_msgs, out_plain.total_msgs);
    assert_eq!(window_rows(&out_off), window_rows(&out_plain));

    // Turning sampling on must not perturb the tenant's results either —
    // spans observe the dataflow, they never steer it.
    let (out_on, _cluster_on) = continuous_netmon_observed(&traced_cfg(8, 8, 41));
    assert_eq!(
        window_rows(&out_on),
        window_rows(&out_off),
        "tracing must not change what the query returns"
    );
}

#[test]
fn explain_analyze_profile_reconciles_measured_within_static_bounds() {
    let mut cfg = ContinuousNetmonConfig::steady(8, 12, 53);
    // A predicate puts a Selection stage in the pipeline, so the profile's
    // operator table (fed by the `op.*` meters) has something to show.
    cfg.sql = "SELECT src, COUNT(*) FROM packets WHERE port > 0 \
               GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        .to_string();
    let profiled = explain_analyze_netmon(&cfg);
    assert_eq!(profiled.trace_dropped, 0, "profile export must be complete");
    assert!(
        profiled.violations.is_empty(),
        "measured figures must stay under the static CostReport bounds: {:?}",
        profiled.violations
    );

    let p = &profiled.profile;
    assert!(p.total_spans > 0);
    assert!(p.windows_observed > 0);
    for stage in [
        "query.disseminate",
        "ingest",
        "window.flush",
        "window.emit",
        "result.emit",
    ] {
        assert!(p.stages.contains_key(stage), "missing stage {stage}");
    }
    // The critical path runs from somewhere upstream to the final result
    // delivery at the proxy.
    assert!(p.critical_path.len() >= 2, "{:?}", p.critical_path);
    assert_eq!(p.critical_path.last().unwrap().stage, "result.emit");
    assert!(
        !p.operators.is_empty(),
        "pipeline meters must fill the operator table"
    );

    // The rendered artifacts.
    assert!(profiled.explain.contains("EXPLAIN ANALYZE query"));
    assert!(profiled.explain.contains("critical path"));
    assert!(profiled
        .explain
        .contains("reconciliation: OK (measured <= static everywhere)"));
    assert!(!profiled.span_jsonl.is_empty());
    assert!(profiled
        .chrome_json
        .starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(profiled.chrome_json.ends_with("]}"));
}

#[test]
fn span_dogfood_standing_query_counts_stages_through_pier() {
    // Spans published into `system.spans` must be queryable by an ordinary
    // sqlish standing query — PIER monitoring its own tracing layer.
    let mut cluster_cfg = ClusterConfig::lan(6, 67).with_liveness_timeout(3_000_000);
    cluster_cfg.pier.telemetry = TelemetryConfig::publishing(1_000_000);
    cluster_cfg.pier.telemetry.span_capacity = 65_536;
    cluster_cfg.pier.trace = TraceConfig::publishing();
    let mut cluster = Cluster::start(&cluster_cfg);
    let proxy = cluster.addr(0);
    let _ = cluster.sim.drain_outputs();

    // The traced workload: a standing aggregate over a packet stream.
    let netmon = sqlish::compile(
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s",
        proxy,
        40_000_000,
    )
    .expect("netmon compiles");
    cluster.sim.invoke(proxy, |node, ctx| {
        node.submit_query(ctx, netmon);
    });
    // The monitor: per-node span counts read back out of the DHT.
    let monitor = sqlish::compile(
        "SELECT node, COUNT(*) FROM system.spans GROUP BY node WINDOW 6s SLIDE 3s EVERY 5s",
        proxy,
        40_000_000,
    )
    .expect("monitor compiles");
    let mut monitor_id = 0u64;
    cluster.sim.invoke(proxy, |node, ctx| {
        monitor_id = node.submit_query(ctx, monitor);
    });
    cluster.settle(1_000_000);

    for round in 0..48u64 {
        for i in 0..cluster.len() {
            let addr = cluster.addr(i);
            let tuple = Tuple::new(
                "packets",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", round % 7).into())),
                    ("ts", Value::Int(round as i64)),
                ],
            );
            cluster.sim.invoke(addr, move |node, ctx| {
                node.ingest(ctx, "packets", tuple);
            });
        }
        cluster.settle(250_000);
    }
    cluster.settle(12_000_000);

    let mut span_rows = 0i64;
    for out in cluster.sim.drain_outputs() {
        if let PierOut::WindowResult {
            query_id, tuple, ..
        } = out.value
        {
            if query_id == monitor_id && out.node == proxy {
                span_rows += tuple.get("count").and_then(Value::as_i64).unwrap_or(0);
            }
        }
    }
    assert!(
        span_rows > 0,
        "the standing query over system.spans must observe published spans"
    );
}

#[test]
fn span_ring_overflow_is_flagged_in_the_cluster_summary() {
    // A deliberately tiny span ring must overflow, and the harness summary
    // must flag the drop so a truncated export is never mistaken for a
    // complete trace.
    let mut cfg = traced_cfg(6, 8, 71);
    cfg.pier.telemetry.span_capacity = 2;
    let (out, _cluster) = continuous_netmon_observed(&cfg);
    assert!(out.telemetry.trace_dropped > 0);
    assert!(out.telemetry.has_trace_drops());
}
