//! FIG3 / FIG4 — "native simulation": the same node program, unmodified,
//! runs under the discrete-event Simulation Environment and under the
//! Physical Runtime Environment, and produces equivalent behaviour
//! (§2.1.3, §3.1).

use pier::dht::{make_ring_refs, DhtNode, ObjectName, OverlayConfig};
use pier::runtime::physical::PhysicalRuntime;
use pier::runtime::{SimConfig, Simulator};

/// The workload: node 1 publishes an object; node 2 reads it back.
/// We run it once under each environment and require the same outcome.
#[test]
fn same_program_runs_under_simulator_and_physical_runtime() {
    let refs = make_ring_refs(4, 15);

    // --- Simulation Environment ------------------------------------------
    let mut sim: Simulator<DhtNode<String>> = Simulator::new(SimConfig::lan(15));
    for r in &refs {
        sim.add_node(DhtNode::with_static_ring(
            *r,
            &refs,
            OverlayConfig::default(),
        ));
    }
    sim.run_until(1_000);
    sim.invoke(refs[1].addr, |node, ctx| {
        let now = ctx.now();
        let effects = node.overlay_mut().put(
            ObjectName::new("t", "k", 7),
            "native".to_string(),
            60_000_000,
            now,
        );
        node.apply(ctx, effects);
    });
    sim.run_for(1_000_000);
    sim.invoke(refs[2].addr, |node, ctx| {
        let now = ctx.now();
        let (_rid, effects) = node.overlay_mut().get("t", "k", now);
        node.apply(ctx, effects);
    });
    sim.run_for(1_000_000);
    let sim_results = sim.node(refs[2].addr).unwrap().get_results();
    assert_eq!(sim_results.len(), 1);
    assert_eq!(sim_results[0].1, 1, "simulation: one object found");

    // --- Physical Runtime Environment --------------------------------------
    // The same `DhtNode` type — byte-for-byte the same program logic — runs
    // on OS threads against the real clock.  We pre-load the object at the
    // node that owns it (the same responsibility the simulation computed)
    // through the same overlay API, boot the network for a while, and check
    // that the object is still being served and that the same maintenance
    // protocol generated traffic.
    let mut rt: PhysicalRuntime<DhtNode<String>> = PhysicalRuntime::new();
    let mut nodes: Vec<DhtNode<String>> = refs
        .iter()
        .map(|r| DhtNode::with_static_ring(*r, &refs, OverlayConfig::default()))
        .collect();
    let name = ObjectName::new("t", "k", 7);
    let target = name.routing_id();
    let owner_idx = refs
        .iter()
        .position(|r| {
            sim.node(r.addr)
                .unwrap()
                .overlay()
                .router()
                .is_responsible(target)
        })
        .expect("some node owns the key");
    // A local put at the owner stores the object directly (no network yet).
    let _ = nodes[owner_idx]
        .overlay_mut()
        .put(name, "native".to_string(), 60_000_000, 0);
    for node in nodes {
        rt.add_node(node);
    }
    // Run long enough for at least one stabilization round (1 s) to fire.
    let run = rt.run_for(std::time::Duration::from_millis(1300));
    assert_eq!(run.programs.len(), 4);
    assert!(run.stats.total_msgs > 0, "maintenance traffic must flow");
    let served = run.programs[owner_idx].overlay().local_scan("t", 1_000_000);
    assert_eq!(served.len(), 1, "physical runtime: object still served");
    assert_eq!(served[0].value, "native");
}
