//! Telemetry determinism and zero-interference guarantees.
//!
//! The observability layer stamps everything with virtual time and
//! per-node ordinals — never wall clock — so it must be *bit-for-bit
//! reproducible*: two runs of the same seeded workload produce identical
//! metric values and byte-identical trace JSONL.  And because metrics are
//! recorded off the query path (publishing aside), enabling telemetry
//! must not perturb query results: an enabled-but-not-publishing run
//! returns exactly the rows a telemetry-disabled run returns.

use pier::harness::tenants::{many_tenants, ManyTenantsConfig, TenantResult};
use pier::harness::{self_monitoring, SelfMonitoringConfig};
use pier::qp::TelemetryConfig;
use std::collections::BTreeMap;

/// Canonical per-tenant window representation: sorted display strings per
/// window, keyed by (tenant src, window bounds).
fn window_map(tenants: &[TenantResult]) -> BTreeMap<(String, (u64, u64)), Vec<String>> {
    let mut map = BTreeMap::new();
    for t in tenants {
        for (window, rows) in &t.windows {
            let mut rendered: Vec<String> =
                rows.iter().map(std::string::ToString::to_string).collect();
            rendered.sort();
            map.insert((t.src.clone(), *window), rendered);
        }
    }
    map
}

#[test]
fn identical_seeds_produce_byte_identical_traces() {
    let cfg = SelfMonitoringConfig::new(6, 10, 23);
    let a = self_monitoring(&cfg);
    let b = self_monitoring(&cfg);

    // The structured event trace is the strongest artifact: every event
    // carries its sim time and per-node ordinal, so byte equality proves
    // the whole instrumented execution replayed identically.
    assert!(
        !a.trace_jsonl.is_empty(),
        "the traced node must record events"
    );
    assert_eq!(
        a.trace_jsonl, b.trace_jsonl,
        "same seed must yield a byte-identical trace JSONL"
    );

    // The monitoring queries' result streams must agree too — same
    // windows, same per-node values.
    assert_eq!(a.publishes, b.publishes);
    assert_eq!(a.events, b.events);
    assert_eq!(a.bytes_recv.len(), b.bytes_recv.len());
    for (wa, wb) in a.bytes_recv.iter().zip(&b.bytes_recv) {
        assert_eq!(wa.window, wb.window);
        assert_eq!(wa.per_node, wb.per_node);
    }
    assert_eq!(a.lookup_p99.len(), b.lookup_p99.len());
    for (wa, wb) in a.lookup_p99.iter().zip(&b.lookup_p99) {
        assert_eq!(wa.window, wb.window);
        assert_eq!(wa.per_node, wb.per_node);
    }
}

#[test]
fn enabled_telemetry_does_not_perturb_query_results() {
    // Same seeded workload twice: telemetry disabled (the default), then
    // enabled with publishing OFF — recording only, no metrics tuples, no
    // extra DHT traffic, no extra rng draws.  Results must be identical.
    let mut cfg = ManyTenantsConfig::new(6, 8, 6, 71);
    cfg.events_per_node_per_sec = 6;

    let disabled = many_tenants(&cfg);
    cfg.pier.telemetry = TelemetryConfig::enabled();
    let enabled = many_tenants(&cfg);

    assert_eq!(
        disabled.events, enabled.events,
        "both runs must stream the same workload"
    );
    assert_eq!(
        (disabled.total_msgs, disabled.total_bytes),
        (enabled.total_msgs, enabled.total_bytes),
        "recording-only telemetry must not move a single extra byte"
    );
    let rows_disabled = window_map(&disabled.tenants);
    let rows_enabled = window_map(&enabled.tenants);
    assert!(
        rows_disabled.values().any(|rows| !rows.is_empty()),
        "the workload must produce result rows"
    );
    assert_eq!(
        rows_disabled, rows_enabled,
        "telemetry must be invisible to query results"
    );
}
