//! Property-based tests (proptest) on the core data structures and
//! invariants: ring-interval arithmetic, soft-state lifetimes, join and
//! aggregation equivalence with reference implementations, Bloom-filter
//! soundness, and PHT range-query correctness.

use pier::cq::{
    CqBudget, SegmentLog, SegmentRecord, WindowAccumulator, WindowSegment, WindowSpec, WindowStore,
};
use pier::dht::id::Id;
use pier::dht::{ObjectManager, ObjectName};
use pier::pht::{MemoryStore, Pht};
use pier::qp::{
    nested_loop_join, AggFunc, BloomFilter, GroupBy, JoinSide, LocalOperator, SymmetricHashJoin,
    Tuple, TupleBatch, Value,
};
use proptest::prelude::*;

/// Toy mergeable sum used by the window-state properties.
#[derive(Debug, Clone, PartialEq)]
struct PSum(i64);

impl WindowAccumulator for PSum {
    fn merge(&mut self, other: &Self) {
        self.0 += other.0;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring-interval membership: exactly one of `x ∈ (a, b]` and `x ∈ (b, a]`
    /// holds whenever a ≠ b (the two arcs partition the ring), and the
    /// clockwise distances around the ring sum to 2^64 (i.e. 0 in wrapping
    /// arithmetic).
    #[test]
    fn ring_arcs_partition_the_identifier_space(a: u64, b: u64, x: u64) {
        prop_assume!(a != b);
        let (ia, ib, ix) = (Id(a), Id(b), Id(x));
        let in_ab = ix.in_interval(ia, ib);
        let in_ba = ix.in_interval(ib, ia);
        if x == a || x == b {
            // Endpoints belong to exactly one closed end.
            prop_assert!(in_ab ^ in_ba);
        } else {
            prop_assert!(in_ab ^ in_ba, "x must be in exactly one arc");
        }
        prop_assert_eq!(ia.distance_to(ib).wrapping_add(ib.distance_to(ia)), 0u64.wrapping_sub(0));
    }

    /// Soft state: an object is visible until its (clamped) lifetime expires
    /// and invisible afterwards; renewing an expired object always fails.
    #[test]
    fn soft_state_lifetimes_are_respected(lifetime in 1u64..10_000, max in 1u64..10_000, probe in 0u64..30_000) {
        let mut om: ObjectManager<u32> = ObjectManager::new(max);
        let name = ObjectName::new("t", "k", 1);
        let expires = om.put(name.clone(), 7, lifetime, 0);
        prop_assert_eq!(expires, lifetime.min(max));
        let visible = !om.get("t", "k", probe).is_empty();
        prop_assert_eq!(visible, probe <= expires);
        if probe > expires {
            prop_assert!(!om.renew(&name, 1_000, probe));
        }
    }

    /// The streaming Symmetric Hash join produces exactly the same result
    /// multiset size as a nested-loop reference join, for any interleaving.
    #[test]
    fn symmetric_hash_join_matches_nested_loop(
        left_keys in proptest::collection::vec(0i64..8, 0..40),
        right_keys in proptest::collection::vec(0i64..8, 0..40),
    ) {
        let key = vec!["b".to_string()];
        let left: Vec<Tuple> = left_keys
            .iter()
            .enumerate()
            .map(|(i, b)| Tuple::new("r", vec![("a", Value::Int(i as i64)), ("b", Value::Int(*b))]))
            .collect();
        let right: Vec<Tuple> = right_keys
            .iter()
            .enumerate()
            .map(|(i, b)| Tuple::new("s", vec![("b", Value::Int(*b)), ("c", Value::Int(i as i64))]))
            .collect();
        let mut join = SymmetricHashJoin::new(key.clone(), key.clone(), "rs");
        let mut streamed = 0usize;
        let mut l = left.iter();
        let mut r = right.iter();
        loop {
            match (l.next(), r.next()) {
                (None, None) => break,
                (lt, rt) => {
                    if let Some(t) = lt {
                        streamed += join.push_side(JoinSide::Left, t.clone()).len();
                    }
                    if let Some(t) = rt {
                        streamed += join.push_side(JoinSide::Right, t.clone()).len();
                    }
                }
            }
        }
        let reference = nested_loop_join(&left, &right, &key, &key, "rs").len();
        prop_assert_eq!(streamed, reference);
    }

    /// Merging per-partition partial aggregates equals aggregating all the
    /// data at one site, however the data is partitioned (the invariant that
    /// makes hierarchical aggregation correct).
    #[test]
    fn partial_aggregate_merge_is_partition_invariant(
        values in proptest::collection::vec((0i64..5, -100i64..100), 1..60),
        split in 1usize..4,
    ) {
        let mk = || GroupBy::new(vec!["g".into()], vec![AggFunc::Count, AggFunc::Sum("v".into()), AggFunc::Avg("v".into())], "out");
        let mut reference = mk();
        let mut partials: Vec<GroupBy> = (0..split).map(|_| mk()).collect();
        for (i, (g, v)) in values.iter().enumerate() {
            let t = Tuple::new("t", vec![("g", Value::Int(*g)), ("v", Value::Int(*v))]);
            reference.push(t.clone());
            partials[i % split].push(t);
        }
        let mut root = mk();
        for p in &mut partials {
            for partial in p.flush() {
                root.merge_partial(&partial);
            }
        }
        let mut expect = reference.flush();
        let mut got = root.flush();
        let key = |t: &Tuple| t.get("g").unwrap().key_string();
        expect.sort_by_key(key);
        got.sort_by_key(key);
        prop_assert_eq!(expect.len(), got.len());
        for (a, b) in expect.iter().zip(&got) {
            prop_assert_eq!(a.get("count"), b.get("count"));
            prop_assert_eq!(a.get("sum_v"), b.get("sum_v"));
            prop_assert_eq!(a.get("avg_v"), b.get("avg_v"));
        }
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_filter_has_no_false_negatives(keys in proptest::collection::vec("[a-z]{1,12}", 1..100)) {
        let mut f = BloomFilter::new(2048, 3);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Window-state merge is order-insensitive: merging the same partials
    /// in any two interleavings yields identical per-window, per-group
    /// state — the invariant that lets closed-window partials combine at
    /// arbitrary upcall hops in arbitrary arrival orders.
    #[test]
    fn window_state_merge_is_order_insensitive(
        partials in proptest::collection::vec((0u64..6, 0u64..4, -50i64..50), 1..80),
        swap_seed in proptest::collection::vec(0usize..80, 0..40),
    ) {
        let spec = WindowSpec::sliding(20, 10);
        let mut shuffled = partials.clone();
        // Deterministic permutation driven by the generated swap indices.
        for (i, s) in swap_seed.iter().enumerate() {
            let a = i % shuffled.len();
            let b = s % shuffled.len();
            shuffled.swap(a, b);
        }
        let run = |items: &[(u64, u64, i64)]| {
            let mut store: WindowStore<PSum> = WindowStore::new(spec, CqBudget::default());
            for (wid, group, v) in items {
                store.merge_partial(*wid, &format!("g{group}"), PSum(*v));
            }
            let mut closed = store.close_due(10_000);
            for (_, groups) in &mut closed {
                groups.sort_by(|a, b| a.0.cmp(&b.0));
            }
            closed
        };
        prop_assert_eq!(run(&partials), run(&shuffled));
    }

    /// Expired window state is actually dropped: streaming through 1 000
    /// tumbling windows with periodic closes leaves no residue, and the
    /// open-window count never exceeds the budget cap at any point.
    #[test]
    fn expired_window_state_is_dropped_across_1k_windows(
        events_per_window in 1u64..6,
        groups in 1u64..5,
        close_every in 1u64..40,
    ) {
        let budget = CqBudget {
            max_open_windows: 8,
            ..CqBudget::default()
        };
        let mut store: WindowStore<PSum> = WindowStore::new(WindowSpec::tumbling(10), budget);
        let mut drained = 0u64;
        for w in 0..1_000u64 {
            for e in 0..events_per_window {
                let t = w * 10 + (e % 10);
                store.push(t, &format!("g{}", e % groups), None, || PSum(0), |a| a.0 += 1);
            }
            prop_assert!(store.open_windows() <= 8, "cap violated at window {}", w);
            if w % close_every == 0 {
                drained += store.close_due(w * 10) .len() as u64;
            }
        }
        drained += store.close_due(1_000_000).len() as u64;
        // Everything closed, nothing retained.
        prop_assert_eq!(store.open_windows(), 0);
        prop_assert_eq!(store.total_groups(), 0);
        // Every window either drained with its data or was evicted by the
        // open-window cap; none lingers.
        let stats = store.stats();
        prop_assert_eq!(drained + stats.evicted_windows, 1_000);
    }

    /// Schema-interned tuples behave exactly like the naive self-describing
    /// representation they replaced: `get` returns the first occurrence of
    /// a (possibly duplicated) column, `project` keeps the requested shape
    /// with NULL fill, and `partition_key` is the `|`-joined canonical key
    /// of the named columns (or None when any is missing).
    #[test]
    fn interned_tuples_match_naive_self_describing_reference(
        col_picks in proptest::collection::vec(0usize..6, 1..10),
        vals in proptest::collection::vec(-50i64..50, 10..11),
        probes in proptest::collection::vec(0usize..8, 1..5),
    ) {
        const POOL: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];
        // The naive representation: owned (column, value) pairs, linear scans.
        let fields: Vec<(String, Value)> = col_picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let v = if vals[i % vals.len()] % 3 == 0 {
                    Value::Str(format!("s{}", vals[i % vals.len()]).into())
                } else {
                    Value::Int(vals[i % vals.len()])
                };
                (POOL[p].to_string(), v)
            })
            .collect();
        let naive_get = |col: &str| -> Option<&Value> {
            fields.iter().find(|(c, _)| c == col).map(|(_, v)| v)
        };
        let tuple = Tuple::new(
            "t",
            fields.iter().map(|(c, v)| (c.as_str(), v.clone())).collect(),
        );
        prop_assert_eq!(tuple.table(), "t");
        prop_assert_eq!(tuple.arity(), fields.len());
        let probe_cols: Vec<String> = probes.iter().map(|&p| POOL[p].to_string()).collect();
        // get: first occurrence, None for absent columns.
        for col in &probe_cols {
            prop_assert_eq!(tuple.get(col), naive_get(col));
        }
        // partition_key: canonical '|'-joined key strings, all-or-nothing.
        let naive_key: Option<String> = probe_cols
            .iter()
            .map(|c| naive_get(c).map(Value::key_string))
            .collect::<Option<Vec<_>>>()
            .map(|ks| ks.join("|"));
        prop_assert_eq!(tuple.partition_key(&probe_cols), naive_key);
        // project: requested columns in order, NULL fill for absent ones.
        let projected = tuple.project(&probe_cols);
        prop_assert_eq!(projected.table(), "t");
        prop_assert_eq!(projected.columns(), probe_cols.as_slice());
        let naive_projected: Vec<Value> = probe_cols
            .iter()
            .map(|c| naive_get(c).cloned().unwrap_or(Value::Null))
            .collect();
        prop_assert_eq!(projected.values(), naive_projected.as_slice());
        // Same shape re-interns to the same schema; cloning shares it.
        let again = Tuple::new(
            "t",
            fields.iter().map(|(c, v)| (c.as_str(), v.clone())).collect(),
        );
        prop_assert!(std::sync::Arc::ptr_eq(tuple.schema(), again.schema()));
        prop_assert_eq!(&tuple.clone(), &tuple);
    }

    /// Columnar↔row-major round trip: packing tuples into a columnar
    /// `TupleBatch` and unpacking preserves every tuple bit-for-bit — same
    /// order, same interned schema (pointer identity), same values (floats
    /// compared by bit pattern) — across arbitrarily interleaved schemas.
    #[test]
    fn columnar_round_trip_preserves_tuples_bit_for_bit(
        shape_picks in proptest::collection::vec(0usize..4, 0..40),
        ints in proptest::collection::vec(-1_000i64..1_000, 8..9),
        floats in proptest::collection::vec(-1e6f64..1e6, 4..5),
    ) {
        let rows: Vec<Tuple> = shape_picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                let n = ints[i % ints.len()];
                let f = floats[i % floats.len()];
                match pick {
                    0 => Tuple::new(
                        "events",
                        vec![
                            ("src", Value::Str(format!("10.0.0.{}", n.rem_euclid(16)).into())),
                            ("port", Value::Int(n)),
                        ],
                    ),
                    1 => Tuple::new(
                        "metrics",
                        vec![
                            ("load", Value::Float(f)),
                            ("up", Value::Bool(n % 2 == 0)),
                            ("note", Value::Null),
                        ],
                    ),
                    2 => Tuple::new(
                        "blobs",
                        vec![("digest", Value::bytes(n.to_le_bytes()))],
                    ),
                    _ => Tuple::new("empty", vec![]),
                }
            })
            .collect();
        let batch = TupleBatch::new(rows.clone());
        prop_assert_eq!(batch.len(), rows.len());
        let back = batch.clone().into_tuples();
        prop_assert_eq!(back.len(), rows.len());
        for (orig, round) in rows.iter().zip(&back) {
            // Schema identity survives (not just equality): interning means
            // the unpacked tuple shares the original's schema allocation.
            prop_assert!(std::sync::Arc::ptr_eq(orig.schema(), round.schema()));
            prop_assert_eq!(orig.values().len(), round.values().len());
            for (a, b) in orig.values().iter().zip(round.values()) {
                match (a, b) {
                    // Bit-for-bit for floats (PartialEq would also accept
                    // 0.0 == -0.0 and reject NaN == NaN).
                    (Value::Float(x), Value::Float(y)) => {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => prop_assert_eq!(a, b),
                }
            }
        }
        // Iteration agrees with consumption, and chunk row counts add up.
        prop_assert_eq!(batch.iter().collect::<Vec<_>>(), back);
        let chunk_rows: usize = batch.chunks().iter().map(pier::qp::ColumnChunk::rows).sum();
        prop_assert_eq!(chunk_rows, rows.len());
    }

    /// Compiled (positional) expression evaluation agrees with interpreted
    /// (name-resolving) evaluation on every outcome — values, missing
    /// columns and type mismatches alike.
    #[test]
    fn compiled_expr_agrees_with_interpreted_expr(
        a in -100i64..100,
        b in -100f64..100.0,
        threshold in -100i64..100,
        pick in 0usize..6,
    ) {
        use pier::qp::{CmpOp, Expr};
        let tuple = Tuple::new(
            "t",
            vec![
                ("a", Value::Int(a)),
                ("b", Value::Float(b)),
                ("name", Value::Str(format!("n{a}").into())),
            ],
        );
        let expr = match pick {
            0 => Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(threshold)),
            1 => Expr::cmp(CmpOp::Lt, Expr::col("b"), Expr::col("a")),
            2 => Expr::all(vec![
                Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(threshold)),
                Expr::cmp(CmpOp::Le, Expr::col("b"), Expr::lit(50.0)),
            ]),
            3 => Expr::eq("missing", threshold),
            4 => Expr::cmp(CmpOp::Eq, Expr::col("name"), Expr::lit(threshold)),
            _ => Expr::Contains("name".into(), "n1".into()),
        };
        let compiled = expr.compile(tuple.schema());
        prop_assert_eq!(compiled.eval(tuple.values()), expr.eval(&tuple));
        prop_assert_eq!(compiled.matches(tuple.values()), expr.matches(&tuple));
    }

    /// Chunk-to-chunk `push_batch` + `flush` is equivalent to per-tuple
    /// `push` + `flush` for arbitrary selection→projection→group-by stacks
    /// over arbitrarily mixed-schema streams and arbitrary arrival batch
    /// sizes — including shapes that lack the filtered column (discarded by
    /// the best-effort policy) and the per-run row-major escape hatch for
    /// interleaved schemas.
    #[test]
    fn chunked_pipeline_stack_matches_per_tuple_dispatch(
        threshold in -20i64..20,
        batch_size in 1usize..48,
        shape_picks in proptest::collection::vec(0usize..3, 1..120),
        vals in proptest::collection::vec(-30i64..30, 8..9),
    ) {
        use pier::qp::{CmpOp, Expr, Pipeline, Projection, Selection};
        let rows: Vec<Tuple> = shape_picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                let v = vals[i % vals.len()] + (i as i64 % 7);
                match pick {
                    0 => Tuple::new(
                        "t",
                        vec![("g", Value::Int(v.rem_euclid(4))), ("x", Value::Int(v))],
                    ),
                    1 => Tuple::new(
                        "t",
                        vec![
                            ("g", Value::Int(v.rem_euclid(4))),
                            ("x", Value::Int(v)),
                            ("extra", Value::Bool(v % 2 == 0)),
                        ],
                    ),
                    // No `x`: the selection must discard these wholesale.
                    _ => Tuple::new("u", vec![("g", Value::Int(v.rem_euclid(4)))]),
                }
            })
            .collect();
        let mk = || {
            Pipeline::new(vec![
                Box::new(Selection::new(Expr::cmp(
                    CmpOp::Ge,
                    Expr::col("x"),
                    Expr::lit(threshold),
                ))) as Box<dyn LocalOperator + Send>,
                Box::new(Projection::new(vec!["g".into(), "x".into()])),
                Box::new(GroupBy::new(
                    vec!["g".into()],
                    vec![
                        AggFunc::Count,
                        AggFunc::Sum("x".into()),
                        AggFunc::Avg("x".into()),
                    ],
                    "out",
                )),
            ])
        };
        let mut per_tuple = mk();
        let mut chunked = mk();
        let mut streamed = Vec::new();
        for t in rows.iter().cloned() {
            streamed.extend(per_tuple.push(t));
        }
        let mut batch_out = Vec::new();
        for window in rows.chunks(batch_size) {
            batch_out.extend(
                chunked
                    .push_batch(&TupleBatch::new(window.to_vec()))
                    .into_tuples(),
            );
        }
        // A group-by tail absorbs everything before flush, on both paths.
        prop_assert_eq!(&batch_out, &streamed);
        let a = chunked.flush();
        let b = per_tuple.flush();
        prop_assert_eq!(a, b);
    }

    /// PHT range queries return exactly the keys a sorted scan would.
    #[test]
    fn pht_range_matches_sorted_scan(
        keys in proptest::collection::btree_set(0u64..100_000, 0..150),
        lo in 0u64..100_000,
        width in 0u64..50_000,
    ) {
        let hi = lo.saturating_add(width);
        let mut pht = Pht::new(MemoryStore::default(), 4);
        for &k in &keys {
            pht.insert(k, format!("v{k}"));
        }
        let got: Vec<u64> = pht.range(lo, hi).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<u64> = keys.iter().copied().filter(|k| (lo..=hi).contains(k)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Durable window segments: encode → scan → re-encode is byte-for-byte
    /// stable for arbitrary window contents, and every record survives the
    /// round trip intact (the rehydrate path sees exactly what was written).
    #[test]
    fn segment_log_round_trip_is_byte_stable(
        ids in proptest::collection::vec(0u64..1_000, 1..8),
        raw_groups in proptest::collection::vec((0u32..40, proptest::collection::vec(0u8..255, 0..12)), 0..16),
        raw_seen in proptest::collection::vec(0u32..40, 0..10),
        tuples in 0u64..100_000,
        dirty: bool,
        closed in 0u64..50,
        retired in 0u64..50,
    ) {
        // Window segments store group and dedup keys sorted (that is the
        // byte-stability contract the store upholds on encode).
        let mut groups: Vec<(String, Vec<u8>)> = raw_groups
            .iter()
            .map(|(k, v)| (format!("g{k:03}"), v.clone()))
            .collect();
        groups.sort();
        groups.dedup_by(|a, b| a.0 == b.0);
        let mut seen: Vec<String> = raw_seen.iter().map(|k| format!("d{k:03}")).collect();
        seen.sort();
        seen.dedup();

        let mut log = SegmentLog::new();
        let mut written = Vec::new();
        for &id in &ids {
            written.push(SegmentRecord::Window(WindowSegment {
                id,
                tuples,
                dirty,
                groups: groups.clone(),
                seen: seen.clone(),
            }));
        }
        written.push(SegmentRecord::Watermark {
            closed_through: (closed > 0).then_some(closed),
            retired_through: (retired > 0).then_some(retired),
        });
        for rec in &written {
            log.append(rec);
        }

        let scan = log.scan();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(&scan.records, &written);
        prop_assert_eq!(scan.valid_len, log.len());

        // Re-encoding the scanned records reproduces the log byte-for-byte.
        let mut reencoded = SegmentLog::new();
        for rec in &scan.records {
            reencoded.append(rec);
        }
        prop_assert_eq!(reencoded.as_bytes(), log.as_bytes());
    }

    /// Tearing any number of bytes off a record's tail (a crash mid-append)
    /// is always detected: the scan recovers exactly the clean prefix, and
    /// truncation leaves a log that scans clean.
    #[test]
    fn segment_torn_tail_is_detected_and_truncated(
        n_clean in 0usize..5,
        state in proptest::collection::vec(0u8..255, 1..24),
        tear_frac in 0.0f64..1.0,
    ) {
        let rec = |id: u64| SegmentRecord::Window(WindowSegment {
            id,
            tuples: state.len() as u64,
            dirty: true,
            groups: vec![("k".to_string(), state.clone())],
            seen: Vec::new(),
        });
        let mut log = SegmentLog::new();
        for i in 0..n_clean {
            log.append(&rec(i as u64));
        }
        let clean_len = log.len();
        log.append(&rec(99));
        let last_len = log.len() - clean_len;
        // Drop between 1 byte and the entire last record.
        let drop = 1 + ((last_len - 1) as f64 * tear_frac) as usize;
        log.tear_tail(drop);

        let scan = log.scan();
        prop_assert!(scan.torn_tail, "a partial record must be flagged");
        prop_assert_eq!(scan.records.len(), n_clean);
        prop_assert_eq!(scan.valid_len, clean_len);

        let removed = log.truncate_torn_tail();
        prop_assert_eq!(removed, last_len - drop);
        let after = log.scan();
        prop_assert!(!after.torn_tail);
        prop_assert_eq!(after.records.len(), n_clean);
        prop_assert_eq!(log.len(), clean_len);
    }
}
