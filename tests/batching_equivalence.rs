//! Batched vs per-tuple DHT transfer equivalence: the netmon workload
//! (snapshot hierarchical aggregation, rehash join, and the continuous
//! windowed query) must produce *identical result multisets* whether the
//! executor coalesces same-destination tuples into `TupleBatch` transfers
//! or performs one overlay `put` per tuple — while the batched run moves
//! strictly fewer messages and bytes.

use pier::harness::continuous::{continuous_netmon, ContinuousNetmonConfig};
use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{sqlish, JoinSpec, OpGraph, PlanBuilder, SinkSpec, SourceSpec, Tuple, Value};

/// Mix the CI seed matrix into a test's default seed: `PIER_SEED`, when
/// set, perturbs every cluster/workload seed so the equivalence properties
/// are exercised under several distinct topologies and fault realisations
/// (the assertions here are structural — equality between two runs over the
/// same seed — so they must hold for *any* seed).
fn seeded(default: u64) -> u64 {
    match std::env::var("PIER_SEED") {
        Ok(s) => default ^ s.trim().parse::<u64>().expect("PIER_SEED must be a u64"),
        Err(_) => default,
    }
}

/// Sorted display strings — a canonical multiset representation.
fn multiset(tuples: &[Tuple]) -> Vec<String> {
    let mut rows: Vec<String> = tuples
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    rows.sort();
    rows
}

/// The Figure-2 snapshot query (per-source counts via hierarchical
/// aggregation) over node-local event logs.
fn run_netmon_snapshot(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ClusterConfig::lan(14, seeded(707));
    cfg.pier.batching = batching;
    let mut cluster = Cluster::start(&cfg);
    // Enough distinct sources that every periodic flush ships a real pile
    // of per-group partials (the batched path collapses each pile into one
    // transfer per hop).
    for i in 0..cluster.len() {
        for j in 0..24 {
            let src = format!("10.0.0.{}", j % 12);
            let addr = cluster.addr(i);
            cluster.add_local_row(
                addr,
                "events",
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(src.into())),
                        ("port", Value::Int((i * 24 + j) as i64)),
                    ],
                ),
            );
        }
    }
    let proxy = cluster.addr(1);
    let plan = sqlish::compile(
        "SELECT src, COUNT(*) FROM events GROUP BY src",
        proxy,
        20_000_000,
    )
    .expect("snapshot netmon query must compile");
    cluster.reset_stats();
    let outcome = cluster.run_query(proxy, plan);
    let stats = cluster.sim.stats();
    (
        multiset(&outcome.tuples()),
        stats.total_msgs,
        stats.total_bytes,
    )
}

/// A rehash (Put/Exchange) symmetric-hash join — the other batched path.
fn run_rehash_join(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ClusterConfig::lan(12, seeded(909));
    cfg.pier.batching = batching;
    let mut cluster = Cluster::start(&cfg);
    let key = vec!["b".to_string()];
    for i in 0..40i64 {
        let from = cluster.addr((i as usize) % cluster.len());
        cluster.publish(
            from,
            "r",
            &key,
            Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 8))]),
        );
    }
    for i in 0..30i64 {
        let from = cluster.addr((i as usize + 5) % cluster.len());
        cluster.publish(
            from,
            "s",
            &key,
            Tuple::new(
                "s",
                vec![("b", Value::Int(i % 8)), ("c", Value::Int(i * 10))],
            ),
        );
    }
    cluster.settle(3_000_000);
    let proxy = cluster.addr(0);
    let ns = "q.join".to_string();
    let rehash = |id: u32, table: &str| OpGraph {
        id,
        source: SourceSpec::Table {
            namespace: table.into(),
        },
        join: None,
        ops: vec![],
        sink: SinkSpec::Rehash {
            namespace: ns.clone(),
            key_cols: key.clone(),
        },
    };
    let plan = PlanBuilder::new(proxy)
        .timeout(20_000_000)
        .opgraph(rehash(0, "r"))
        .opgraph(rehash(1, "s"))
        .opgraph(OpGraph {
            id: 2,
            source: SourceSpec::Table {
                namespace: ns.clone(),
            },
            join: Some(JoinSpec {
                left_table: "r".into(),
                right_table: "s".into(),
                left_key: key.clone(),
                right_key: key.clone(),
                output_table: "r_s".into(),
            }),
            ops: vec![],
            sink: SinkSpec::ToProxy,
        })
        .build();
    cluster.reset_stats();
    let outcome = cluster.run_query(proxy, plan);
    let stats = cluster.sim.stats();
    (
        multiset(&outcome.tuples()),
        stats.total_msgs,
        stats.total_bytes,
    )
}

/// The continuous (standing) netmon query: per-window per-source counts.
fn run_continuous(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ContinuousNetmonConfig::steady(10, 12, seeded(42));
    cfg.pier.batching = batching;
    let out = continuous_netmon(&cfg);
    let mut rows: Vec<String> = out
        .windows
        .iter()
        .flat_map(|(&(start, end), w)| w.rows.iter().map(move |t| format!("[{start},{end}) {t}")))
        .collect();
    rows.sort();
    (rows, out.total_msgs, out.total_bytes)
}

fn assert_equivalent_and_cheaper(
    what: &str,
    unbatched: (Vec<String>, u64, u64),
    batched: (Vec<String>, u64, u64),
) {
    assert!(
        !batched.0.is_empty(),
        "{what}: batched run must produce results"
    );
    println!(
        "{what}: rows={} msgs {} -> {} ({:.1}% fewer), bytes {} -> {} ({:.1}% fewer)",
        batched.0.len(),
        unbatched.1,
        batched.1,
        100.0 * (unbatched.1 - batched.1) as f64 / unbatched.1 as f64,
        unbatched.2,
        batched.2,
        100.0 * (unbatched.2 - batched.2) as f64 / unbatched.2 as f64,
    );
    assert_eq!(
        unbatched.0, batched.0,
        "{what}: result multisets must be identical with and without batching"
    );
    assert!(
        batched.1 < unbatched.1,
        "{what}: batching must move strictly fewer messages ({} vs {})",
        batched.1,
        unbatched.1
    );
    assert!(
        batched.2 < unbatched.2,
        "{what}: batching must move strictly fewer bytes ({} vs {})",
        batched.2,
        unbatched.2
    );
}

#[test]
fn netmon_snapshot_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper(
        "snapshot netmon",
        run_netmon_snapshot(false),
        run_netmon_snapshot(true),
    );
}

#[test]
fn rehash_join_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper("rehash join", run_rehash_join(false), run_rehash_join(true));
}

#[test]
fn continuous_netmon_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper(
        "continuous netmon",
        run_continuous(false),
        run_continuous(true),
    );
}

/// The netmon event stream used by the operator-level equivalence test.
fn netmon_stream(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(
                "events",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 9).into())),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + (i * 37) % 1400)),
                ],
            )
        })
        .collect()
}

/// The batch-at-a-time operator path (`Pipeline::push_batch`, columnar
/// chunks) must yield exactly the result multisets of per-tuple dispatch on
/// the netmon workload — filter, project and aggregate alike.
#[test]
fn batch_at_a_time_operator_path_matches_per_tuple_dispatch() {
    use pier::qp::{
        AggFunc, CmpOp, Expr, GroupBy, LocalOperator, Pipeline, Projection, Selection, TupleBatch,
    };
    let rows = netmon_stream(2_000);
    let mk = || {
        Pipeline::new(vec![
            Box::new(Selection::new(Expr::cmp(
                CmpOp::Lt,
                Expr::col("port"),
                Expr::lit(768i64),
            ))) as Box<dyn LocalOperator + Send>,
            Box::new(Projection::new(vec!["src".into(), "len".into()])),
            Box::new(GroupBy::new(
                vec!["src".into()],
                vec![AggFunc::Count, AggFunc::Sum("len".into())],
                "per_src",
            )),
        ])
    };
    let mut per_tuple = mk();
    let mut batched = mk();
    let mut streamed = Vec::new();
    for t in rows.iter().cloned() {
        streamed.extend(per_tuple.push(t));
    }
    // Feed the same stream as DHT-arrival-sized batches (64, the default
    // `batch_max_tuples`), as the executor's PutBatch receive path would.
    let mut batch_out = Vec::new();
    for window in rows.chunks(64) {
        batch_out.extend(
            batched
                .push_batch(&TupleBatch::new(window.to_vec()))
                .into_tuples(),
        );
    }
    assert_eq!(multiset(&batch_out), multiset(&streamed));
    let flushed_batched = batched.flush();
    assert!(!flushed_batched.is_empty(), "group-by must produce groups");
    assert_eq!(multiset(&flushed_batched), multiset(&per_tuple.flush()));
}

/// Multi-stage chunk-to-chunk execution over **mixed-schema** batches: the
/// stream interleaves two shapes of `events` rows (one with an extra
/// column) plus rows of an unrelated table that the selection must discard
/// for lacking the filtered column — exercising the per-run row-major
/// escape hatch between every stage.  Chunked `push_batch` + `flush` must
/// equal per-tuple `push` + `flush` exactly.
#[test]
fn multi_stage_pipeline_matches_per_tuple_on_mixed_schema_batches() {
    use pier::qp::{
        AggFunc, CmpOp, Expr, GroupBy, LocalOperator, Pipeline, Projection, Selection, TupleBatch,
    };
    let rows: Vec<Tuple> = (0..900)
        .map(|i| match i % 4 {
            0 => Tuple::new(
                "events",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 6).into())),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + (i * 13) % 1400)),
                    ("flagged", Value::Bool(i % 5 == 0)),
                ],
            ),
            3 => Tuple::new("audit", vec![("note", Value::Str("skip".into()))]),
            _ => Tuple::new(
                "events",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 6).into())),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + (i * 13) % 1400)),
                ],
            ),
        })
        .collect();
    let mk = || {
        Pipeline::new(vec![
            Box::new(Selection::new(Expr::cmp(
                CmpOp::Lt,
                Expr::col("port"),
                Expr::lit(700i64),
            ))) as Box<dyn LocalOperator + Send>,
            Box::new(Projection::new(vec!["src".into(), "len".into()])),
            Box::new(GroupBy::new(
                vec!["src".into()],
                vec![AggFunc::Count, AggFunc::Avg("len".into())],
                "per_src",
            )),
        ])
    };
    let mut per_tuple = mk();
    let mut chunked = mk();
    let mut streamed = Vec::new();
    for t in rows.iter().cloned() {
        streamed.extend(per_tuple.push(t));
    }
    let mut batch_out = Vec::new();
    for window in rows.chunks(48) {
        let batch = TupleBatch::new(window.to_vec());
        assert!(
            batch.chunks().len() > 1,
            "the workload must actually interleave schemas"
        );
        batch_out.extend(chunked.push_batch(&batch).into_tuples());
    }
    assert_eq!(multiset(&batch_out), multiset(&streamed));
    let flushed = chunked.flush();
    assert!(!flushed.is_empty());
    assert_eq!(multiset(&flushed), multiset(&per_tuple.flush()));
}

/// Chunk-wise probes of the symmetric-hash join (the rehash-join batch
/// path) produce the same join-result multiset as per-tuple probes, under
/// interleaved mixed-table arrival batches.
#[test]
fn join_chunk_probe_matches_per_tuple_probe_on_netmon_rehash() {
    use pier::qp::{JoinSide, SymmetricHashJoin, TupleBatch};
    let flows: Vec<Tuple> = (0..300)
        .map(|i| {
            Tuple::new(
                "flows",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 9).into())),
                    ("bytes", Value::Int(i * 10)),
                ],
            )
        })
        .collect();
    let blocked: Vec<Tuple> = (0..60)
        .map(|i| {
            Tuple::new(
                "blocked",
                vec![("src", Value::Str(format!("10.0.0.{}", i % 12).into()))],
            )
        })
        .collect();
    let key = vec!["src".to_string()];
    let mut per_tuple = SymmetricHashJoin::new(key.clone(), key.clone(), "hits");
    let mut chunked = SymmetricHashJoin::new(key.clone(), key, "hits");
    let mut expected = Vec::new();
    for t in flows.iter().cloned() {
        expected.extend(per_tuple.push_side(JoinSide::Left, t));
    }
    for t in blocked.iter().cloned() {
        expected.extend(per_tuple.push_side(JoinSide::Right, t));
    }
    // Mixed-schema batches: runs of flows and blocked interleave, so the
    // columnar batch degrades to per-run chunks — the escape hatch path.
    let mut mixed: Vec<(JoinSide, Tuple)> = Vec::new();
    for (i, t) in flows.iter().enumerate() {
        mixed.push((JoinSide::Left, t.clone()));
        if i % 5 == 0 && i / 5 < blocked.len() {
            mixed.push((JoinSide::Right, blocked[i / 5].clone()));
        }
    }
    let mut got = Vec::new();
    for window in mixed.chunks(50) {
        // Within a window, group contiguous same-side runs as the executor's
        // per-destination buffers would.
        let mut run: Vec<Tuple> = Vec::new();
        let mut run_side = None;
        for (side, t) in window {
            match run_side {
                Some(s) if s == *side => run.push(t.clone()),
                Some(s) => {
                    for chunk in TupleBatch::new(std::mem::take(&mut run)).chunks() {
                        got.extend(chunked.push_chunk(s, chunk));
                    }
                    run_side = Some(*side);
                    run.push(t.clone());
                }
                None => {
                    run_side = Some(*side);
                    run.push(t.clone());
                }
            }
        }
        if let Some(s) = run_side {
            for chunk in TupleBatch::new(run).chunks() {
                got.extend(chunked.push_chunk(s, chunk));
            }
        }
    }
    assert_eq!(multiset(&got), multiset(&expected));
    assert!(!got.is_empty());
    assert_eq!(chunked.state_size(), per_tuple.state_size());
}

/// The gather-based `push_chunk_batch` — the join's chunk-native fast path,
/// which emits joined **typed chunks** directly instead of materialising
/// row tuples — produces the same result multiset as per-tuple `push_side`
/// on the netmon rehash workload, and its output chunks stay columnar:
/// every chunk carries the cached joined schema and the gathered key column
/// keeps its dictionary layout end to end (no degrade to the reference
/// layout mid-join).
#[test]
fn gather_join_batch_matches_per_tuple_and_stays_typed() {
    use pier::qp::tuple::ColumnChunk;
    use pier::qp::{JoinSide, SymmetricHashJoin, TupleBatch};
    // Netmon rehash shape: flows keyed by a low-cardinality source address
    // (dictionary column) joined against a blocked-source watchlist.
    let flows: Vec<Tuple> = (0..400)
        .map(|i| {
            Tuple::new(
                "flows",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 11).into())),
                    ("bytes", Value::Int(i * 7)),
                ],
            )
        })
        .collect();
    let blocked: Vec<Tuple> = (0..40)
        .map(|i| {
            Tuple::new(
                "blocked",
                vec![
                    ("src", Value::Str(format!("10.0.0.{}", i % 14).into())),
                    ("rule", Value::Int(i % 5)),
                ],
            )
        })
        .collect();
    let key = vec!["src".to_string()];
    let mut per_tuple = SymmetricHashJoin::new(key.clone(), key.clone(), "hits");
    let mut gathered = SymmetricHashJoin::new(key.clone(), key, "hits");
    let mut expected = Vec::new();
    for t in flows.iter().cloned() {
        expected.extend(per_tuple.push_side(JoinSide::Left, t));
    }
    for t in blocked.iter().cloned() {
        expected.extend(per_tuple.push_side(JoinSide::Right, t));
    }
    let mut got: Vec<Tuple> = Vec::new();
    let mut out_chunks: Vec<ColumnChunk> = Vec::new();
    for (side, rows) in [(JoinSide::Left, &flows), (JoinSide::Right, &blocked)] {
        for window in rows.chunks(64) {
            for chunk in TupleBatch::new(window.to_vec()).chunks() {
                let out = gathered.push_chunk_batch(side, chunk);
                got.extend(out.iter());
                out_chunks.extend(out.chunks().iter().cloned());
            }
        }
    }
    assert_eq!(multiset(&got), multiset(&expected));
    assert!(!got.is_empty());
    assert_eq!(gathered.state_size(), per_tuple.state_size());
    // Typed all the way through: each emitted chunk shares one joined
    // schema and its gathered key column is still dictionary-encoded.
    let joined_schema = out_chunks[0].schema().clone();
    for chunk in &out_chunks {
        assert!(
            std::sync::Arc::ptr_eq(chunk.schema(), &joined_schema),
            "joined schema must be cached and shared across output chunks"
        );
        let key_idx = chunk
            .schema()
            .position("src")
            .expect("joined schema keeps the key column");
        assert_eq!(
            chunk.col(key_idx).layout_name(),
            "dict",
            "gathering a dictionary column must preserve its layout"
        );
    }
}

/// Same equivalence on the mqo **shared-workload** shape: many tenants'
/// per-flow streams share one join against a slowly-changing reference
/// table, with mixed column types (ints, floats with nulls, dictionary
/// strings).  Chunked gather output must equal per-tuple output as a
/// multiset even when probe chunks match rows spread over many stored
/// chunks.
#[test]
fn gather_join_matches_per_tuple_on_mqo_shared_workload() {
    use pier::qp::{JoinSide, SymmetricHashJoin, TupleBatch};
    let packets: Vec<Tuple> = (0..500)
        .map(|i| {
            let mut cols = vec![
                ("flow", Value::Int(i % 23)),
                (
                    "proto",
                    Value::Str(["tcp", "udp", "icmp"][i as usize % 3].into()),
                ),
            ];
            // Sparse measurement column: nulls interleave with floats.
            if i % 4 == 0 {
                cols.push(("rtt", Value::Null));
            } else {
                cols.push(("rtt", Value::Float(i as f64 / 8.0)));
            }
            Tuple::new("packets", cols)
        })
        .collect();
    let flows: Vec<Tuple> = (0..23)
        .map(|i| {
            Tuple::new(
                "flowinfo",
                vec![("flow", Value::Int(i)), ("tenant", Value::Int(i % 4))],
            )
        })
        .collect();
    let key = vec!["flow".to_string()];
    let mut per_tuple = SymmetricHashJoin::new(key.clone(), key.clone(), "enriched");
    let mut gathered = SymmetricHashJoin::new(key.clone(), key, "enriched");
    let mut expected = Vec::new();
    let mut got = Vec::new();
    // Interleave small reference-table updates between probe batches so
    // probe chunks hit stored chunks on both sides.
    let mut fi = flows.iter().cloned();
    for (round, window) in packets.chunks(100).enumerate() {
        if round % 2 == 0 {
            for t in fi.by_ref().take(8) {
                expected.extend(per_tuple.push_side(JoinSide::Right, t.clone()));
                got.extend(
                    gathered
                        .push_chunk_batch(JoinSide::Right, &ColumnChunkFromTuple::chunk(&t))
                        .into_tuples(),
                );
            }
        }
        for t in window.iter().cloned() {
            expected.extend(per_tuple.push_side(JoinSide::Left, t));
        }
        for chunk in TupleBatch::new(window.to_vec()).chunks() {
            got.extend(
                gathered
                    .push_chunk_batch(JoinSide::Left, chunk)
                    .into_tuples(),
            );
        }
    }
    assert_eq!(multiset(&got), multiset(&expected));
    assert!(!got.is_empty());
    assert_eq!(gathered.state_size(), per_tuple.state_size());
}

/// Helper: a one-row chunk for single-tuple reference-table updates.
struct ColumnChunkFromTuple;

impl ColumnChunkFromTuple {
    fn chunk(t: &Tuple) -> pier::qp::tuple::ColumnChunk {
        pier::qp::tuple::ColumnChunk::from_tuple(t)
    }
}
