//! Batched vs per-tuple DHT transfer equivalence: the netmon workload
//! (snapshot hierarchical aggregation, rehash join, and the continuous
//! windowed query) must produce *identical result multisets* whether the
//! executor coalesces same-destination tuples into `TupleBatch` transfers
//! or performs one overlay `put` per tuple — while the batched run moves
//! strictly fewer messages and bytes.

use pier::harness::continuous::{continuous_netmon, ContinuousNetmonConfig};
use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{sqlish, JoinSpec, OpGraph, PlanBuilder, SinkSpec, SourceSpec, Tuple, Value};

/// Sorted display strings — a canonical multiset representation.
fn multiset(tuples: &[Tuple]) -> Vec<String> {
    let mut rows: Vec<String> = tuples.iter().map(|t| t.to_string()).collect();
    rows.sort();
    rows
}

/// The Figure-2 snapshot query (per-source counts via hierarchical
/// aggregation) over node-local event logs.
fn run_netmon_snapshot(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ClusterConfig::lan(14, 707);
    cfg.pier.batching = batching;
    let mut cluster = Cluster::start(&cfg);
    // Enough distinct sources that every periodic flush ships a real pile
    // of per-group partials (the batched path collapses each pile into one
    // transfer per hop).
    for i in 0..cluster.len() {
        for j in 0..24 {
            let src = format!("10.0.0.{}", j % 12);
            let addr = cluster.addr(i);
            cluster.add_local_row(
                addr,
                "events",
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(src)),
                        ("port", Value::Int((i * 24 + j) as i64)),
                    ],
                ),
            );
        }
    }
    let proxy = cluster.addr(1);
    let plan = sqlish::compile(
        "SELECT src, COUNT(*) FROM events GROUP BY src",
        proxy,
        20_000_000,
    )
    .expect("snapshot netmon query must compile");
    cluster.reset_stats();
    let outcome = cluster.run_query(proxy, plan);
    let stats = cluster.sim.stats();
    (
        multiset(&outcome.tuples()),
        stats.total_msgs,
        stats.total_bytes,
    )
}

/// A rehash (Put/Exchange) symmetric-hash join — the other batched path.
fn run_rehash_join(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ClusterConfig::lan(12, 909);
    cfg.pier.batching = batching;
    let mut cluster = Cluster::start(&cfg);
    let key = vec!["b".to_string()];
    for i in 0..40i64 {
        let from = cluster.addr((i as usize) % cluster.len());
        cluster.publish(
            from,
            "r",
            &key,
            Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 8))]),
        );
    }
    for i in 0..30i64 {
        let from = cluster.addr((i as usize + 5) % cluster.len());
        cluster.publish(
            from,
            "s",
            &key,
            Tuple::new(
                "s",
                vec![("b", Value::Int(i % 8)), ("c", Value::Int(i * 10))],
            ),
        );
    }
    cluster.settle(3_000_000);
    let proxy = cluster.addr(0);
    let ns = "q.join".to_string();
    let rehash = |id: u32, table: &str| OpGraph {
        id,
        source: SourceSpec::Table {
            namespace: table.into(),
        },
        join: None,
        ops: vec![],
        sink: SinkSpec::Rehash {
            namespace: ns.clone(),
            key_cols: key.clone(),
        },
    };
    let plan = PlanBuilder::new(proxy)
        .timeout(20_000_000)
        .opgraph(rehash(0, "r"))
        .opgraph(rehash(1, "s"))
        .opgraph(OpGraph {
            id: 2,
            source: SourceSpec::Table {
                namespace: ns.clone(),
            },
            join: Some(JoinSpec {
                left_table: "r".into(),
                right_table: "s".into(),
                left_key: key.clone(),
                right_key: key.clone(),
                output_table: "r_s".into(),
            }),
            ops: vec![],
            sink: SinkSpec::ToProxy,
        })
        .build();
    cluster.reset_stats();
    let outcome = cluster.run_query(proxy, plan);
    let stats = cluster.sim.stats();
    (
        multiset(&outcome.tuples()),
        stats.total_msgs,
        stats.total_bytes,
    )
}

/// The continuous (standing) netmon query: per-window per-source counts.
fn run_continuous(batching: bool) -> (Vec<String>, u64, u64) {
    let mut cfg = ContinuousNetmonConfig::steady(10, 12, 42);
    cfg.pier.batching = batching;
    let out = continuous_netmon(&cfg);
    let mut rows: Vec<String> = out
        .windows
        .iter()
        .flat_map(|(&(start, end), w)| w.rows.iter().map(move |t| format!("[{start},{end}) {t}")))
        .collect();
    rows.sort();
    (rows, out.total_msgs, out.total_bytes)
}

fn assert_equivalent_and_cheaper(
    what: &str,
    unbatched: (Vec<String>, u64, u64),
    batched: (Vec<String>, u64, u64),
) {
    assert!(
        !batched.0.is_empty(),
        "{what}: batched run must produce results"
    );
    println!(
        "{what}: rows={} msgs {} -> {} ({:.1}% fewer), bytes {} -> {} ({:.1}% fewer)",
        batched.0.len(),
        unbatched.1,
        batched.1,
        100.0 * (unbatched.1 - batched.1) as f64 / unbatched.1 as f64,
        unbatched.2,
        batched.2,
        100.0 * (unbatched.2 - batched.2) as f64 / unbatched.2 as f64,
    );
    assert_eq!(
        unbatched.0, batched.0,
        "{what}: result multisets must be identical with and without batching"
    );
    assert!(
        batched.1 < unbatched.1,
        "{what}: batching must move strictly fewer messages ({} vs {})",
        batched.1,
        unbatched.1
    );
    assert!(
        batched.2 < unbatched.2,
        "{what}: batching must move strictly fewer bytes ({} vs {})",
        batched.2,
        unbatched.2
    );
}

#[test]
fn netmon_snapshot_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper(
        "snapshot netmon",
        run_netmon_snapshot(false),
        run_netmon_snapshot(true),
    );
}

#[test]
fn rehash_join_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper("rehash join", run_rehash_join(false), run_rehash_join(true));
}

#[test]
fn continuous_netmon_batching_preserves_results_with_less_traffic() {
    assert_equivalent_and_cheaper(
        "continuous netmon",
        run_continuous(false),
        run_continuous(true),
    );
}
