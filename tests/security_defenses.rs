//! Integration tests for the §4.1 defense components working together:
//! spot-checking feeds the reputation database, the reputation database
//! drives node selection for redundant aggregation trees, and rate
//! limitation gates query admission — the escalation pipeline the paper
//! sketches for running PIER "in the wild".

use pier::security::adversary::{compare_defenses, Adversary, AdversaryConfig, Malice};
use pier::security::rate_limit::RateDecision;
use pier::security::spot_check::{CheckOutcome, Commitment, SpotChecker};
use pier::security::topology::AggregationTopology;
use pier::security::{ClientMonitor, Observation, Reciprocation, ReputationDb};
use std::collections::BTreeSet;

/// A cheating aggregator is caught by spot checks, reported to the
/// reputation database, and excluded from the retry's aggregation tree.
#[test]
fn spot_check_verdicts_drive_exclusion_and_retry() {
    // Ten aggregator candidates; aggregator 3 suppresses a third of its
    // inputs.
    let aggregators: Vec<u64> = (1..=10).collect();
    let sources: Vec<(u64, i64)> = (100..160).map(|s| (s, 2)).collect();
    let legitimate: BTreeSet<u64> = sources.iter().map(|(s, _)| *s).collect();
    let cheater = 3u64;

    let mut reputation = ReputationDb::new(600_000_000, 2, 0.5);
    let checker = SpotChecker::new(12, 99);

    // Several queries run; each time, the cheater commits to a truncated
    // input set and the honest aggregators commit to everything.
    for round in 0..3u64 {
        for &agg in &aggregators {
            let inputs: Vec<(u64, i64)> = if agg == cheater {
                sources.iter().skip(20).copied().collect()
            } else {
                sources.clone()
            };
            let (commitment, tree) = Commitment::honest(agg, &inputs);
            let outcome = checker.check(&commitment, &tree, &sources, &legitimate);
            let observation = if outcome == CheckOutcome::Consistent {
                Observation::Good
            } else {
                Observation::Misbehaved
            };
            reputation.record(agg, observation, round * 1_000);
        }
    }

    let excluded = reputation.exclusion_set(10_000);
    assert!(excluded.contains(&cheater), "the cheater must be excluded");
    assert_eq!(excluded.len(), 1, "honest aggregators must not be framed");

    // The retry places its aggregation tree over the remaining candidates.
    let ranked = reputation.rank_candidates(&aggregators, 10_000);
    assert!(!ranked.contains(&cheater));
    let tree = AggregationTopology::tree(&ranked, 7, 0);
    assert!(!tree.members().contains(&cheater));
}

/// The redundancy defense measurably reduces the damage a suppression
/// adversary can do, and the duplicate-insensitive sketch variant stays
/// within its approximation error even with multi-path delivery.
#[test]
fn redundancy_limits_suppression_damage_end_to_end() {
    let members: Vec<u64> = (0..250u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let values: Vec<(u64, u64)> = members.iter().map(|m| (*m, 4)).collect();
    let adversary = Adversary::new(
        &members,
        AdversaryConfig {
            compromised_fraction: 0.25,
            malice: Malice::Suppress,
            seed: 7,
        },
    );
    let reports = compare_defenses(&members, &values, &adversary, 3, 2, 13);
    let get = |name: &str| reports.iter().find(|r| r.strategy == name).unwrap();
    let undefended = get("single-tree/exact");
    let redundant = get("3-trees/exact-max");
    assert!(
        redundant.relative_error <= undefended.relative_error + 1e-9,
        "redundant trees must not be worse: {} vs {}",
        redundant.relative_error,
        undefended.relative_error
    );
    assert!(
        redundant.suppressed_fraction <= undefended.suppressed_fraction,
        "redundant trees must not suppress more sources"
    );
    // The sketch strategies pay an approximation penalty but must stay in a
    // reasonable band of the (suppression-reduced) truth.
    let sketched = get("3-trees/sketch");
    assert!(
        sketched.relative_error < 0.75,
        "sketch error {}",
        sketched.relative_error
    );
}

/// The per-client rate-limitation escalation: local threshold → aggregate
/// consumption query → throttle, combined with the reciprocative strategy
/// between PIER nodes.
#[test]
fn rate_limitation_escalates_and_reciprocation_balances() {
    let mut monitor = ClientMonitor::new(2_000_000, 500.0, 5_000.0);
    // A chatty client exceeds the local threshold within the window.
    for i in 0..30u64 {
        monitor.record("chatty", 25.0, i * 10_000);
    }
    let local = match monitor.check("chatty", 300_000) {
        RateDecision::NeedAggregate { local_consumption } => local_consumption,
        other => panic!("expected escalation, got {other:?}"),
    };
    // The aggregate (from a PIER aggregation query across all nodes) comes
    // back far above the global threshold: throttle.
    let aggregate = local * 20.0;
    match monitor.apply_aggregate("chatty", aggregate) {
        RateDecision::Throttle { factor } => assert!(factor < 0.5),
        other => panic!("expected throttle, got {other:?}"),
    }
    // A quiet client is unaffected.
    monitor.record("quiet", 5.0, 400_000);
    assert_eq!(monitor.check("quiet", 450_000), RateDecision::Allow);

    // Node-to-node reciprocation: refuse a peer that never reciprocates.
    let mut ledger = Reciprocation::new(3);
    for _ in 0..3 {
        assert!(ledger.should_execute("freerider"));
        ledger.record_executed_for("freerider");
    }
    assert!(!ledger.should_execute("freerider"));
    ledger.record_executed_by("freerider");
    assert!(ledger.should_execute("freerider"));
}
