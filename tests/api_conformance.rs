//! TAB1 / TAB2 — conformance of the public API surface to the method lists
//! of Table 1 (the Virtual Runtime Interface) and Table 2 (the overlay
//! wrapper) of the paper.  These tests exercise each operation rather than
//! merely naming it, so they double as smoke tests of the two layers.

use pier::dht::{make_ring_refs, OverlayTimer};
use pier::dht::{ObjectName, Overlay, OverlayConfig, OverlayEffect, OverlayEvent};
use pier::runtime::udpcc::{CcConfig, CcEvent, UdpCc};
use pier::runtime::{Context, NodeAddr};

/// Table 1: clock + main scheduler (`getCurrentTime`, `scheduleEvent`,
/// `handleTimer`) and the UDP send path, expressed through the `Context`
/// action interface that both runtime bindings implement.
#[test]
fn table1_vri_clock_scheduler_and_udp() {
    let mut ctx: Context<u32, &'static str, ()> = Context::new(123, NodeAddr(1));
    // getCurrentTime
    assert_eq!(ctx.now(), 123);
    // scheduleEvent(delay, callbackData, ...)
    ctx.set_timer(500, "renew-soft-state");
    // UDP send(source, destination, payload, ...)
    ctx.send(NodeAddr(2), 42);
    let actions = ctx.into_actions();
    assert_eq!(actions.len(), 2);
}

/// Table 1: UdpCC acknowledgements (`handleUDPAck(callbackData, success)`),
/// including the failure notification path.
#[test]
fn table1_udpcc_ack_and_failure_callbacks() {
    let mut sender: UdpCc<&'static str> = UdpCc::new(CcConfig {
        rto: 100,
        backoff: 2,
        max_retries: 1,
        ..CcConfig::default()
    });
    let mut receiver: UdpCc<&'static str> = UdpCc::default();
    let out = sender.send(NodeAddr(9), "payload", 7, 0);
    let data = out
        .iter()
        .find_map(|e| match e {
            CcEvent::Transmit { packet, .. } => Some(packet.clone()),
            _ => None,
        })
        .expect("data packet transmitted");
    // Successful delivery produces an ack and a Delivered callback.
    let acks = receiver.on_packet(NodeAddr(1), data, 1);
    let ack = acks
        .iter()
        .find_map(|e| match e {
            CcEvent::Transmit { packet, .. } => Some(packet.clone()),
            _ => None,
        })
        .expect("ack transmitted");
    let delivered = sender.on_packet(NodeAddr(9), ack, 2);
    assert!(delivered
        .iter()
        .any(|e| matches!(e, CcEvent::Delivered { token: 7, .. })));
    // An unacknowledged message is retransmitted and, once the retry budget
    // is exhausted, produces a failure callback.
    sender.send(NodeAddr(9), "lost", 8, 10);
    let retried = sender.on_tick(10_000_000);
    assert!(retried
        .iter()
        .any(|e| matches!(e, CcEvent::Transmit { .. })));
    let late = sender.on_tick(30_000_000);
    assert!(late
        .iter()
        .any(|e| matches!(e, CcEvent::Failed { token: 8, .. })));
}

fn single_node_overlay() -> Overlay<String> {
    let refs = make_ring_refs(1, 77);
    Overlay::with_static_ring(refs[0], &refs, OverlayConfig::default())
}

fn events<V: Clone>(effects: &[OverlayEffect<V>]) -> Vec<OverlayEvent<V>> {
    effects
        .iter()
        .filter_map(|e| match e {
            OverlayEffect::Event(ev) => Some(ev.clone()),
            _ => None,
        })
        .collect()
}

/// Table 2 inter-node operations: `put`, `get`, `renew`, `send` and the
/// `handleGet` callback.
#[test]
fn table2_inter_node_operations() {
    let mut overlay = single_node_overlay();
    let name = ObjectName::new("table", "key", 1);
    // put(namespace, key, suffix, object, lifetime)
    let put = overlay.put(name.clone(), "object".to_string(), 1_000_000, 0);
    assert!(matches!(
        events(&put).as_slice(),
        [OverlayEvent::NewData { .. }]
    ));
    // get(namespace, key) -> handleGet(namespace, key, objects[])
    let (rid, got) = overlay.get("table", "key", 10);
    match &events(&got)[..] {
        [OverlayEvent::GetResult {
            request_id,
            objects,
            ..
        }] => {
            assert_eq!(*request_id, rid);
            assert_eq!(objects.len(), 1);
        }
        other => panic!("unexpected events {other:?}"),
    }
    // renew(namespace, key, suffix, lifetime)
    let (_, renewed) = overlay.renew(name, 2_000_000, 20);
    assert!(matches!(
        events(&renewed).as_slice(),
        [OverlayEvent::RenewResult { success: true, .. }]
    ));
    // send(namespace, key, suffix, object, lifetime): on a single node this
    // is a local store, and it still fires newData.
    let sent = overlay.send(
        ObjectName::new("table", "other", 2),
        "routed".to_string(),
        1_000_000,
        30,
    );
    assert!(matches!(
        events(&sent).as_slice(),
        [OverlayEvent::NewData { .. }]
    ));
}

/// Table 2 intra-node operations: `localScan`/`handleLScan`,
/// `newData`/`handleNewData`, and `upcall`/`handleUpcall` via the wrapper's
/// upcall token protocol.
#[test]
fn table2_intra_node_operations() {
    let mut overlay = single_node_overlay();
    overlay.put(ObjectName::new("t", "a", 1), "x".to_string(), 1_000_000, 0);
    overlay.put(ObjectName::new("t", "b", 2), "y".to_string(), 1_000_000, 0);
    overlay.put(ObjectName::new("u", "c", 3), "z".to_string(), 1_000_000, 0);
    // localScan(namespace)
    let scan = overlay.local_scan("t", 10);
    assert_eq!(scan.len(), 2);
    assert!(overlay.local_scan("missing", 10).is_empty());
    // The maintenance timers of the wrapper re-arm themselves (the soft-state
    // expiry sweep is the garbage collector of §3.2.3).
    let effects = overlay.on_timer(OverlayTimer::Expire, 20);
    assert!(effects
        .iter()
        .any(|e| matches!(e, OverlayEffect::SetTimer { .. })));
}
