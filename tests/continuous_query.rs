//! Integration tests for the continuous-query subsystem (`pier-cq`): a
//! standing sqlish windowed aggregate running in the simulator for dozens of
//! windows, surviving node churn, streaming per-window results to the proxy
//! and keeping per-node state bounded.

use pier::harness::continuous::{continuous_netmon, ContinuousNetmonConfig};
use pier::qp::{sqlish, CqBudget, DeltaMode, Dissemination, SinkSpec, Value};
use pier::runtime::NodeAddr;

#[test]
fn sqlish_window_clauses_compile_to_continuous_plans() {
    let plan = sqlish::compile(
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 30s SLIDE 10s EVERY 20s DELTAS",
        NodeAddr(3),
        600_000_000,
    )
    .unwrap();
    assert!(plan.continuous);
    assert!(matches!(plan.dissemination, Dissemination::Broadcast));
    let cq = plan.cq.expect("windowed plans carry a lifecycle");
    assert_eq!(cq.renew_every, 20_000_000);
    assert_eq!(cq.lease, 60_000_000);
    match &plan.opgraphs[0].sink {
        SinkSpec::WindowedAgg { window, delta, .. } => {
            assert_eq!(window.size, 30_000_000);
            assert_eq!(window.slide, 10_000_000);
            assert_eq!(*delta, DeltaMode::Deltas);
        }
        other => panic!("expected a windowed sink, got {other:?}"),
    }
    // Tumbling default, seconds default unit, snapshot default mode.
    let plan = sqlish::compile(
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 5",
        NodeAddr(0),
        60_000_000,
    )
    .unwrap();
    match &plan.opgraphs[0].sink {
        SinkSpec::WindowedAgg { window, delta, .. } => {
            assert!(window.is_tumbling());
            assert_eq!(window.size, 5_000_000);
            assert_eq!(*delta, DeltaMode::Snapshot);
        }
        other => panic!("expected a windowed sink, got {other:?}"),
    }
    // A window without an aggregate is rejected.
    assert!(sqlish::compile("SELECT src FROM packets WINDOW 5s", NodeAddr(0), 60_000_000).is_err());
}

#[test]
fn continuous_sliding_window_aggregate_runs_for_fifty_windows() {
    let mut cfg = ContinuousNetmonConfig::steady(10, 56, 42);
    cfg.sql =
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s".to_string();
    let outcome = continuous_netmon(&cfg);

    assert!(
        outcome.windows.len() >= 50,
        "expected ≥50 emitted windows, got {}",
        outcome.windows.len()
    );
    assert!(outcome.tuples_per_sec >= 50.0, "sustained ingest too low");

    // Per-window totals must track the generated ground truth closely in a
    // steady (churn-free) run.  Skip the ramp-up/tail windows.
    let mut checked = 0;
    for (&window, &generated) in &outcome.generated {
        let (start, end) = window;
        if start < 4_000_000 || end + 6_000_000 > 56_000_000 {
            continue;
        }
        let delivered = outcome.total_for(window);
        assert!(
            delivered as f64 >= 0.9 * generated as f64,
            "window [{start},{end}) delivered {delivered} of {generated}"
        );
        assert!(
            delivered as u64 <= generated,
            "window [{start},{end}) over-counted: {delivered} > {generated}"
        );
        checked += 1;
    }
    assert!(checked >= 40, "too few steady windows checked: {checked}");

    // Results arrive promptly after each window closes.
    assert!(
        outcome.mean_window_latency_secs < 6.0,
        "mean per-window latency {} too high",
        outcome.mean_window_latency_secs
    );

    // Per-node state stays bounded: open windows within the default budget,
    // and the delta tracker retains only the refinement horizon.
    let budget = CqBudget::default();
    let (open, groups, tracked) = outcome.max_node_state;
    assert!(open <= budget.max_open_windows as usize + 1, "open {open}");
    assert!(
        groups <= 2 * 64 * (budget.max_open_windows as usize + 1),
        "groups {groups}"
    );
    assert!(tracked <= 16, "tracked emissions {tracked}");
}

#[test]
fn continuous_query_survives_node_churn() {
    let mut cfg = ContinuousNetmonConfig::steady(12, 60, 7);
    // Kill 3 non-proxy nodes at t=25s and boot 2 fresh nodes.
    cfg.churn = Some((25, 3, 2));
    let outcome = continuous_netmon(&cfg);

    // Windows keep closing after the churn event...
    let after_churn: Vec<_> = outcome
        .windows
        .keys()
        .filter(|(start, _)| *start > 30_000_000)
        .collect();
    assert!(
        after_churn.len() >= 20,
        "only {} windows emitted after churn",
        after_churn.len()
    );
    // ...every window of the healing period still emits with bounded error
    // (killed nodes' in-flight state is lost and routes take a few seconds
    // of fail-stop detection to heal)...
    let mut healing = 0;
    for (&window, &generated) in &outcome.generated {
        let (start, end) = window;
        if !(22_000_000..40_000_000).contains(&start) {
            continue;
        }
        let delivered = outcome.total_for(window);
        assert!(
            delivered as f64 >= 0.2 * generated as f64,
            "healing window [{start},{end}) delivered {delivered} of {generated}"
        );
        assert!(delivered as u64 <= generated);
        healing += 1;
    }
    assert!(healing >= 15, "too few healing windows checked: {healing}");
    // ...and once routing heals, delivery returns to (near-)exact.
    let mut recovered = 0;
    for (&window, &generated) in &outcome.generated {
        let (start, end) = window;
        if start < 40_000_000 || end + 8_000_000 > 60_000_000 {
            continue;
        }
        let delivered = outcome.total_for(window);
        assert!(
            delivered as f64 >= 0.95 * generated as f64,
            "recovered window [{start},{end}) delivered {delivered} of {generated}"
        );
        assert!(delivered as u64 <= generated);
        recovered += 1;
    }
    assert!(
        recovered >= 10,
        "too few recovered windows checked: {recovered}"
    );
}

#[test]
fn delta_mode_retracts_refined_rows() {
    // Snapshot vs deltas on the same stream: delta mode may retract rows
    // when late partials refine a window; rows that survive must agree.
    let mut cfg = ContinuousNetmonConfig::steady(8, 20, 99);
    cfg.sql = "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s DELTAS"
        .to_string();
    let outcome = continuous_netmon(&cfg);
    assert!(outcome.windows.len() >= 15);
    // Every surviving row carries the window bounds and a count.
    for ((start, end), w) in &outcome.windows {
        for row in &w.rows {
            assert_eq!(
                row.get("window_start").and_then(Value::as_i64),
                Some(*start as i64)
            );
            assert_eq!(
                row.get("window_end").and_then(Value::as_i64),
                Some(*end as i64)
            );
            assert!(row.get("count").and_then(Value::as_i64).unwrap_or(0) > 0);
        }
    }
}
