//! File-sharing search (the paper's first application class, §2.2): build a
//! Zipf-popularity corpus, publish its inverted index into PIER, and compare
//! rare-keyword search against a Gnutella-style flooding baseline — a small
//! interactive version of the Figure-1 experiment.
//!
//! ```text
//! cargo run --release --example filesharing
//! ```

use pier::harness::experiments::fig1_filesharing;

fn main() {
    let nodes = 50;
    println!("running the file-sharing comparison on {nodes} simulated nodes ...");
    let result = fig1_filesharing(nodes, 1_500, 60, 2026);

    println!("\nfirst-result latency CDF (fraction of queries answered within t seconds)");
    println!(
        "{:>8} {:>12} {:>14} {:>15}",
        "t (s)", "PIER rare", "Gnutella all", "Gnutella rare"
    );
    for (i, (x, pier)) in result.pier_rare.iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        println!(
            "{:>8.1} {:>12.2} {:>14.2} {:>15.2}",
            x, pier, result.gnutella_all[i].1, result.gnutella_rare[i].1
        );
    }
    println!(
        "\nqueries with no answer at all: PIER {:.0}%  vs  Gnutella {:.0}% (rare keywords)",
        result.pier_rare_no_answer * 100.0,
        result.gnutella_rare_no_answer * 100.0
    );
    println!(
        "(the paper reports PIER reducing no-result Gnutella queries by 18% with lower latency)"
    );
}
