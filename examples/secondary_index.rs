//! Secondary indexes and the index semi-join (§3.3.3).
//!
//! The `files` table is partitioned by file name (its primary index), so a
//! lookup by keyword cannot use the DHT directly.  The publisher therefore
//! also publishes a secondary index — `(keyword, tupleID)` entries hashed on
//! the keyword — and the query runs as the paper's semi-join: route to the
//! index partition, then Fetch Matches the base tuples through their
//! tupleIDs.
//!
//! ```text
//! cargo run --example secondary_index
//! ```

use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{secondary_index, Expr, PlanBuilder, Tuple, Value};

fn main() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(32, 3));
    println!("booted a {}-node PIER network", cluster.len());

    // Publish a file catalog partitioned on `file`, with a secondary index
    // on `keyword` maintained by the publisher.
    let key_cols = vec!["file".to_string()];
    let index_cols = vec!["keyword".to_string()];
    let genres = ["rock", "jazz", "ambient", "classical", "folk"];
    for i in 0..200usize {
        let keyword = if i % 25 == 0 {
            "shoegaze"
        } else {
            genres[i % genres.len()]
        };
        let tuple = Tuple::new(
            "files",
            vec![
                ("file", Value::Str(format!("track-{i:03}.flac").into())),
                ("keyword", Value::str(keyword)),
                ("size", Value::Int(3_000 + (i as i64 * 37) % 40_000)),
            ],
        );
        let from = cluster.addr(i % cluster.len());
        cluster.publish_with_secondary_indexes(from, "files", &key_cols, &index_cols, tuple);
    }
    cluster.settle(3_000_000);

    let proxy = cluster.addr(9);

    // Without the index: broadcast a selection over the whole base table.
    let (scan, scan_nodes) = cluster.run_query_observed(
        proxy,
        PlanBuilder::select(
            proxy,
            "files",
            Expr::eq("keyword", "shoegaze"),
            vec!["file".into(), "size".into()],
            10_000_000,
        ),
    );

    // With the index: the semi-join of §3.3.3.
    let plan = secondary_index::lookup_plan(
        proxy,
        "files",
        "keyword",
        Value::Str("shoegaze".into()),
        10_000_000,
    );
    let (indexed, indexed_nodes) = cluster.run_query_observed(proxy, plan);

    println!();
    println!(
        "broadcast scan : {:>2} rows, opgraph installed on {:>2} of {} nodes",
        scan.results.len(),
        scan_nodes,
        cluster.len()
    );
    println!(
        "secondary index: {:>2} rows, opgraph installed on {:>2} of {} nodes",
        indexed.results.len(),
        indexed_nodes,
        cluster.len()
    );
    assert_eq!(scan.results.len(), indexed.results.len());
    println!();
    println!("files tagged 'shoegaze':");
    for t in indexed.tuples() {
        let file = t.get("file").and_then(|v| v.as_str()).unwrap_or("?");
        let size = t.get("size").and_then(pier::qp::Value::as_i64).unwrap_or(0);
        println!("  {file} ({size} KB)");
    }
}
