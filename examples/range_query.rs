//! Range queries through the PHT-style range index (§3.3.3).
//!
//! A sensor table is published into the range index on its `temp` column and
//! a range scan is answered twice — once by broadcasting the opgraph to
//! every node, once by shipping it only to the buckets that overlap the
//! range — to show that the answers match while the range index contacts far
//! fewer nodes.
//!
//! ```text
//! cargo run --example range_query
//! ```

use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{range_index::range_scan_plan, Expr, PlanBuilder, RangeIndexConfig, Tuple, Value};

fn main() {
    let mut cluster = Cluster::start(&ClusterConfig::lan(48, 7));
    println!("booted a {}-node PIER network", cluster.len());

    // Publish 500 sensor readings into the range index on `temp`:
    // 64 buckets (6-bit prefixes) over a 16-bit domain.
    let config = RangeIndexConfig::new(6, 16);
    let mut published_in_range = 0usize;
    let (lo, hi) = (20_000i64, 26_000i64);
    for i in 0..500i64 {
        let temp = (i * 131) % 65_536;
        if (lo..=hi).contains(&temp) {
            published_in_range += 1;
        }
        let tuple = Tuple::new(
            "readings",
            vec![
                ("sensor", Value::Str(format!("sensor-{i}").into())),
                ("temp", Value::Int(temp)),
            ],
        );
        let from = cluster.addr((i as usize) % cluster.len());
        cluster.publish_range_indexed(from, "readings", "temp", config, tuple);
    }
    cluster.settle(3_000_000);
    println!("published 500 readings, {published_in_range} fall inside [{lo}, {hi}]");

    let proxy = cluster.addr(5);

    // Strategy 1: broadcast the selection to every node.
    let broadcast_plan = PlanBuilder::select(
        proxy,
        "readings",
        Expr::all(vec![
            Expr::cmp(pier::qp::CmpOp::Ge, Expr::col("temp"), Expr::lit(lo)),
            Expr::cmp(pier::qp::CmpOp::Le, Expr::col("temp"), Expr::lit(hi)),
        ]),
        vec!["sensor".into(), "temp".into()],
        10_000_000,
    );
    let (broadcast, broadcast_nodes) = cluster.run_query_observed(proxy, broadcast_plan);

    // Strategy 2: range-index dissemination — only the overlapping buckets.
    let range_plan = range_scan_plan(
        proxy,
        "readings",
        "temp",
        lo,
        hi,
        config,
        vec!["sensor".into(), "temp".into()],
        10_000_000,
    );
    let buckets = match &range_plan.dissemination {
        pier::qp::Dissemination::ByRange { bucket_keys, .. } => bucket_keys.len(),
        _ => 0,
    };
    let (ranged, ranged_nodes) = cluster.run_query_observed(proxy, range_plan);

    println!();
    println!(
        "broadcast    : {:>3} rows, opgraph installed on {:>2} of {} nodes",
        broadcast.results.len(),
        broadcast_nodes,
        cluster.len()
    );
    println!(
        "range index  : {:>3} rows, opgraph installed on {:>2} of {} nodes ({buckets} buckets overlap the range)",
        ranged.results.len(),
        ranged_nodes,
        cluster.len()
    );
    assert_eq!(
        broadcast.results.len(),
        ranged.results.len(),
        "both strategies must return the same rows"
    );
    println!();
    println!("sample answers:");
    for t in ranged.tuples().iter().take(5) {
        println!("  {t}");
    }
}
