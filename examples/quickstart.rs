//! Quickstart: boot a small simulated PIER deployment, publish a table into
//! the DHT, and run a SQL query against it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pier::harness::{Cluster, ClusterConfig};
use pier::qp::{sqlish, Tuple, Value};

fn main() {
    // 1. Boot 16 PIER nodes on a simulated LAN.
    let mut cluster = Cluster::start(&ClusterConfig::lan(16, 1));
    println!("booted a {}-node PIER network", cluster.len());

    // 2. Publish an inverted-index table `files(keyword, file)` into the
    //    DHT, partitioned (hashed) on `keyword`.
    let key_cols = vec!["keyword".to_string()];
    let corpus = [
        ("rock", "smoke_on_the_water.mp3"),
        ("rock", "back_in_black.mp3"),
        ("jazz", "take_five.mp3"),
        ("rock", "stairway.mp3"),
        ("classical", "moonlight_sonata.mp3"),
    ];
    for (i, (keyword, file)) in corpus.iter().enumerate() {
        let tuple = Tuple::new(
            "files",
            vec![("keyword", Value::str(keyword)), ("file", Value::str(file))],
        );
        let publisher = cluster.addr(i % cluster.len());
        cluster.publish(publisher, "files", &key_cols, tuple);
    }
    cluster.settle(3_000_000);

    // 3. Compile a SQL-like query.  The equality predicate on the
    //    partitioning key lets the planner use the equality index, so the
    //    query is routed to exactly one partition instead of broadcast.
    let proxy = cluster.addr(7);
    let plan = sqlish::compile(
        "SELECT file FROM files WHERE keyword = 'rock'",
        proxy,
        10_000_000,
    )
    .expect("valid SQL");
    println!("dissemination strategy: {:?}", plan.dissemination);

    // 4. Run it and print the answers delivered to the proxy's client.
    let outcome = cluster.run_query(proxy, plan);
    println!(
        "query {} answered with {} tuples (first result after {:.0} ms):",
        outcome.query_id,
        outcome.results.len(),
        outcome.first_result_latency_secs().unwrap_or(0.0) * 1000.0
    );
    for tuple in outcome.tuples() {
        println!("  {tuple}");
    }
    assert_eq!(outcome.results.len(), 3);
}
