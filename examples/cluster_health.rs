//! Cluster health, dogfooded: PIER monitoring PIER.
//!
//! Boots a simulated cluster with telemetry publishing enabled, so every
//! node periodically materialises its metric hub as a tuple in the
//! `system.metrics` DHT namespace.  Two ordinary standing `sqlish` queries
//! over that namespace — windowed per-node `MAX(bytes_recv)` and
//! `MAX(lookup_p99_us)` — then watch the cluster through the query
//! processor itself, exactly the way a user query watches packet streams.
//!
//! ```text
//! cargo run --release --example cluster_health
//! ```

use pier::harness::{self_monitoring, SelfMonitoringConfig};

fn main() {
    let nodes = 16;
    let cfg = SelfMonitoringConfig::new(nodes, 20, 42);
    println!(
        "monitoring a {nodes}-node cluster through PIER itself for {}s of virtual time ...",
        cfg.run_secs
    );
    let out = self_monitoring(&cfg);

    println!(
        "\n{} metrics tuples published into system.metrics; {} background packet rows",
        out.publishes, out.events
    );

    // The last fully-populated window of each monitoring query, as a
    // per-node health table.
    let bytes = out
        .bytes_recv
        .iter()
        .rev()
        .find(|w| w.per_node.len() == nodes)
        .or_else(|| out.bytes_recv.last())
        .expect("the bytes_recv monitor emitted windows");
    let p99 = out
        .lookup_p99
        .iter()
        .rev()
        .find(|w| w.per_node.len() == nodes)
        .or_else(|| out.lookup_p99.last())
        .expect("the lookup-latency monitor emitted windows");
    println!(
        "\ncluster health at window [{:.1}s, {:.1}s) — {} of {} nodes reporting",
        bytes.window.0 as f64 / 1e6,
        bytes.window.1 as f64 / 1e6,
        bytes.per_node.len(),
        nodes
    );
    println!(
        "{:>6} {:>16} {:>18}",
        "node", "max bytes_recv", "lookup p99 (us)"
    );
    for (node, recv) in &bytes.per_node {
        let lat = p99.per_node.get(node).copied().unwrap_or(0.0);
        println!("{node:>6} {recv:>16.0} {lat:>18.0}");
    }

    // A taste of the structured event trace the same run recorded.
    println!("\nfirst trace events on node 0 (sim-time-stamped, deterministic):");
    for line in out.trace_jsonl.lines().take(5) {
        println!("  {line}");
    }
    println!(
        "({} trace events total; see docs/OBSERVABILITY.md for the schema)",
        out.trace_jsonl.lines().count()
    );
}
