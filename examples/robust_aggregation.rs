//! Robust aggregation in an unfriendly network (§4.1): what happens to a
//! distributed COUNT when a fraction of the aggregation tree is malicious,
//! and how much the redundancy defenses recover.
//!
//! ```text
//! cargo run --example robust_aggregation
//! ```

use pier::harness::robustness::{fidelity_sweep, spot_check_detection};
use pier::security::adversary::Malice;

fn main() {
    println!("300 sources each contribute 10 rows; the adversary compromises a growing");
    println!("fraction of the aggregators and suppresses everything they relay.\n");
    println!("compromised  strategy              suppressed  relative_error");
    for row in fidelity_sweep(300, 10, &[0.0, 0.1, 0.2, 0.3], Malice::Suppress, 15, 11) {
        println!(
            "{:>10.0}%  {:<20} {:>9.1}% {:>14.3}",
            row.compromised_fraction * 100.0,
            row.strategy,
            row.suppressed_fraction * 100.0,
            row.relative_error
        );
    }

    println!();
    println!("spot-checking: probability of catching an aggregator that dropped 15% of");
    println!("its inputs before committing, by sample size:");
    for row in spot_check_detection(300, 0.15, &[2, 4, 8, 16, 32], 100, 3) {
        println!(
            "  sample {:>2}: detected in {:>5.1}% of trials (analytic {:>5.1}%)",
            row.sample_size,
            row.detection_rate * 100.0,
            row.predicted_rate * 100.0
        );
    }
}
