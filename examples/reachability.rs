//! Recursive queries: network reachability over a distributed `links` table
//! (§3.3.2, the declarative-routing workload).
//!
//! Every edge of an overlay topology is published into the DHT hashed on its
//! source; reachability from one host is then computed semi-naively, one
//! distributed Fetch Matches round per hop, and validated against a local
//! transitive-closure fixpoint.
//!
//! ```text
//! cargo run --example reachability
//! ```

use pier::harness::recursion::distributed_reachability;

fn main() {
    println!("computing reachability from h0 over a random 60-host, degree-2 link graph");
    println!("published into a 32-node PIER deployment...\n");
    let result = distributed_reachability(32, 60, 2, 42);
    println!("edges published        : {}", result.edges);
    println!("hosts reachable from h0: {}", result.reached_distributed);
    println!("semi-naive rounds      : {}", result.rounds);
    println!("overlay messages       : {}", result.messages);
    println!(
        "matches the local transitive-closure reference: {}",
        result.matches_reference
    );
    assert!(result.matches_reference);
}
