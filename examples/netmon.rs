//! Endpoint network monitoring (the paper's second application class, §2.2):
//! every node holds its own firewall log; one distributed aggregation query
//! reports the top-10 sources of unwanted traffic across the whole
//! deployment — the Figure-2 applet, at the paper's 350-node scale.
//!
//! ```text
//! cargo run --release --example netmon
//! ```

use pier::harness::experiments::fig2_netmon;

fn main() {
    let nodes = 350;
    println!("aggregating firewall logs from {nodes} simulated nodes ...");
    let result = fig2_netmon(nodes, 40_000, 10, 99);

    println!("\ntop 10 sources of firewall events (PIER query vs ground truth)");
    println!(
        "{:>4}  {:<18} {:>8}    {:<18} {:>8}",
        "rank", "reported", "count", "actual", "count"
    );
    for (i, ((rs, rc), (ts, tc))) in result
        .reported
        .iter()
        .zip(result.ground_truth.iter())
        .enumerate()
    {
        println!("{:>4}  {:<18} {:>8}    {:<18} {:>8}", i + 1, rs, rc, ts, tc);
    }
    println!(
        "\n{} of the reported top-10 match the true top-10",
        result.overlap
    );
}
