//! A standing sqlish monitoring query with streamed per-window results —
//! the paper's Figure-2 workload run as a true continuous query over the
//! `pier-cq` subsystem.
//!
//! Registers `SELECT src, COUNT(*) ... WINDOW 2s SLIDE 1s EVERY 5s TOP 3`
//! once, streams a Zipf-skewed packet trace into every node, and prints the
//! per-window top sources as they arrive at the proxy's client.
//!
//! Run with `cargo run --release --example netmon_continuous`.

use pier::harness::continuous::{continuous_netmon, ContinuousNetmonConfig};
use pier::qp::Value;

fn main() {
    let mut cfg = ContinuousNetmonConfig::steady(16, 30, 2024);
    cfg.sql = "SELECT src, COUNT(*) FROM packets GROUP BY src \
               TOP 3 BY count WINDOW 2s SLIDE 1s EVERY 5s"
        .to_string();
    cfg.events_per_node_per_sec = 12;
    println!("standing query: {}", cfg.sql);
    println!(
        "streaming {} nodes for {} virtual seconds...\n",
        cfg.nodes, cfg.run_secs
    );

    let outcome = continuous_netmon(&cfg);

    println!(
        "{} windows delivered, {:.0} tuples/s sustained, {:.2}s mean window latency\n",
        outcome.windows.len(),
        outcome.tuples_per_sec,
        outcome.mean_window_latency_secs
    );
    for (&(start, end), emission) in &outcome.windows {
        let mut rows: Vec<(String, i64)> = emission
            .rows
            .iter()
            .filter_map(|t| {
                Some((
                    t.get("src").and_then(Value::as_str)?.to_string(),
                    t.get("count").and_then(Value::as_i64)?,
                ))
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        let top: Vec<String> = rows
            .iter()
            .take(3)
            .map(|(s, c)| format!("{s}×{c}"))
            .collect();
        println!(
            "window [{:>2}s,{:>2}s)  top sources: {}",
            start / 1_000_000,
            end / 1_000_000,
            top.join("  ")
        );
    }
    let (open, groups, tracked) = outcome.max_node_state;
    println!(
        "\nper-node state stayed bounded: ≤{open} open windows, ≤{groups} groups, ≤{tracked} tracked emissions"
    );
    println!(
        "stream traffic: {} messages / {:.1} KiB (closed-window partials travel as TupleBatch transfers)",
        outcome.total_msgs,
        outcome.total_bytes as f64 / 1024.0
    );
}
