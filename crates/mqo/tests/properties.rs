//! Property tests for multi-query sharing: over *arbitrary* constant-varied
//! predicate sets and arbitrary streams, the shared fan-out path must be
//! indistinguishable from independent per-query execution.
//!
//! Two layers are pinned:
//!
//! * the [`PredicateIndex`]'s per-member masks equal row-by-row evaluation
//!   of each member's own compiled predicate (any shape the generator can
//!   produce: hash-kernel equalities, ordering atoms, multi-atom
//!   conjunctions, missing columns, mixed value types);
//! * end-to-end single-node share-group execution — ingest through the
//!   union mask into the shared store, then per-member derivation at the
//!   root — produces exactly the per-window, per-group counts a reference
//!   computation of each query in isolation produces.

use pier_core::sharing::MultiQuerySharing;
use pier_core::{sqlish, CmpOp, CompiledPredicate, Expr, Tuple, TupleBatch, Value};
use pier_mqo::{MqoLayer, PredicateIndex};
use pier_runtime::NodeAddr;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A generated atom: `(column rank, op rank, constant rank)` — decoded into
/// `col{c} op const` over a small universe so collisions (and misses) are
/// common.
fn decode_atom(col: u8, op: u8, constant: u8) -> Expr {
    let column = format!("c{}", col % 4); // c3 is absent from the data
    let op = match op % 6 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    };
    let constant = match constant % 3 {
        0 => Value::Int((constant % 8) as i64),
        1 => Value::Float((constant % 8) as f64),
        _ => Value::Str(format!("s{}", constant % 8).into()),
    };
    Expr::cmp(op, Expr::col(&column), Expr::Const(constant))
}

fn decode_row(seed: u64) -> Tuple {
    let pick = |x: u64| -> Value {
        match x % 4 {
            0 => Value::Int((x / 4 % 8) as i64),
            1 => Value::Float((x / 4 % 8) as f64 + if x % 8 == 1 { 0.5 } else { 0.0 }),
            2 => Value::Str(format!("s{}", x / 4 % 8).into()),
            _ => Value::Null,
        }
    };
    Tuple::new(
        "t",
        vec![
            ("c0", pick(seed)),
            ("c1", pick(seed >> 8)),
            ("c2", pick(seed >> 16)),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index masks == per-member row-by-row evaluation, for arbitrary
    /// member sets (1–3 conjoined atoms each) over arbitrary mixed-type
    /// chunks.
    #[test]
    fn predicate_index_equals_per_member_evaluation(
        members in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u8..8, 0u8..16), 1..4),
            1..24,
        ),
        rows in proptest::collection::vec(0u64..(1 << 24), 1..80),
    ) {
        let predicates: Vec<Expr> = members
            .iter()
            .map(|atoms| {
                Expr::all(atoms.iter().map(|(c, o, k)| decode_atom(*c, *o, *k)).collect())
            })
            .collect();
        let mut index = PredicateIndex::new();
        for (id, p) in predicates.iter().enumerate() {
            index.insert(id as u64, p.clone());
        }
        let tuples: Vec<Tuple> = rows.iter().map(|s| decode_row(*s)).collect();
        let batch = TupleBatch::new(tuples);
        for chunk in batch.chunks() {
            index.eval_chunk(chunk);
            let mut union = vec![false; chunk.rows()];
            for (id, p) in predicates.iter().enumerate() {
                let mut reference = CompiledPredicate::new(p.clone());
                let compiled = reference.for_schema(chunk.schema());
                let expect: Vec<bool> =
                    (0..chunk.rows()).map(|r| compiled.matches_row(chunk, r)).collect();
                let got = index.member_mask(id as u64).expect("indexed").to_bools();
                prop_assert_eq!(&got, &expect);
                for (u, e) in union.iter_mut().zip(&expect) {
                    *u = *u || *e;
                }
            }
            prop_assert_eq!(index.union().to_bools(), union);
        }
    }

    /// End-to-end share-group execution at a single (root) node equals a
    /// reference computation of every member query in isolation: arbitrary
    /// constant-varied member sets, arbitrary batch boundaries, arbitrary
    /// event-time distributions.
    #[test]
    fn shared_ingest_equals_independent_execution(
        consts in proptest::collection::vec(0u8..10, 1..16),
        rows in proptest::collection::vec((0u8..10, 0u64..20_000_000), 10..200),
        cut in 1usize..9,
    ) {
        // Member i watches src = "h{consts[i]}" (duplicate constants are
        // legal: two identical queries must still get their own answers).
        let mut layer = MqoLayer::default();
        let query_ids: Vec<u64> = consts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let qid = 1000 + i as u64;
                let mut plan = sqlish::compile(
                    &format!(
                        "SELECT src, COUNT(*) FROM pkts WHERE src = 'h{c}' \
                         GROUP BY src WINDOW 2s SLIDE 1s"
                    ),
                    NodeAddr(9),
                    600_000_000,
                )
                .expect("compiles");
                plan.query_id = qid;
                assert!(matches!(
                    layer.try_install(&plan, 0),
                    pier_core::InstallOutcome::Member { .. }
                ));
                qid
            })
            .collect();
        // Stream the rows in two arbitrarily split batches.
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(h, ts)| {
                Tuple::new(
                    "pkts",
                    vec![
                        ("src", Value::Str(format!("h{h}").into())),
                        ("ts", Value::Int(*ts as i64)),
                    ],
                )
            })
            .collect();
        let split = tuples.len() * cut / 9;
        for part in [&tuples[..split], &tuples[split..]] {
            if part.is_empty() {
                continue;
            }
            let batch = TupleBatch::new(part.to_vec());
            for chunk in batch.chunks() {
                layer.absorb_chunk("pkts", chunk, 0);
            }
        }
        // Tick as root far past every event: all windows emit.
        let group = layer.group_of(query_ids[0]).expect("member has a group");
        let out = layer.tick(group, 1_000_000_000, true);
        // Reference: each query in isolation — filter, window, count.
        let spec = pier_cq::WindowSpec::sliding(2_000_000, 1_000_000);
        for (i, qid) in query_ids.iter().enumerate() {
            let src = format!("h{}", consts[i]);
            let mut expect: BTreeMap<u64, i64> = BTreeMap::new();
            for (h, ts) in &rows {
                if format!("h{h}") == src {
                    for wid in spec.windows_containing(*ts) {
                        *expect.entry(wid).or_default() += 1;
                    }
                }
            }
            let mut got: BTreeMap<u64, i64> = BTreeMap::new();
            for e in out.emissions.iter().filter(|e| e.query_id == *qid) {
                prop_assert!(e.retracts.is_empty(), "snapshot mode");
                for row in &e.inserts {
                    prop_assert_eq!(row.get("src").and_then(Value::as_str), Some(src.as_str()));
                    let wid = e.window_start / 1_000_000;
                    *got.entry(wid).or_default() +=
                        row.get("count").and_then(Value::as_i64).unwrap_or(0);
                }
            }
            prop_assert_eq!(&got, &expect);
        }
        // Teardown leaves nothing behind.
        for qid in &query_ids {
            layer.uninstall(*qid);
        }
        prop_assert_eq!(layer.stats().groups, 0);
        prop_assert_eq!(layer.stats().members, 0);
    }
}
