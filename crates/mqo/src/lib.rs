//! # pier-mqo — multi-query sharing with a vectorised predicate index
//!
//! PIER's design target is *thousands* of simultaneous continuous queries:
//! network-monitoring deployments where many users install near-identical
//! standing queries differing only in constants (`WHERE src = <mine>`).
//! Executed independently, every installed query costs a dataflow, a
//! per-row predicate walk over every arriving tuple, a window store, and a
//! per-query partial stream up the overlay — linear in the query count.
//! This crate turns N similar queries into **one shared dataflow**:
//!
//! * [`fingerprint`] — plan normalization: canonicalise a disseminated
//!   [`QueryPlan`](pier_core::QueryPlan)'s shape with predicate constants
//!   abstracted, so identical and constant-only-different plans hash to the
//!   same **share group** on every node independently.
//! * [`index`] — the [`PredicateIndex`]: member predicates decomposed into
//!   `column op constant` atoms, grouped **by column** into
//!   type-specialised column-at-a-time kernels over `&[Value]` (hash
//!   kernels for equality constants, specialised scans for orderings) that
//!   produce per-member selection [`mask`]s combined with bitwise ops —
//!   the per-chunk cost of N members is one scan per referenced column,
//!   not N expression walks per row.
//! * [`mod@layer`] — share-group execution implementing `pier-core`'s
//!   [`MultiQuerySharing`](pier_core::MultiQuerySharing) seam: each
//!   group keeps **one** shared window store
//!   ([`pier_cq::SharedWindowState`]) fed by the union mask, ships **one**
//!   partial stream toward its window root, and derives each member's
//!   per-window snapshot/delta answer from the shared per-group
//!   accumulators at flush.
//!
//! ## Soundness
//!
//! Sharing is an optimization, never a semantics change.  A plan only
//! normalizes into a group when per-member derivation is *exact*: a single
//! windowed-aggregate opgraph whose selection predicate references GROUP BY
//! columns only (so the predicate is constant within each group, and a
//! member's answer is precisely the subset of shared groups its predicate
//! accepts, with bit-identical accumulators).  Everything else—joins,
//! predicates over non-grouping columns, window-scoped dedup—answers
//! `NotShareable` and runs independently.  The equivalence suite pins that
//! shared and independent execution produce identical per-query result
//! multisets, including under mid-stream install/uninstall and node churn.
//!
//! ## Plugging in
//!
//! ```no_run
//! let mut config = pier_core::PierConfig::default();
//! config.sharing = Some(pier_mqo::layer);
//! // PierNode::with_static_ring(me, &ring, config) now shares.
//! ```

pub mod fingerprint;
pub mod index;
pub mod layer;
pub mod mask;

pub use fingerprint::{normalize, predicate_columns, ShareCandidate};
pub use index::{decompose, Atom, PredicateIndex};
pub use layer::{layer, GroupAcc, MqoLayer};
pub use mask::SelMask;
