//! Share groups and the [`MultiQuerySharing`] implementation.
//!
//! A `ShareGroup` is the runtime of one plan fingerprint at one node: the
//! [`PredicateIndex`] over its members' predicates, the single
//! [`SharedWindowState`] their windows accumulate in, and the per-member
//! residue (compiled derivation predicate, proxy address, lease, result
//! schema, finishers).  [`MqoLayer`] is the registry the executor talks to
//! through the [`MultiQuerySharing`] trait: fingerprint → group,
//! query → group, and the namespace routing tables for ingest chunks and
//! relayed window partials.
//!
//! Life of a shared chunk: the executor hands each arriving chunk of a
//! subscribed namespace to the layer once; the predicate index scans every
//! referenced column and produces per-member masks plus their union; rows
//! in the union fold into the group's shared local store (group key,
//! event time and aggregate inputs resolved once per schema).  At each
//! window tick the group ships **one** partial stream toward its window
//! root (`g{fp:016x}.windows` / `g{fp:016x}.root` — identical on every
//! node, so partials combine across the overlay with no coordination); the
//! root derives each member's rows from the shared per-group accumulators
//! by evaluating the member's predicate against the group *values* (sound
//! because eligibility required the predicate to reference GROUP BY
//! columns only), applies the member's finishers, and routes the member's
//! snapshot/delta stream to the member's own proxy.

use crate::fingerprint::{normalize, ShareCandidate};
use crate::index::PredicateIndex;
use pier_core::plan::QueryPlan;
use pier_core::sharing::{
    GroupRoute, InstallOutcome, MultiQuerySharing, SharedEmission, SharingStats, TickOutput,
    UninstallOutcome,
};
use pier_core::tuple::{ColumnChunk, ColumnRef, ColumnResolver, Schema, SchemaRegistry, Tuple};
use pier_core::{
    AggFunc, AggState, CompiledExpr, OperatorSpec, PartialDecoder, Pipeline, Value, WindowSpec,
};
use pier_cq::{Delta, Lease, SharedWindowState, WindowAccumulator, WindowId};
use pier_runtime::{NodeAddr, SimTime};
use pier_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::Arc;

/// Construct the sharing layer — the value to plug into
/// [`PierConfig::sharing`](pier_core::PierConfig).
pub fn layer() -> Box<dyn MultiQuerySharing + Send> {
    Box::new(MqoLayer::default())
}

/// One group's mergeable window accumulator: the grouping values plus one
/// partial [`AggState`] per aggregate (the same shape the per-query
/// executor accumulates, shared across members here).
#[derive(Debug, Clone)]
pub struct GroupAcc {
    /// The grouping-column values identifying this group.
    pub vals: Vec<Value>,
    /// One mergeable partial per aggregate.
    pub states: Vec<AggState>,
}

impl WindowAccumulator for GroupAcc {
    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.states.iter_mut().zip(&other.states) {
            mine.merge(theirs);
        }
    }
}

/// Compiled positional decode of one partial schema (`_w`, group columns,
/// aggregate columns), cached per schema pointer.
#[derive(Debug)]
struct PartialLayout {
    w: usize,
    groups: Vec<usize>,
    aggs: Vec<PartialDecoder>,
}

#[derive(Debug)]
struct PartialDecodeCache {
    schema: Arc<Schema>,
    compiled: Option<PartialLayout>,
}

/// Per-member residue within a share group.
#[derive(Debug)]
struct MemberState {
    /// The member's predicate compiled against the group-values schema:
    /// derivation evaluates it per *group*, not per row.
    derive: CompiledExpr,
    proxy: NodeAddr,
    lease: Lease,
    /// `q{id}.win` — identical to the shape independent execution emits,
    /// so clients cannot tell shared from independent results.
    result_schema: Arc<Schema>,
    final_ops: Vec<OperatorSpec>,
}

/// The runtime of one share group at one node.
#[derive(Debug)]
struct ShareGroup {
    fingerprint: u64,
    /// This incarnation's epoch (see
    /// [`GroupRoute::epoch`](pier_core::sharing::GroupRoute::epoch)).
    epoch: u64,
    namespace: String,
    window: WindowSpec,
    aggs: Vec<AggFunc>,
    index: PredicateIndex,
    members: HashMap<u64, MemberState>,
    state: SharedWindowState<GroupAcc, Tuple>,
    /// `g{fp:016x}.wp` — the shape of relayed closed-window partials.
    partial_schema: Arc<Schema>,
    /// `g{fp:016x}.gv` — the synthetic schema derivation predicates compile
    /// against (columns = the GROUP BY columns).
    gv_schema: Arc<Schema>,
    group_resolver: ColumnResolver,
    time_ref: Option<ColumnRef>,
    agg_inputs: Vec<Option<ColumnRef>>,
    partial_decode: Option<PartialDecodeCache>,
}

fn window_namespace(fingerprint: u64) -> String {
    format!("g{fingerprint:016x}.windows")
}

fn root_key(fingerprint: u64) -> String {
    format!("g{fingerprint:016x}.root")
}

impl ShareGroup {
    fn new(c: &ShareCandidate, epoch: u64) -> ShareGroup {
        let tag = format!("g{:016x}", c.fingerprint);
        let partial_schema = {
            let mut columns = vec!["_w".to_string()];
            columns.extend(c.group_cols.iter().cloned());
            for agg in &c.aggs {
                let col = agg.output_column();
                if matches!(agg, AggFunc::Avg(_)) {
                    columns.push(col.clone());
                    columns.push(format!("{col}_sum"));
                    columns.push(format!("{col}_count"));
                } else {
                    columns.push(col);
                }
            }
            SchemaRegistry::global().intern_owned(format!("{tag}.wp"), columns)
        };
        let gv_schema =
            SchemaRegistry::global().intern_owned(format!("{tag}.gv"), c.group_cols.clone());
        ShareGroup {
            fingerprint: c.fingerprint,
            epoch,
            namespace: c.namespace.clone(),
            window: c.window,
            aggs: c.aggs.clone(),
            index: PredicateIndex::new(),
            members: HashMap::new(),
            state: SharedWindowState::new(c.window, c.budget),
            partial_schema,
            gv_schema,
            group_resolver: ColumnResolver::new(c.group_cols.clone()),
            time_ref: c.time_col.clone().map(ColumnRef::new),
            agg_inputs: c
                .aggs
                .iter()
                .map(|a| a.input_column().map(ColumnRef::new))
                .collect(),
            partial_decode: None,
        }
    }

    fn add_member(&mut self, query_id: u64, c: &ShareCandidate, proxy: NodeAddr, now: SimTime) {
        let result_schema = {
            let mut columns = vec!["window_start".to_string(), "window_end".to_string()];
            columns.extend(self.group_resolver.columns().iter().cloned());
            columns.extend(self.aggs.iter().map(AggFunc::output_column));
            SchemaRegistry::global().intern_owned(format!("q{query_id}.win"), columns)
        };
        self.index.insert(query_id, c.predicate.clone());
        self.state.add_member(query_id, c.delta);
        self.members.insert(
            query_id,
            MemberState {
                derive: c.predicate.compile(&self.gv_schema),
                proxy,
                lease: Lease::granted(now, c.lease),
                result_schema,
                final_ops: c.final_ops.clone(),
            },
        );
    }

    /// Absorb one ingest chunk: one predicate-index scan, union rows folded
    /// into the shared store.  Returns `(rows scanned, rows selected)`.
    fn absorb_chunk(&mut self, chunk: &ColumnChunk, now: SimTime) -> (u64, u64) {
        let rows = chunk.rows() as u64;
        let schema = chunk.schema();
        let Some(group_idxs) = self.group_resolver.indices_for(schema) else {
            return (rows, 0); // malformed chunk for this group: discard
        };
        let group_idxs = group_idxs.to_vec();
        self.index.eval_chunk(chunk);
        let selected = self.index.union().count() as u64;
        if selected == 0 {
            return (rows, 0);
        }
        let time_idx = self.time_ref.as_mut().and_then(|c| c.index_for(schema));
        let agg_idxs: Vec<Option<usize>> = self
            .agg_inputs
            .iter_mut()
            .map(|input| input.as_mut().and_then(|c| c.index_for(schema)))
            .collect();
        let aggs = &self.aggs;
        let union = self.index.union();
        let store = self.state.local_mut();
        for r in 0..chunk.rows() {
            if !union.get(r) {
                continue;
            }
            let event_time = time_idx
                .and_then(|i| chunk.col(i).value_ref(r).as_i64())
                .map_or(now, |v| v.max(0) as u64);
            let key = chunk.key_at(&group_idxs, r);
            store.push(
                event_time,
                &key,
                None,
                || GroupAcc {
                    vals: group_idxs.iter().map(|&i| chunk.col(i).value(r)).collect(),
                    states: aggs.iter().map(AggFunc::init).collect(),
                },
                |acc| {
                    for ((agg, idx), state) in aggs.iter().zip(&agg_idxs).zip(acc.states.iter_mut())
                    {
                        state.update_ref(agg, idx.map(|i| chunk.col(i).value_ref(r)));
                    }
                },
            );
        }
        (rows, selected)
    }

    fn encode_partial(&self, wid: WindowId, acc: &GroupAcc) -> Tuple {
        let mut values = Vec::with_capacity(self.partial_schema.arity());
        values.push(Value::Int(wid as i64));
        values.extend(acc.vals.iter().cloned());
        for state in &acc.states {
            values.push(state.finish());
            if let AggState::Avg { sum, count } = state {
                values.push(Value::Float(*sum));
                values.push(Value::Int(*count as i64));
            }
        }
        Tuple::from_schema(Arc::clone(&self.partial_schema), values)
    }

    /// Decode a relayed closed-window partial (positional layout compiled
    /// once per schema; `None` for malformed tuples, best-effort policy).
    fn decode_partial(&mut self, tuple: &Tuple) -> Option<(WindowId, String, GroupAcc)> {
        let schema = tuple.schema();
        let hit = self
            .partial_decode
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(&c.schema, schema));
        if !hit {
            let group_cols = self.group_resolver.columns();
            let compiled = (|| {
                let w = schema.position("_w")?;
                let groups: Vec<usize> = group_cols
                    .iter()
                    .map(|c| schema.position(c))
                    .collect::<Option<_>>()?;
                let aggs: Vec<PartialDecoder> = self
                    .aggs
                    .iter()
                    .map(|a| PartialDecoder::compile(a, schema))
                    .collect::<Option<_>>()?;
                Some(PartialLayout { w, groups, aggs })
            })();
            self.partial_decode = Some(PartialDecodeCache {
                schema: Arc::clone(schema),
                compiled,
            });
        }
        let layout = self
            .partial_decode
            .as_ref()
            .expect("cache populated above")
            .compiled
            .as_ref()?;
        let values = tuple.values();
        let wid = values[layout.w].as_i64()?;
        let vals: Vec<Value> = layout.groups.iter().map(|&i| values[i].clone()).collect();
        let key = tuple.key_at(&layout.groups);
        let states: Option<Vec<AggState>> = layout
            .aggs
            .iter()
            .zip(&self.aggs)
            .map(|(decoder, agg)| decoder.decode(agg, values))
            .collect();
        Some((
            wid.max(0) as u64,
            key,
            GroupAcc {
                vals,
                states: states?,
            },
        ))
    }

    /// One window tick: at the root, roll local windows up and derive every
    /// member's emissions; elsewhere, drain due windows into the group's
    /// single partial stream.
    fn tick(&mut self, now: SimTime, is_root: bool) -> TickOutput {
        let mut out = TickOutput::default();
        if is_root {
            self.state.roll_up_local(now);
            let members = &self.members;
            let window = self.window;
            let emissions = self.state.emit_due(now, |member_id, wid, groups| {
                let Some(m) = members.get(&member_id) else {
                    return Vec::new();
                };
                let (ws, we) = window.bounds(wid);
                let mut rows: Vec<Tuple> = groups
                    .iter()
                    .filter(|(_, acc)| m.derive.matches(&acc.vals))
                    .map(|(_, acc)| {
                        let mut values = Vec::with_capacity(m.result_schema.arity());
                        values.push(Value::Int(ws as i64));
                        values.push(Value::Int(we as i64));
                        values.extend(acc.vals.iter().cloned());
                        values.extend(acc.states.iter().map(AggState::finish));
                        Tuple::from_schema(Arc::clone(&m.result_schema), values)
                    })
                    .collect();
                // Same deterministic order as the independent path's
                // window_tick; cached keys render each row once instead of
                // twice per comparison.
                rows.sort_by_cached_key(std::string::ToString::to_string);
                if !m.final_ops.is_empty() {
                    let mut finisher =
                        Pipeline::new(m.final_ops.iter().filter_map(OperatorSpec::build).collect());
                    let mut finished = Vec::new();
                    for t in rows {
                        finished.extend(finisher.push(t));
                    }
                    finished.extend(finisher.flush());
                    rows = finished;
                }
                rows
            });
            for e in emissions {
                let Some(m) = self.members.get(&e.member) else {
                    continue;
                };
                let (window_start, window_end) = self.window.bounds(e.window);
                let mut retracts = Vec::new();
                let mut inserts = Vec::new();
                for d in e.deltas {
                    match d {
                        Delta::Retract(t) => retracts.push(t),
                        Delta::Insert(t) => inserts.push(t),
                    }
                }
                out.emissions.push(SharedEmission {
                    query_id: e.member,
                    proxy: m.proxy,
                    window_start,
                    window_end,
                    retracts,
                    inserts,
                });
            }
        } else {
            for (wid, groups) in self.state.drain_closed(now) {
                for (_, acc) in groups {
                    out.partials.push(self.encode_partial(wid, &acc));
                }
            }
        }
        out
    }
}

/// The share-group registry implementing [`MultiQuerySharing`].
#[derive(Debug, Default)]
pub struct MqoLayer {
    groups: HashMap<u64, ShareGroup>,
    by_query: HashMap<u64, u64>,
    /// `g{fp:016x}.windows` → fingerprint.
    window_ns: HashMap<String, u64>,
    /// Base table namespace → fingerprints ingesting it.
    base_ns: HashMap<String, Vec<u64>>,
    /// Monotone incarnation counter: every created group gets a fresh
    /// epoch, so a tick chain armed for a retired group with the same
    /// fingerprint can recognise it is stale.
    next_epoch: u64,
    chunks_absorbed: u64,
    rows_absorbed: u64,
    rows_selected: u64,
    /// Node telemetry handle (inert unless the executor attaches one).
    tel: Telemetry,
}

impl MqoLayer {
    /// The share group a member query belongs to (its plan fingerprint),
    /// if installed here.
    pub fn group_of(&self, query_id: u64) -> Option<u64> {
        self.by_query.get(&query_id).copied()
    }

    /// Sync membership gauges (and, on join, the joined group's size) into
    /// the telemetry hub.
    fn sync_membership(&self, joined: Option<u64>) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel.gauge("mqo.groups", self.groups.len() as f64);
        self.tel.gauge("mqo.members", self.by_query.len() as f64);
        if let Some(size) = joined
            .and_then(|fp| self.groups.get(&fp))
            .map(|g| g.members.len())
        {
            self.tel.observe_count("mqo.group_size", size as f64);
        }
    }
}

impl MultiQuerySharing for MqoLayer {
    fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    fn try_install(&mut self, plan: &QueryPlan, now: SimTime) -> InstallOutcome {
        let Some(candidate) = normalize(plan) else {
            return InstallOutcome::NotShareable;
        };
        let query_id = plan.query_id;
        if self.by_query.contains_key(&query_id) {
            // Defensive: the executor renews before offering, but a re-offer
            // of a live member is just a renewal.
            self.renew(query_id, now);
            let group = self.by_query[&query_id];
            let epoch = self.groups.get(&group).map_or(0, |g| g.epoch);
            return InstallOutcome::Member {
                group,
                new_group: false,
                epoch,
                slide: candidate.window.slide,
                lease: candidate.lease,
            };
        }
        let fingerprint = candidate.fingerprint;
        let new_group = !self.groups.contains_key(&fingerprint);
        if new_group {
            self.next_epoch += 1;
        }
        let next_epoch = self.next_epoch;
        let group = self
            .groups
            .entry(fingerprint)
            .or_insert_with(|| ShareGroup::new(&candidate, next_epoch));
        group.add_member(query_id, &candidate, plan.proxy, now);
        let epoch = group.epoch;
        if new_group {
            self.window_ns
                .insert(window_namespace(fingerprint), fingerprint);
            self.base_ns
                .entry(candidate.namespace.clone())
                .or_default()
                .push(fingerprint);
        }
        self.by_query.insert(query_id, fingerprint);
        self.sync_membership(Some(fingerprint));
        InstallOutcome::Member {
            group: fingerprint,
            new_group,
            epoch,
            slide: candidate.window.slide,
            lease: candidate.lease,
        }
    }

    fn renew(&mut self, query_id: u64, now: SimTime) -> bool {
        let Some(fp) = self.by_query.get(&query_id) else {
            return false;
        };
        let Some(member) = self
            .groups
            .get_mut(fp)
            .and_then(|g| g.members.get_mut(&query_id))
        else {
            return false;
        };
        member.lease.renew(now);
        true
    }

    fn uninstall(&mut self, query_id: u64) -> UninstallOutcome {
        let Some(fp) = self.by_query.remove(&query_id) else {
            return UninstallOutcome::not_member();
        };
        let Some(group) = self.groups.get_mut(&fp) else {
            return UninstallOutcome {
                was_member: true,
                retired_group: None,
            };
        };
        group.index.remove(query_id);
        group.state.remove_member(query_id);
        group.members.remove(&query_id);
        if group.members.is_empty() {
            let namespace = group.namespace.clone();
            self.groups.remove(&fp);
            self.window_ns.retain(|_, g| *g != fp);
            if let Some(fps) = self.base_ns.get_mut(&namespace) {
                fps.retain(|g| *g != fp);
                if fps.is_empty() {
                    self.base_ns.remove(&namespace);
                }
            }
            self.sync_membership(None);
            UninstallOutcome {
                was_member: true,
                retired_group: Some(fp),
            }
        } else {
            self.sync_membership(None);
            UninstallOutcome {
                was_member: true,
                retired_group: None,
            }
        }
    }

    fn lease_expires_at(&self, query_id: u64) -> Option<SimTime> {
        let fp = self.by_query.get(&query_id)?;
        self.groups
            .get(fp)
            .and_then(|g| g.members.get(&query_id))
            .map(|m| m.lease.expires_at)
    }

    fn wants_namespace(&self, namespace: &str) -> bool {
        self.base_ns.contains_key(namespace)
    }

    fn absorb_chunk(&mut self, namespace: &str, chunk: &ColumnChunk, now: SimTime) {
        let Some(fps) = self.base_ns.get(namespace) else {
            return;
        };
        let fps = fps.clone();
        let fanout = fps.len();
        self.chunks_absorbed += 1;
        let mut scanned_total = 0u64;
        let mut selected_total = 0u64;
        for fp in fps {
            if let Some(group) = self.groups.get_mut(&fp) {
                let (scanned, selected) = group.absorb_chunk(chunk, now);
                self.rows_absorbed += scanned;
                self.rows_selected += selected;
                scanned_total += scanned;
                selected_total += selected;
            }
        }
        if self.tel.is_enabled() {
            self.tel.inc("mqo.chunks_absorbed");
            self.tel.observe_count("mqo.index_fanout", fanout as f64);
            self.tel.add("mqo.rows_scanned", scanned_total);
            self.tel.add("mqo.rows_selected", selected_total);
        }
    }

    fn absorb_window_partial(&mut self, namespace: &str, tuple: &Tuple) -> Option<(u64, bool)> {
        let fp = *self.window_ns.get(namespace)?;
        let group = self.groups.get_mut(&fp)?;
        match group.decode_partial(tuple) {
            Some((wid, key, acc)) => Some((fp, group.state.absorb_partial(wid, &key, acc))),
            None => Some((fp, false)), // malformed: refused, best effort
        }
    }

    fn group_route(&self, group: u64) -> Option<GroupRoute> {
        self.groups.get(&group).map(|g| GroupRoute {
            namespace: window_namespace(g.fingerprint),
            root_key: root_key(g.fingerprint),
            slide: g.window.slide,
            epoch: g.epoch,
        })
    }

    fn member_ids(&self, group: u64) -> Vec<u64> {
        let Some(g) = self.groups.get(&group) else {
            return Vec::new();
        };
        let mut ids: Vec<u64> = g.members.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn tick(&mut self, group: u64, now: SimTime, is_root: bool) -> TickOutput {
        match self.groups.get_mut(&group) {
            Some(g) => g.tick(now, is_root),
            None => TickOutput::default(),
        }
    }

    fn stats(&self) -> SharingStats {
        SharingStats {
            groups: self.groups.len(),
            members: self.by_query.len(),
            open_windows: self.groups.values().map(|g| g.state.open_windows()).sum(),
            state_groups: self.groups.values().map(|g| g.state.total_groups()).sum(),
            chunks_absorbed: self.chunks_absorbed,
            rows_absorbed: self.rows_absorbed,
            rows_selected: self.rows_selected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::sqlish;
    use pier_core::{TupleBatch, Value};

    fn tenant_plan(query_id: u64, src: &str) -> QueryPlan {
        let mut plan = sqlish::compile(
            &format!(
                "SELECT src, COUNT(*), SUM(len) FROM packets WHERE src = '{src}' \
                 GROUP BY src WINDOW 2s SLIDE 1s"
            ),
            NodeAddr(1),
            60_000_000,
        )
        .expect("tenant query compiles");
        plan.query_id = query_id;
        plan
    }

    fn packets(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{}", i % 8).into())),
                        ("len", Value::Int(100 + i)),
                        ("ts", Value::Int(i * 10_000)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn constant_varied_tenants_share_one_group_and_get_their_own_answers() {
        let mut layer = MqoLayer::default();
        for (qid, src) in [(1u64, "10.0.0.1"), (2, "10.0.0.2"), (3, "10.0.0.3")] {
            let out = layer.try_install(&tenant_plan(qid, src), 0);
            match out {
                InstallOutcome::Member { new_group, .. } => {
                    assert_eq!(
                        new_group,
                        qid == 1,
                        "only the first member creates the group"
                    );
                }
                other => panic!("expected membership, got {other:?}"),
            }
        }
        let stats = layer.stats();
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.members, 3);
        // Absorb a stream; every chunk is scanned once for all members.
        let batch = TupleBatch::new(packets(400));
        for chunk in batch.chunks() {
            layer.absorb_chunk("packets", chunk, 0);
        }
        assert!(layer.stats().rows_absorbed >= 400);
        // Tick as root far enough in the future to close every window.
        let group = *layer.by_query.get(&1).unwrap();
        let out = layer.tick(group, 60_000_000, true);
        assert!(out.partials.is_empty(), "the root ships no partials");
        // Each member sees exactly its own source's counts, per window,
        // matching ground truth computed with the same window arithmetic.
        let spec = pier_cq::WindowSpec::sliding(2_000_000, 1_000_000);
        for qid in 1u64..=3 {
            let mine: Vec<&SharedEmission> =
                out.emissions.iter().filter(|e| e.query_id == qid).collect();
            assert!(!mine.is_empty(), "member {qid} must receive emissions");
            let src = format!("10.0.0.{qid}");
            let mut total = 0i64;
            for e in mine {
                for row in &e.inserts {
                    assert_eq!(
                        row.get("src").and_then(Value::as_str),
                        Some(src.as_str()),
                        "member {qid} must only see its own group"
                    );
                    assert_eq!(row.table(), format!("q{qid}.win"));
                    total += row.get("count").and_then(Value::as_i64).unwrap_or(0);
                }
            }
            let expected: i64 = packets(400)
                .iter()
                .filter(|t| t.get("src").and_then(Value::as_str) == Some(src.as_str()))
                .map(|t| {
                    let ts = t.get("ts").and_then(Value::as_i64).unwrap() as u64;
                    spec.windows_containing(ts).count() as i64
                })
                .sum();
            assert_eq!(total, expected, "member {qid} count across windows");
        }
        // Rows no member selects never enter the shared store: only the
        // three watched sources hold state.
        assert!(layer.stats().rows_selected < layer.stats().rows_absorbed);
    }

    #[test]
    fn non_root_ticks_ship_one_partial_stream_that_roots_can_decode() {
        let mut relay = MqoLayer::default();
        let mut root = MqoLayer::default();
        for l in [&mut relay, &mut root] {
            l.try_install(&tenant_plan(1, "10.0.0.1"), 0);
            l.try_install(&tenant_plan(2, "10.0.0.2"), 0);
        }
        let batch = TupleBatch::new(packets(200));
        for chunk in batch.chunks() {
            relay.absorb_chunk("packets", chunk, 0);
        }
        let group = *relay.by_query.get(&1).unwrap();
        let shipped = relay.tick(group, 60_000_000, false);
        assert!(
            !shipped.partials.is_empty(),
            "non-root ticks ship closed-window partials"
        );
        assert!(shipped.emissions.is_empty());
        let route = relay.group_route(group).expect("group is live");
        // The root absorbs the relayed partials and derives per-member
        // results from them.
        for partial in &shipped.partials {
            let (g, absorbed) = root
                .absorb_window_partial(&route.namespace, partial)
                .expect("group namespace");
            assert_eq!(g, group);
            assert!(absorbed);
        }
        let out = root.tick(group, 120_000_000, true);
        assert!(out.emissions.iter().any(|e| e.query_id == 1));
        assert!(out.emissions.iter().any(|e| e.query_id == 2));
        // Unknown namespaces are not the layer's.
        assert!(root
            .absorb_window_partial("packets", &shipped.partials[0])
            .is_none());
    }

    #[test]
    fn refcounted_teardown_leaves_no_groups_behind() {
        let mut layer = MqoLayer::default();
        for qid in 1u64..=4 {
            layer.try_install(&tenant_plan(qid, &format!("10.0.0.{qid}")), 0);
        }
        assert_eq!(layer.stats().groups, 1);
        assert!(layer.wants_namespace("packets"));
        for qid in 1u64..=3 {
            let out = layer.uninstall(qid);
            assert!(out.was_member);
            assert!(out.retired_group.is_none(), "group still has members");
        }
        assert_eq!(layer.stats().members, 1);
        let last = layer.uninstall(4);
        assert!(last.was_member);
        assert!(
            last.retired_group.is_some(),
            "last member retires the group"
        );
        assert_eq!(layer.stats().groups, 0);
        assert_eq!(layer.stats().members, 0);
        assert!(!layer.wants_namespace("packets"));
        assert!(layer.group_route(last.retired_group.unwrap()).is_none());
        assert!(
            !layer.uninstall(4).was_member,
            "double uninstall is a no-op"
        );
    }

    #[test]
    fn recreated_groups_get_a_fresh_epoch() {
        // A group retired and re-formed under the same fingerprint must be
        // distinguishable, so a stale tick chain armed for the first
        // incarnation stops instead of double-driving the second.
        let mut layer = MqoLayer::default();
        let first = match layer.try_install(&tenant_plan(1, "10.0.0.1"), 0) {
            InstallOutcome::Member {
                group,
                new_group,
                epoch,
                ..
            } => {
                assert!(new_group);
                (group, epoch)
            }
            other => panic!("expected membership, got {other:?}"),
        };
        assert_eq!(layer.group_route(first.0).unwrap().epoch, first.1);
        assert!(layer.uninstall(1).retired_group.is_some());
        let second = match layer.try_install(&tenant_plan(2, "10.0.0.2"), 5) {
            InstallOutcome::Member {
                group,
                new_group,
                epoch,
                ..
            } => {
                assert!(new_group, "re-creation is a new incarnation");
                (group, epoch)
            }
            other => panic!("expected membership, got {other:?}"),
        };
        assert_eq!(first.0, second.0, "same fingerprint");
        assert_ne!(first.1, second.1, "fresh epoch per incarnation");
        assert_eq!(layer.group_route(second.0).unwrap().epoch, second.1);
        // A member joining the live incarnation reports the same epoch and
        // does not start a new chain.
        match layer.try_install(&tenant_plan(3, "10.0.0.3"), 6) {
            InstallOutcome::Member {
                new_group, epoch, ..
            } => {
                assert!(!new_group);
                assert_eq!(epoch, second.1);
            }
            other => panic!("expected membership, got {other:?}"),
        }
    }

    #[test]
    fn leases_renew_and_expire_per_member() {
        let mut layer = MqoLayer::default();
        layer.try_install(&tenant_plan(1, "10.0.0.1"), 0);
        let initial = layer.lease_expires_at(1).expect("member has a lease");
        assert!(layer.renew(1, initial));
        assert!(layer.lease_expires_at(1).unwrap() > initial);
        assert!(!layer.renew(99, 0), "unknown queries do not renew");
        assert!(layer.lease_expires_at(99).is_none());
    }
}
