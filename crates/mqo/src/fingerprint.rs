//! Plan normalization and fingerprinting.
//!
//! Two standing queries belong to the same **share group** when their plans
//! are identical up to predicate constants: same source namespace, same
//! window, same GROUP BY, same aggregates, same per-node budget, and
//! selection predicates of the same *shape* (`src = 'a'` and `src = 'b'`
//! normalize together; `src = 'a'` and `port > 80` do not).  The
//! fingerprint is a stable hash over exactly that shape — constants are
//! abstracted to placeholders — so every node that receives a disseminated
//! plan independently routes it into the same group, and the group's DHT
//! namespaces (`g{fingerprint:016x}.…`) align across the overlay without
//! any coordination.
//!
//! **Eligibility.**  Beyond shape, sharing must be *sound*: the group keeps
//! one window store and derives each member's answer from the shared
//! per-group accumulators at flush, which is exact only when every member's
//! residual predicate references GROUP BY columns alone (the predicate is
//! then constant within each group, so a member's answer is precisely the
//! subset of shared groups its predicate accepts).  [`normalize`] returns
//! `None` for anything else — joins, rehash sinks, window-scoped dedup,
//! predicates over non-grouping columns — and the executor falls back to
//! independent execution, so sharing never changes results, only cost.
//!
//! Output semantics (`DELTAS` vs snapshots), per-member `TOP k` finishers
//! and lease durations are *member-level*: they live in each member's
//! tracker/finisher and are deliberately excluded from the fingerprint, so
//! a snapshot consumer and a delta consumer of the same aggregate still
//! share one store.

use pier_core::plan::{Dissemination, QueryPlan, SinkSpec};
use pier_core::{AggFunc, ArithOp, CmpOp, CqBudget, Expr, OperatorSpec, Value, WindowSpec};
use pier_cq::DeltaMode;
use pier_runtime::Duration;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A plan that normalized into a share group: the group-level shape (hashed
/// into `fingerprint`) plus the member-level residue.
#[derive(Debug, Clone)]
pub struct ShareCandidate {
    /// The share-group identifier: a stable hash of the group-level shape.
    pub fingerprint: u64,
    /// Source table namespace the group ingests.
    pub namespace: String,
    /// The group's window specification.
    pub window: WindowSpec,
    /// GROUP BY columns.
    pub group_cols: Vec<String>,
    /// Aggregates computed per window and group.
    pub aggs: Vec<AggFunc>,
    /// Event-time column (arrival time when absent).
    pub time_col: Option<String>,
    /// Per-node work/state budget of the shared store.
    pub budget: CqBudget,
    /// **Member-level:** this query's selection predicate (references only
    /// `group_cols`; `TRUE` when the plan had no selection).
    pub predicate: Expr,
    /// **Member-level:** snapshot or insert/retract output.
    pub delta: DeltaMode,
    /// **Member-level:** finishers applied to this member's derived rows at
    /// the root (e.g. `TOP k`).
    pub final_ops: Vec<OperatorSpec>,
    /// **Member-level:** soft-state lease granted per (re)dissemination.
    pub lease: Duration,
}

/// Normalize a disseminated plan into a share-group candidate, or `None`
/// when the plan is not shareable (the executor then installs it
/// independently — normalization never rejects a query, only sharing).
pub fn normalize(plan: &QueryPlan) -> Option<ShareCandidate> {
    let cq = plan.cq.as_ref()?;
    if plan.dissemination != Dissemination::Broadcast || plan.opgraphs.len() != 1 {
        return None;
    }
    let graph = &plan.opgraphs[0];
    if graph.join.is_some() {
        return None;
    }
    let SinkSpec::WindowedAgg {
        window,
        group_cols,
        aggs,
        time_col,
        dedup_cols,
        delta,
        final_ops,
    } = &graph.sink
    else {
        return None;
    };
    // Window-scoped dedup keys are store-wide: under a shared store a
    // duplicate of one member's row could suppress another member's — not
    // shareable.
    if !dedup_cols.is_empty() {
        return None;
    }
    let predicate = match graph.ops.as_slice() {
        [] => Expr::Const(Value::Bool(true)),
        [OperatorSpec::Selection(p)] => p.clone(),
        _ => return None,
    };
    // Soundness: the predicate must be decidable from the group columns
    // alone, so it is constant within each shared accumulator group.
    if !predicate_columns(&predicate)
        .iter()
        .all(|c| group_cols.contains(c))
    {
        return None;
    }
    let mut h = DefaultHasher::new();
    graph.source.namespace().hash(&mut h);
    (window.size, window.slide, window.grace).hash(&mut h);
    group_cols.hash(&mut h);
    for agg in aggs {
        hash_agg(agg, &mut h);
    }
    time_col.hash(&mut h);
    (
        cq.budget.max_open_windows,
        cq.budget.max_groups_per_window,
        cq.budget.max_tuples_per_window,
    )
        .hash(&mut h);
    hash_predicate_shape(&predicate, &mut h);
    Some(ShareCandidate {
        fingerprint: h.finish(),
        namespace: graph.source.namespace().to_string(),
        window: *window,
        group_cols: group_cols.clone(),
        aggs: aggs.clone(),
        time_col: time_col.clone(),
        budget: cq.budget,
        predicate,
        delta: *delta,
        final_ops: final_ops.clone(),
        lease: cq.lease,
    })
}

/// Every column a predicate references.
pub fn predicate_columns(expr: &Expr) -> Vec<String> {
    fn walk(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Const(_) => {}
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            Expr::Not(inner) => walk(inner, out),
            Expr::Contains(c, _) => out.push(c.clone()),
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

fn hash_agg(agg: &AggFunc, h: &mut DefaultHasher) {
    match agg {
        AggFunc::Count => 0u8.hash(h),
        AggFunc::Sum(c) => {
            1u8.hash(h);
            c.hash(h);
        }
        AggFunc::Min(c) => {
            2u8.hash(h);
            c.hash(h);
        }
        AggFunc::Max(c) => {
            3u8.hash(h);
            c.hash(h);
        }
        AggFunc::Avg(c) => {
            4u8.hash(h);
            c.hash(h);
        }
    }
}

/// Hash a predicate's *shape*: structure, operators and column names, with
/// every constant (comparison literals, `Contains` needles) abstracted to a
/// placeholder — the whole point of the fingerprint is that
/// constant-only-different predicates collide.
fn hash_predicate_shape(e: &Expr, h: &mut DefaultHasher) {
    match e {
        Expr::Column(c) => {
            0u8.hash(h);
            c.hash(h);
        }
        Expr::Const(_) => 1u8.hash(h),
        Expr::Cmp(op, l, r) => {
            2u8.hash(h);
            cmp_tag(*op).hash(h);
            hash_predicate_shape(l, h);
            hash_predicate_shape(r, h);
        }
        Expr::Arith(op, l, r) => {
            3u8.hash(h);
            arith_tag(*op).hash(h);
            hash_predicate_shape(l, h);
            hash_predicate_shape(r, h);
        }
        Expr::And(l, r) => {
            4u8.hash(h);
            hash_predicate_shape(l, h);
            hash_predicate_shape(r, h);
        }
        Expr::Or(l, r) => {
            5u8.hash(h);
            hash_predicate_shape(l, h);
            hash_predicate_shape(r, h);
        }
        Expr::Not(inner) => {
            6u8.hash(h);
            hash_predicate_shape(inner, h);
        }
        Expr::Contains(c, _) => {
            7u8.hash(h);
            c.hash(h);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn arith_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::sqlish;
    use pier_runtime::NodeAddr;

    fn compile(sql: &str) -> QueryPlan {
        let mut plan = sqlish::compile(sql, NodeAddr(1), 60_000_000).expect("compiles");
        // Dissemination assigns query ids at submit time; fingerprinting
        // must not depend on them.
        plan.query_id = 42;
        plan
    }

    #[test]
    fn constant_varied_queries_share_a_fingerprint() {
        let a = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = '10.0.0.1' GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .expect("shareable");
        let b = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = '10.9.9.9' GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .expect("shareable");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.predicate, b.predicate, "constants stay member-level");
    }

    #[test]
    fn output_mode_and_top_k_are_member_level() {
        let a = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = 'x' GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .unwrap();
        let b = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = 'y' GROUP BY src TOP 3 BY count WINDOW 2s SLIDE 1s DELTAS",
        ))
        .unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(b.delta, DeltaMode::Deltas);
        assert_eq!(b.final_ops.len(), 1);
        assert!(a.final_ops.is_empty());
    }

    #[test]
    fn shape_differences_split_groups() {
        let base = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = 'x' GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .unwrap();
        for other in [
            // different window
            "SELECT src, COUNT(*) FROM packets WHERE src = 'x' GROUP BY src WINDOW 4s SLIDE 1s",
            // different aggregate set
            "SELECT src, COUNT(*), SUM(len) FROM packets WHERE src = 'x' GROUP BY src WINDOW 2s SLIDE 1s",
            // different namespace
            "SELECT src, COUNT(*) FROM flows WHERE src = 'x' GROUP BY src WINDOW 2s SLIDE 1s",
            // different predicate shape (operator)
            "SELECT src, COUNT(*) FROM packets WHERE src != 'x' GROUP BY src WINDOW 2s SLIDE 1s",
        ] {
            let o = normalize(&compile(other)).unwrap();
            assert_ne!(base.fingerprint, o.fingerprint, "{other}");
        }
    }

    #[test]
    fn non_shareable_plans_are_rejected() {
        // Predicate over a non-grouping column: derivation would be unsound.
        assert!(normalize(&compile(
            "SELECT src, COUNT(*) FROM packets WHERE port = 80 GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .is_none());
        // No window sink at all (one-shot aggregation).
        assert!(normalize(&compile("SELECT src, COUNT(*) FROM packets GROUP BY src",)).is_none());
        // Plain select (no CQ lifecycle).
        assert!(normalize(&compile("SELECT src FROM packets WHERE src = 'x'")).is_none());
    }

    #[test]
    fn plan_builder_tenant_shorthand_normalizes_into_one_group() {
        use pier_core::{CqSpec, PlanBuilder, WindowSpec};
        let build = |watched: &str, qid: u64| {
            let mut plan = PlanBuilder::windowed_filtered_count(
                NodeAddr(3),
                "packets",
                "src",
                watched,
                WindowSpec::sliding(2_000_000, 1_000_000),
                CqSpec::default(),
                60_000_000,
            );
            plan.query_id = qid;
            plan
        };
        let a = normalize(&build("10.0.0.1", 7)).expect("shareable");
        let b = normalize(&build("10.0.0.2", 8)).expect("shareable");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn predicate_free_windowed_aggregates_share_too() {
        let a = normalize(&compile(
            "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s",
        ))
        .expect("shareable");
        assert_eq!(a.predicate, Expr::Const(Value::Bool(true)));
    }
}
