//! The predicate index: N member predicates, one scan per chunk.
//!
//! A share group's members are near-identical predicates differing in
//! constants (`src = '10.0.0.1'`, `src = '10.0.0.2'`, …).  Evaluating them
//! independently costs N expression walks per row; the [`PredicateIndex`]
//! instead **decomposes** each member predicate into a conjunction of
//! `column op constant` atoms, groups the atoms **by column**, and scans
//! each referenced column once per chunk with a type-specialised kernel:
//!
//! * equality atoms on a column form a hash kernel (`i64`- and
//!   `&str`-keyed), so a scan row finds *all* members whose constant it
//!   equals with one lookup — the per-row cost is O(1) in the member count;
//! * ordering atoms (`<`, `<=`, `>`, `>=`, `!=`) each scan the column with
//!   an inner loop specialised to the constant's type;
//! * members whose predicate does not decompose (disjunctions, arithmetic)
//!   fall back to `CompiledExpr::eval_column` — still column-at-a-time,
//!   just not shared.
//!
//! Every atom's outcome lands in word-packed [`SelMask`]s combined with
//! bitwise ops: ANDing a member's atoms, ORing members into the union mask
//! the shared window store absorbs.  The masks are exactly what per-member
//! [`CompiledPredicate`] evaluation would produce row by row — including
//! best-effort discard on missing columns and type mismatches — which the
//! equivalence and property tests pin.

use crate::mask::SelMask;
use pier_core::tuple::{ColumnChunk, Schema};
use pier_core::{CmpOp, Column, CompiledPredicate, Expr, Value, ValueRef};
use std::collections::HashMap;
use std::sync::Arc;

/// 2^53: strictly below this magnitude, `f64` represents every integer
/// exactly, so `f as i64` round-trips and hashing the cast agrees with
/// [`Value::compare`]'s widening comparison.  At and beyond it, distinct
/// `i64` constants round to the *same* `f64` (2^53 + 1 rounds onto 2^53),
/// so integral float row values fall back to comparing against each
/// integer constant the way per-row evaluation would.
const F64_EXACT_INT_MAX: f64 = 9_007_199_254_740_992.0;

/// One `column op constant` conjunct of a member predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// The column compared.
    pub column: String,
    /// The comparison.
    pub op: CmpOp,
    /// The constant compared against.
    pub constant: Value,
}

/// Decompose a predicate into a conjunction of [`Atom`]s, or `None` when
/// its shape does not permit it (the member then evaluates through the
/// vectorised fallback).  `TRUE` decomposes to the empty conjunction.
pub fn decompose(expr: &Expr) -> Option<Vec<Atom>> {
    match expr {
        Expr::Const(Value::Bool(true)) => Some(Vec::new()),
        Expr::Cmp(op, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Column(c), Expr::Const(v)) => Some(vec![Atom {
                column: c.clone(),
                op: *op,
                constant: v.clone(),
            }]),
            (Expr::Const(v), Expr::Column(c)) => Some(vec![Atom {
                column: c.clone(),
                op: flip(*op),
                constant: v.clone(),
            }]),
            _ => None,
        },
        Expr::And(l, r) => {
            let mut atoms = decompose(l)?;
            atoms.extend(decompose(r)?);
            Some(atoms)
        }
        _ => None,
    }
}

/// `const op col` ⇔ `col flip(op) const`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[derive(Debug)]
struct IndexedMember {
    id: u64,
    /// Conjunction decomposition; `None` routes through `fallback`.
    atoms: Option<Vec<Atom>>,
    /// The full predicate, for the vectorised fallback path.
    fallback: CompiledPredicate,
}

/// One column's compiled kernels.  Equality atoms index into the global
/// per-atom scratch-mask table (`entries` lists this kernel's share of it);
/// ordering atoms carry their member slot directly and clear failing rows
/// in place.
#[derive(Debug, Default)]
struct ColumnKernel {
    col: usize,
    /// Integer constant → equality-entry ids.
    int_eq: HashMap<i64, Vec<u32>>,
    /// String constant → equality-entry ids.
    str_eq: HashMap<String, Vec<u32>>,
    /// Float equality constants `(entry, constant)`; compared per row
    /// (they can also equal integer row values).
    float_eq: Vec<(u32, Value)>,
    /// Bool/bytes/null equality constants `(entry, constant)`.
    misc_eq: Vec<(u32, Value)>,
    /// Every equality entry of this kernel (for the AND step).
    entries: Vec<u32>,
    /// Ordering / inequality atoms: `(op, constant, member slot)`.
    cmps: Vec<(CmpOp, Value, u32)>,
}

/// Apply every equality atom of `kernel` to row `r` holding `v` — the
/// layout-independent per-value dispatch, exactly what per-row predicate
/// evaluation would conclude for the row.  The typed arms of the chunk scan
/// are shortcuts for the `Int`/`Str` branches below; null rows and mixed
/// layouts funnel through here.
fn eq_scan_row(kernel: &ColumnKernel, scratch: &mut [SelMask], r: usize, v: ValueRef<'_>) {
    match v {
        ValueRef::Int(x) => {
            if let Some(entries) = kernel.int_eq.get(&x) {
                for &e in entries {
                    scratch[e as usize].set(r);
                }
            }
            for (e, c) in &kernel.float_eq {
                if v.compare_value(c) == Some(std::cmp::Ordering::Equal) {
                    scratch[*e as usize].set(r);
                }
            }
        }
        ValueRef::Float(f) => {
            if f.fract() == 0.0 {
                // Strictly below 2^53: every i64 the widening comparison
                // could equate casts back exactly, so the hash lookup is
                // complete.  At and beyond it, neighbours like 2^53+1 round
                // onto the same f64.
                if f.abs() < F64_EXACT_INT_MAX {
                    if let Some(entries) = kernel.int_eq.get(&(f as i64)) {
                        for &e in entries {
                            scratch[e as usize].set(r);
                        }
                    }
                } else {
                    // Beyond the exactly-representable range the cast can
                    // miss constants that Value::compare's widening would
                    // equate; compare each (rare: only huge integral float
                    // rows pay this).
                    for (k, entries) in &kernel.int_eq {
                        if v.compare_value(&Value::Int(*k)) == Some(std::cmp::Ordering::Equal) {
                            for &e in entries {
                                scratch[e as usize].set(r);
                            }
                        }
                    }
                }
            }
            for (e, c) in &kernel.float_eq {
                if v.compare_value(c) == Some(std::cmp::Ordering::Equal) {
                    scratch[*e as usize].set(r);
                }
            }
        }
        ValueRef::Str(s) => {
            if let Some(entries) = kernel.str_eq.get(s) {
                for &e in entries {
                    scratch[e as usize].set(r);
                }
            }
        }
        other => {
            for (e, c) in &kernel.misc_eq {
                if other.compare_value(c) == Some(std::cmp::Ordering::Equal) {
                    scratch[*e as usize].set(r);
                }
            }
        }
    }
}

/// The index compiled against one interned schema (single-entry cache,
/// pointer-keyed like every per-schema cache in `pier-core`).
#[derive(Debug)]
struct CompiledIndex {
    schema: Arc<Schema>,
    kernels: Vec<ColumnKernel>,
    /// Members with an atom on a column the schema lacks: evaluation would
    /// error on every row, so their mask is all-false (best-effort
    /// discard).
    always_false: Vec<u32>,
    /// Members whose predicate did not decompose.
    fallback: Vec<u32>,
    /// Members served by the atom kernels (mask starts all-true).
    atom_slots: Vec<u32>,
    /// Equality entry → member slot.
    entry_slot: Vec<u32>,
}

/// The multi-query predicate index: member predicates in, per-member
/// selection masks (plus their union) out, one column scan at a time.
#[derive(Debug, Default)]
pub struct PredicateIndex {
    members: Vec<IndexedMember>,
    by_id: HashMap<u64, usize>,
    compiled: Option<CompiledIndex>,
    /// Per-member masks, parallel to `members` (valid after
    /// [`PredicateIndex::eval_chunk`]).
    masks: Vec<SelMask>,
    /// Per-equality-entry scratch masks, reused across chunks.
    scratch: Vec<SelMask>,
    /// Three-valued scratch for the ordering-atom kernel, reused across
    /// chunks (no per-atom allocation).
    truth_scratch: Vec<bool>,
    err_scratch: Vec<bool>,
    union: SelMask,
}

impl PredicateIndex {
    /// An empty index.
    pub fn new() -> Self {
        PredicateIndex {
            union: SelMask::new(0, false),
            ..Default::default()
        }
    }

    /// Number of member predicates.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no member is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Register a member predicate.  `false` when the id already exists.
    pub fn insert(&mut self, id: u64, predicate: Expr) -> bool {
        if self.by_id.contains_key(&id) {
            return false;
        }
        self.by_id.insert(id, self.members.len());
        self.members.push(IndexedMember {
            id,
            atoms: decompose(&predicate),
            fallback: CompiledPredicate::new(predicate),
        });
        self.compiled = None;
        true
    }

    /// Remove a member predicate.  `false` when the id is unknown.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(slot) = self.by_id.remove(&id) else {
            return false;
        };
        self.members.swap_remove(slot);
        if slot < self.members.len() {
            self.by_id.insert(self.members[slot].id, slot);
        }
        self.compiled = None;
        true
    }

    /// Compile the member set against `schema`.
    fn compile(members: &[IndexedMember], schema: &Arc<Schema>) -> CompiledIndex {
        let mut kernels_by_col: HashMap<usize, ColumnKernel> = HashMap::new();
        let mut always_false = Vec::new();
        let mut fallback = Vec::new();
        let mut atom_slots = Vec::new();
        let mut entry_slot: Vec<u32> = Vec::new();
        for (slot, member) in members.iter().enumerate() {
            let slot32 = slot as u32;
            let Some(atoms) = &member.atoms else {
                fallback.push(slot32);
                continue;
            };
            let resolved: Option<Vec<usize>> =
                atoms.iter().map(|a| schema.position(&a.column)).collect();
            let Some(cols) = resolved else {
                always_false.push(slot32);
                continue;
            };
            atom_slots.push(slot32);
            for (atom, col) in atoms.iter().zip(cols) {
                let kernel = kernels_by_col.entry(col).or_insert_with(|| ColumnKernel {
                    col,
                    ..ColumnKernel::default()
                });
                if atom.op == CmpOp::Eq {
                    let entry = entry_slot.len() as u32;
                    entry_slot.push(slot32);
                    kernel.entries.push(entry);
                    match &atom.constant {
                        Value::Int(i) => kernel.int_eq.entry(*i).or_default().push(entry),
                        Value::Str(s) => {
                            kernel.str_eq.entry(s.to_string()).or_default().push(entry);
                        }
                        Value::Float(_) => kernel.float_eq.push((entry, atom.constant.clone())),
                        other => kernel.misc_eq.push((entry, other.clone())),
                    }
                } else {
                    kernel.cmps.push((atom.op, atom.constant.clone(), slot32));
                }
            }
        }
        CompiledIndex {
            schema: Arc::clone(schema),
            kernels: kernels_by_col.into_values().collect(),
            always_false,
            fallback,
            atom_slots,
            entry_slot,
        }
    }

    /// Evaluate every member predicate over `chunk`, column-at-a-time.
    /// Afterwards [`PredicateIndex::member_mask`] holds each member's
    /// selection mask and [`PredicateIndex::union`] their bitwise OR (the
    /// rows at least one member selects).
    pub fn eval_chunk(&mut self, chunk: &ColumnChunk) {
        let rows = chunk.rows();
        let schema = chunk.schema();
        let hit = self
            .compiled
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(&c.schema, schema));
        if !hit {
            self.compiled = Some(Self::compile(&self.members, schema));
        }
        while self.masks.len() < self.members.len() {
            self.masks.push(SelMask::new(0, false));
        }
        let compiled = self.compiled.as_ref().expect("compiled above");
        for &slot in &compiled.atom_slots {
            self.masks[slot as usize].reset(rows, true);
        }
        for &slot in &compiled.always_false {
            self.masks[slot as usize].reset(rows, false);
        }
        // Fallback members: whole-predicate vectorised evaluation.
        for &slot in &compiled.fallback {
            let member = &mut self.members[slot as usize];
            let bools = member.fallback.for_schema(schema).eval_column(chunk);
            self.masks[slot as usize].load_bools(&bools);
        }
        // Equality scratch masks: one per (member, eq-atom) pair.
        while self.scratch.len() < compiled.entry_slot.len() {
            self.scratch.push(SelMask::new(0, false));
        }
        for entry in 0..compiled.entry_slot.len() {
            self.scratch[entry].reset(rows, false);
        }
        for kernel in &compiled.kernels {
            let column = chunk.col(kernel.col);
            // One scan resolves every equality atom on this column: the row
            // value hashes straight to the matching entries.  The scan is
            // layout-specialised: native-int columns hash straight off the
            // `i64` slice, dictionary columns resolve each distinct string
            // once and broadcast by code, everything else borrows each row
            // ([`Column::value_ref`]) into the shared per-value dispatch.
            if !kernel.entries.is_empty() {
                match column {
                    Column::Int { data, validity } => {
                        for (r, &x) in data.iter().enumerate() {
                            if validity.as_ref().is_some_and(|b| !b.get(r)) {
                                eq_scan_row(kernel, &mut self.scratch, r, ValueRef::Null);
                                continue;
                            }
                            if let Some(entries) = kernel.int_eq.get(&x) {
                                for &e in entries {
                                    self.scratch[e as usize].set(r);
                                }
                            }
                            for (e, c) in &kernel.float_eq {
                                if ValueRef::Int(x).compare_value(c)
                                    == Some(std::cmp::Ordering::Equal)
                                {
                                    self.scratch[*e as usize].set(r);
                                }
                            }
                        }
                    }
                    Column::Dict {
                        codes,
                        dict,
                        validity,
                    } => {
                        let per_code: Vec<&[u32]> = dict
                            .iter()
                            .map(|s| kernel.str_eq.get(s.as_ref()).map_or(&[][..], Vec::as_slice))
                            .collect();
                        for (r, &code) in codes.iter().enumerate() {
                            if validity.as_ref().is_some_and(|b| !b.get(r)) {
                                eq_scan_row(kernel, &mut self.scratch, r, ValueRef::Null);
                                continue;
                            }
                            for &e in per_code[code as usize] {
                                self.scratch[e as usize].set(r);
                            }
                        }
                    }
                    Column::Str {
                        arena,
                        offsets,
                        validity,
                    } => {
                        // Validate the arena once and slice rows from it —
                        // `value_ref` would re-run `from_utf8` per row.
                        let arena = std::str::from_utf8(arena).expect("arena holds UTF-8");
                        for r in 0..offsets.len() - 1 {
                            if validity.as_ref().is_some_and(|b| !b.get(r)) {
                                eq_scan_row(kernel, &mut self.scratch, r, ValueRef::Null);
                                continue;
                            }
                            let s = &arena[offsets[r] as usize..offsets[r + 1] as usize];
                            eq_scan_row(kernel, &mut self.scratch, r, ValueRef::Str(s));
                        }
                    }
                    _ => {
                        for r in 0..rows {
                            eq_scan_row(kernel, &mut self.scratch, r, column.value_ref(r));
                        }
                    }
                }
            }
            // Ordering atoms: one specialised scan each, clearing failing
            // rows from the member's mask in place.  The scan delegates to
            // `pier-core`'s `cmp_col_const` kernel — the exact loops
            // single-query `Selection` vectorises with, so the index and
            // per-row evaluation share one comparison semantics by
            // construction — over reused three-valued scratch (incomparable
            // rows fail, per the discard-on-mismatch policy).
            for (op, constant, slot) in &kernel.cmps {
                self.truth_scratch.clear();
                self.truth_scratch.resize(rows, false);
                self.err_scratch.clear();
                self.err_scratch.resize(rows, false);
                pier_core::expr::cmp_col_const(
                    *op,
                    column,
                    constant,
                    &mut self.truth_scratch,
                    &mut self.err_scratch,
                );
                let mask = &mut self.masks[*slot as usize];
                for (r, (t, e)) in self.truth_scratch.iter().zip(&self.err_scratch).enumerate() {
                    if !*t || *e {
                        mask.clear(r);
                    }
                }
            }
        }
        // AND each member's equality outcomes into its mask, then OR all
        // members into the union the shared store absorbs.
        for kernel in &compiled.kernels {
            for &entry in &kernel.entries {
                let slot = compiled.entry_slot[entry as usize];
                self.masks[slot as usize].and_assign(&self.scratch[entry as usize]);
            }
        }
        self.union.reset(rows, false);
        for (slot, _) in self.members.iter().enumerate() {
            self.union.or_assign(&self.masks[slot]);
        }
    }

    /// Member `id`'s selection mask from the last
    /// [`PredicateIndex::eval_chunk`].
    pub fn member_mask(&self, id: u64) -> Option<&SelMask> {
        self.by_id.get(&id).map(|slot| &self.masks[*slot])
    }

    /// The union mask from the last [`PredicateIndex::eval_chunk`]: rows
    /// selected by at least one member.
    pub fn union(&self) -> &SelMask {
        &self.union
    }

    /// Member ids currently indexed (arbitrary order).
    pub fn member_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.iter().map(|m| m.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::{Tuple, TupleBatch};

    fn chunk(rows: Vec<Tuple>) -> TupleBatch {
        TupleBatch::new(rows)
    }

    fn messy_rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                let port = match i % 6 {
                    0 => Value::Int(i % 100),
                    1 => Value::Float((i % 100) as f64),
                    2 => Value::Float(i as f64 + 0.5),
                    3 => Value::Str(format!("p{i}").into()),
                    4 => Value::Null,
                    _ => Value::Int(i % 100),
                };
                Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{}", i % 16).into())),
                        ("port", port),
                        ("len", Value::Int(40 + i % 1400)),
                    ],
                )
            })
            .collect()
    }

    /// Every member mask must equal row-by-row evaluation of the member's
    /// own predicate — the index is an optimization, never a semantics
    /// change.
    fn assert_masks_match(index: &mut PredicateIndex, preds: &[(u64, Expr)], rows: Vec<Tuple>) {
        let batch = chunk(rows);
        for chunk in batch.chunks() {
            index.eval_chunk(chunk);
            let mut union = vec![false; chunk.rows()];
            for (id, expr) in preds {
                let mut reference = CompiledPredicate::new(expr.clone());
                let compiled = reference.for_schema(chunk.schema());
                let expect: Vec<bool> = (0..chunk.rows())
                    .map(|r| compiled.matches_row(chunk, r))
                    .collect();
                let got = index.member_mask(*id).expect("member indexed").to_bools();
                assert_eq!(got, expect, "member {id} ({expr:?}) diverges");
                for (u, e) in union.iter_mut().zip(&expect) {
                    *u = *u || *e;
                }
            }
            assert_eq!(index.union().to_bools(), union, "union mask diverges");
        }
    }

    #[test]
    fn constant_varied_equality_members_match_per_row_eval() {
        let mut index = PredicateIndex::new();
        let preds: Vec<(u64, Expr)> = (0..24)
            .map(|i| (i, Expr::eq("src", format!("10.0.0.{}", i % 16).as_str())))
            .collect();
        for (id, p) in &preds {
            assert!(index.insert(*id, p.clone()));
        }
        assert_eq!(index.len(), 24);
        assert_masks_match(&mut index, &preds, messy_rows(300));
    }

    #[test]
    fn mixed_atom_shapes_and_fallbacks_match_per_row_eval() {
        let mut index = PredicateIndex::new();
        let preds: Vec<(u64, Expr)> = vec![
            (1, Expr::eq("port", 40i64)),
            (2, Expr::eq("port", 41.0)),
            (3, Expr::cmp(CmpOp::Ge, Expr::col("port"), Expr::lit(50i64))),
            (4, Expr::cmp(CmpOp::Lt, Expr::lit(60.0), Expr::col("port"))),
            (
                5,
                Expr::And(
                    Box::new(Expr::eq("src", "10.0.0.3")),
                    Box::new(Expr::cmp(CmpOp::Le, Expr::col("len"), Expr::lit(500i64))),
                ),
            ),
            // Disjunction: not decomposable, served by the fallback path.
            (
                6,
                Expr::Or(
                    Box::new(Expr::eq("src", "10.0.0.1")),
                    Box::new(Expr::eq("src", "10.0.0.2")),
                ),
            ),
            // Missing column: all rows discard.
            (7, Expr::eq("nope", 1i64)),
            // Contradictory conjunction on one column: never matches.
            (
                8,
                Expr::And(
                    Box::new(Expr::eq("port", 40i64)),
                    Box::new(Expr::eq("port", 42i64)),
                ),
            ),
            // TRUE predicate: matches everything.
            (9, Expr::Const(Value::Bool(true))),
            (
                10,
                Expr::cmp(CmpOp::Ne, Expr::col("port"), Expr::lit(40i64)),
            ),
        ];
        for (id, p) in &preds {
            assert!(index.insert(*id, p.clone()));
        }
        assert_masks_match(&mut index, &preds, messy_rows(360));
    }

    #[test]
    fn huge_integer_constants_agree_with_widening_comparison() {
        // 2^53 + 1 is the first i64 that f64 cannot represent: a Float row
        // of 2^53 equals it under Value::compare's widening (both sides
        // round to 2^53), and the hash kernel's cast must not miss that.
        let k = (1i64 << 53) + 1;
        let preds: Vec<(u64, Expr)> = vec![
            (1, Expr::eq("x", k)),
            (2, Expr::eq("x", 1i64 << 53)),
            (3, Expr::eq("x", i64::MAX)),
        ];
        let mut index = PredicateIndex::new();
        for (id, p) in &preds {
            index.insert(*id, p.clone());
        }
        let rows: Vec<Tuple> = [
            Value::Float((1u64 << 53) as f64),
            Value::Float(9.3e18),
            Value::Float(f64::NAN),
            Value::Int(k),
            Value::Int(1i64 << 53),
            Value::Float(1.5),
        ]
        .into_iter()
        .map(|x| Tuple::new("t", vec![("x", x)]))
        .collect();
        assert_masks_match(&mut index, &preds, rows);
    }

    #[test]
    fn membership_changes_invalidate_and_recompile() {
        let mut index = PredicateIndex::new();
        assert!(index.insert(1, Expr::eq("src", "10.0.0.1")));
        assert!(index.insert(2, Expr::eq("src", "10.0.0.2")));
        assert!(!index.insert(2, Expr::eq("src", "other")), "duplicate id");
        let rows = messy_rows(64);
        assert_masks_match(
            &mut index,
            &[
                (1, Expr::eq("src", "10.0.0.1")),
                (2, Expr::eq("src", "10.0.0.2")),
            ],
            rows.clone(),
        );
        assert!(index.remove(1));
        assert!(!index.remove(1));
        assert_eq!(index.len(), 1);
        assert_masks_match(&mut index, &[(2, Expr::eq("src", "10.0.0.2"))], rows);
        assert!(index.member_mask(1).is_none());
        assert_eq!(index.member_ids().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn decompose_recognises_conjunctions_of_atoms() {
        let atoms = decompose(&Expr::all(vec![
            Expr::eq("a", 1i64),
            Expr::cmp(CmpOp::Lt, Expr::lit(5i64), Expr::col("b")),
        ]))
        .expect("decomposes");
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[1].op, CmpOp::Gt, "const < col flips to col > const");
        assert_eq!(decompose(&Expr::Const(Value::Bool(true))), Some(vec![]));
        assert!(decompose(&Expr::Or(
            Box::new(Expr::eq("a", 1i64)),
            Box::new(Expr::eq("a", 2i64)),
        ))
        .is_none());
        assert!(decompose(&Expr::Contains("a".into(), "x".into())).is_none());
    }
}
