//! Word-packed selection masks.
//!
//! The predicate index produces one selection mask per member query per
//! chunk.  Masks are `u64`-word bitsets so combining them — ANDing a
//! member's atoms together, ORing members into the union the shared store
//! absorbs — is a handful of word ops per 64 rows, and so a 256-member
//! group's mask set for a 1 024-row chunk is 4 KiB of reusable buffer, not
//! 256 `Vec<bool>` allocations.
//!
//! Invariant: bits at positions `>= rows` are always zero, so
//! [`SelMask::count`] and the word-wise combinators never see tail garbage.

/// A fixed-length bitset over a chunk's rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelMask {
    words: Vec<u64>,
    rows: usize,
}

impl SelMask {
    /// A mask of `rows` bits, all set to `value`.
    pub fn new(rows: usize, value: bool) -> Self {
        let mut mask = SelMask {
            words: Vec::new(),
            rows: 0,
        };
        mask.reset(rows, value);
        mask
    }

    /// Resize to `rows` bits, all set to `value`, reusing the allocation.
    pub fn reset(&mut self, rows: usize, value: bool) {
        let words = rows.div_ceil(64);
        self.rows = rows;
        self.words.clear();
        self.words.resize(words, if value { !0u64 } else { 0 });
        self.trim_tail();
    }

    /// Zero the bits past `rows` (upholds the tail invariant).
    fn trim_tail(&mut self) {
        if !self.rows.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.rows % 64)) - 1;
            }
        }
    }

    /// Number of rows the mask covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Set bit `r`.
    pub fn set(&mut self, r: usize) {
        debug_assert!(r < self.rows);
        self.words[r / 64] |= 1u64 << (r % 64);
    }

    /// Clear bit `r`.
    pub fn clear(&mut self, r: usize) {
        debug_assert!(r < self.rows);
        self.words[r / 64] &= !(1u64 << (r % 64));
    }

    /// Read bit `r`.
    pub fn get(&self, r: usize) -> bool {
        debug_assert!(r < self.rows);
        self.words[r / 64] & (1u64 << (r % 64)) != 0
    }

    /// `self &= other` (both masks must cover the same rows).
    pub fn and_assign(&mut self, other: &SelMask) {
        debug_assert_eq!(self.rows, other.rows);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (both masks must cover the same rows).
    pub fn or_assign(&mut self, other: &SelMask) {
        debug_assert_eq!(self.rows, other.rows);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// The mask as a `Vec<bool>` parallel to the chunk's rows — the shape
    /// [`ColumnChunk::filter`](pier_core::ColumnChunk::filter) consumes.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.rows).map(|r| self.get(r)).collect()
    }

    /// Overwrite from a `Vec<bool>`-shaped slice (used to absorb the
    /// fallback path's [`CompiledExpr::eval_column`](pier_core::CompiledExpr)
    /// output into the bitwise world).
    pub fn load_bools(&mut self, bools: &[bool]) {
        self.reset(bools.len(), false);
        for (r, b) in bools.iter().enumerate() {
            if *b {
                self.set(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_and_bounds() {
        let mut m = SelMask::new(70, false);
        assert_eq!(m.rows(), 70);
        assert_eq!(m.count(), 0);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(69);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(69));
        assert!(!m.get(1));
        assert_eq!(m.count(), 4);
        m.clear(63);
        assert!(!m.get(63));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn all_true_respects_the_tail_invariant() {
        let m = SelMask::new(70, true);
        assert_eq!(m.count(), 70, "no phantom bits past the row count");
        let e = SelMask::new(0, true);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn bitwise_combinators() {
        let mut a = SelMask::new(130, true);
        let mut b = SelMask::new(130, false);
        for r in (0..130).step_by(3) {
            b.set(r);
        }
        a.and_assign(&b);
        assert_eq!(a.count(), b.count());
        let mut c = SelMask::new(130, false);
        c.or_assign(&b);
        assert_eq!(c, b);
        assert!(!c.is_all_clear());
        assert!(SelMask::new(130, false).is_all_clear());
    }

    #[test]
    fn bool_round_trip() {
        let bools: Vec<bool> = (0..77).map(|r| r % 5 == 0 || r % 7 == 0).collect();
        let mut m = SelMask::new(1, true);
        m.load_bools(&bools);
        assert_eq!(m.to_bools(), bools);
        assert_eq!(m.count(), bools.iter().filter(|b| **b).count());
    }
}
