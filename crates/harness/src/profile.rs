//! The EXPLAIN ANALYZE driver: run a standing query with tracing on,
//! merge every node's span ring into one cluster-wide stream, and
//! reconcile the *measured* profile against the *static*
//! [`CostReport`](pier_analyze::CostReport) the planner produced before
//! the query ran.
//!
//! This is where the two halves of the observability story meet:
//! `pier-analyze` promises bounds ("no node will ship more than E entries
//! per flush"), `pier-trace` measures what actually happened, and
//! [`QueryProfileOutcome::violations`] is the contract check — an empty
//! list means every measured figure stayed under its static bound.

use crate::cluster::Cluster;
use crate::continuous::{continuous_netmon_observed, ContinuousNetmonConfig, ContinuousOutcome};
use pier_analyze::{analyze, CostReport, EnvModel};
use pier_core::{sqlish, TelemetryConfig, TraceConfig};
use pier_trace::{chrome_trace_json, OperatorStats, QueryProfile, StaticBounds};
use std::collections::BTreeMap;

/// Everything an EXPLAIN ANALYZE run produces.
#[derive(Debug)]
pub struct QueryProfileOutcome {
    /// The underlying workload result (windows, ground truth, telemetry).
    pub outcome: ContinuousOutcome,
    /// The measured profile assembled from the merged span stream.
    pub profile: QueryProfile,
    /// The static cost report the plan was admitted under.
    pub report: CostReport,
    /// The static bounds the measured profile was checked against.
    pub bounds: StaticBounds,
    /// Reconciliation failures (empty = measured ≤ static everywhere).
    pub violations: Vec<String>,
    /// The rendered `EXPLAIN ANALYZE` text: per-stage table, operator
    /// table, critical path, and the reconciliation verdict.
    pub explain: String,
    /// The merged all-nodes span export (JSONL, stably ordered).
    pub span_jsonl: String,
    /// The merged span stream as a Chrome `trace_event` JSON document.
    pub chrome_json: String,
    /// Sum of per-node trace/span ring drops (nonzero = incomplete export).
    pub trace_dropped: u64,
}

/// Aggregate every node's `op.<name>.{rows_in,rows_out,chunks_in}` pipeline
/// meters into per-operator totals — the operator rows/chunks section of
/// the profile.  Spans deliberately do not carry per-row operator work
/// (that would blow the ≤1% overhead budget); the meters already exist.
fn operator_stats(cluster: &Cluster) -> BTreeMap<String, OperatorStats> {
    let mut ops: BTreeMap<String, OperatorStats> = BTreeMap::new();
    for i in 0..cluster.len() {
        let Some(counters) = cluster.telemetry(cluster.addr(i)).and_then(|tel| {
            tel.with(|h| {
                h.counters()
                    .filter(|(name, _)| name.starts_with("op."))
                    .map(|(name, v)| (name.to_string(), v))
                    .collect::<Vec<_>>()
            })
        }) else {
            continue;
        };
        for (name, v) in counters {
            let Some(rest) = name.strip_prefix("op.") else {
                continue;
            };
            let Some((op, meter)) = rest.rsplit_once('.') else {
                continue;
            };
            let entry = ops.entry(op.to_string()).or_default();
            match meter {
                "rows_in" => entry.rows_in += v,
                "rows_out" => entry.rows_out += v,
                "chunks_in" => entry.chunks_in += v,
                _ => {}
            }
        }
    }
    ops
}

/// Lower the full [`CostReport`] onto the four figures spans can check.
fn bounds_of(report: &CostReport) -> StaticBounds {
    StaticBounds {
        rows_per_window_per_node: report.rows_per_window_per_node,
        entries_per_flush_per_node: report.entries_per_flush_per_node,
        root_fan_in: report.root_fan_in,
        state_bytes_per_node: report.state_bytes_per_node,
    }
}

/// Run the continuous netmon workload under `EXPLAIN ANALYZE`: tracing and
/// telemetry are forced on (sampling keeps every query so the profile is
/// complete), the query text gains the `EXPLAIN ANALYZE` prefix if it does
/// not already carry one, and the post-run cluster is mined for the merged
/// span stream, the operator meters and the reconciliation verdict.
pub fn explain_analyze_netmon(cfg: &ContinuousNetmonConfig) -> QueryProfileOutcome {
    let mut cfg = cfg.clone();
    if sqlish::strip_explain_analyze(&cfg.sql).is_none() {
        cfg.sql = format!("EXPLAIN ANALYZE {}", cfg.sql);
    }
    if !cfg.pier.telemetry.enabled {
        cfg.pier.telemetry = TelemetryConfig::enabled();
    }
    // A multi-window run records a few spans per node per slide; size the
    // ring so the export is complete rather than a sample.
    cfg.pier.telemetry.span_capacity = cfg.pier.telemetry.span_capacity.max(65_536);
    if !cfg.pier.trace.enabled() {
        cfg.pier.trace = TraceConfig::sample_all();
    }

    let (outcome, cluster) = continuous_netmon_observed(&cfg);

    let merged = cluster.merged_spans();
    let mut profile = QueryProfile::build(outcome.query_id, &merged);
    profile.operators = operator_stats(&cluster);

    // The static side: the same plan the proxy admitted, costed under the
    // environment the workload actually configured.
    let plan = sqlish::compile(&cfg.sql, cluster.addr(0), 1_000_000)
        .expect("profiled query compiled once already");
    let env = EnvModel {
        nodes: cfg.nodes as u64,
        events_per_node_per_sec: cfg.events_per_node_per_sec.max(1),
        ..EnvModel::default()
    };
    let report = analyze(&plan, &env);
    let bounds = bounds_of(&report);
    let violations = profile.reconcile(&bounds);

    let mut explain = profile.explain_analyze();
    explain.push_str(&format!(
        "  static bounds: rows/window/node={} entries/flush/node={} fan-in={} state-bytes/node={}\n",
        bounds.rows_per_window_per_node,
        bounds.entries_per_flush_per_node,
        bounds.root_fan_in,
        bounds.state_bytes_per_node
    ));
    if violations.is_empty() {
        explain.push_str("  reconciliation: OK (measured <= static everywhere)\n");
    } else {
        for v in &violations {
            explain.push_str(&format!("  reconciliation VIOLATION: {v}\n"));
        }
    }

    let span_jsonl = pier_trace::merged_span_jsonl(&merged);
    let chrome_json = chrome_trace_json(&merged);
    let trace_dropped = outcome.telemetry.trace_dropped;
    QueryProfileOutcome {
        outcome,
        profile,
        report,
        bounds,
        violations,
        explain,
        span_jsonl,
        chrome_json,
        trace_dropped,
    }
}
