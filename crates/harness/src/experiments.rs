//! Experiment drivers — one per paper figure/table plus the ablations listed
//! in `DESIGN.md`.  Each driver builds its workload, runs the simulated
//! deployment, and returns structured rows; the `pier-bench` benches print
//! them and `EXPERIMENTS.md` records representative output.

use crate::cluster::{Cluster, ClusterConfig};
use crate::workloads::{join_tables, FilesharingWorkload, FirewallWorkload};
use pier_core::{
    AggFunc, Dissemination, Expr, JoinSpec, OpGraph, OperatorSpec, PlanBuilder, SinkSpec,
    SourceSpec, Value,
};
use pier_gnutella::{random_overlay, GnutellaNode, SharedFile};
use pier_runtime::metrics::LatencyCdf;
use pier_runtime::{SimConfig, Simulator};

/// FIG1 — first-result latency CDFs for PIER (rare items) vs the Gnutella
/// flooding baseline (all queries, rare items), reproducing Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// CDF evaluation points, seconds.
    pub points: Vec<f64>,
    /// `(x, fraction of queries answered within x)` for PIER on rare queries.
    pub pier_rare: Vec<(f64, f64)>,
    /// Same for Gnutella over all queries.
    pub gnutella_all: Vec<(f64, f64)>,
    /// Same for Gnutella restricted to rare queries.
    pub gnutella_rare: Vec<(f64, f64)>,
    /// Fraction of rare queries that got no answer at all, PIER.
    pub pier_rare_no_answer: f64,
    /// Fraction of rare queries that got no answer at all, Gnutella.
    pub gnutella_rare_no_answer: f64,
}

/// Run the Figure-1 experiment.  `nodes` defaults to 50 in the paper.
pub fn fig1_filesharing(nodes: usize, files: usize, queries: usize, seed: u64) -> Fig1Result {
    let workload = FilesharingWorkload::generate(nodes, files, files / 6, 1.0, queries, 3, seed);
    let key_cols = vec!["keyword".to_string()];

    // --- PIER: publish the inverted index into the DHT, then answer each
    // rare query with an equality-index selection routed to the partition.
    let mut cluster = Cluster::start(&ClusterConfig::internet(nodes, seed));
    for (node, keyword, file) in &workload.publications {
        let tuple = FilesharingWorkload::tuple(keyword, file);
        let addr = cluster.addr(node % cluster.len());
        cluster.publish(addr, "files", &key_cols, tuple);
    }
    cluster.settle(10_000_000);
    let mut pier_rare = LatencyCdf::new();
    let mut pier_rare_issued = 0usize;
    let mut pier_rare_answered = 0usize;
    for (i, (keyword, rare)) in workload.queries.iter().enumerate() {
        if !rare {
            continue;
        }
        pier_rare_issued += 1;
        let proxy = cluster.addr(i % cluster.len());
        let plan = PlanBuilder::new(proxy)
            .dissemination(Dissemination::ByKey {
                namespace: "files".into(),
                key: Value::str(keyword).key_string(),
            })
            .timeout(15_000_000)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: "files".into(),
                },
                join: None,
                ops: vec![OperatorSpec::Selection(Expr::eq(
                    "keyword",
                    keyword.as_str(),
                ))],
                sink: SinkSpec::ToProxy,
            })
            .build();
        let outcome = cluster.run_query(proxy, plan);
        if let Some(latency) = outcome.first_result_latency_secs() {
            pier_rare.add(latency);
            pier_rare_answered += 1;
        }
    }

    // --- Gnutella baseline: same corpus shared on a random overlay, TTL-4
    // floods from the querying node.
    let overlay = random_overlay(nodes, 4, seed ^ 0xA11);
    let mut sim: Simulator<GnutellaNode> = Simulator::new(SimConfig::internet(seed ^ 0xA11));
    let mut libraries: Vec<Vec<SharedFile>> = vec![Vec::new(); nodes];
    for (fid, (node, keyword, _file)) in workload.publications.iter().enumerate() {
        libraries[node % nodes].push(SharedFile {
            file_id: fid as u64,
            keywords: vec![keyword.clone()],
        });
    }
    let mut addrs = Vec::new();
    for (neighbors, library) in overlay.into_iter().zip(libraries) {
        addrs.push(sim.add_node(GnutellaNode::new(neighbors, library)));
    }
    sim.run_until(1_000);
    let mut gnutella_all = LatencyCdf::new();
    let mut gnutella_rare = LatencyCdf::new();
    let mut gnutella_rare_issued = 0usize;
    let mut gnutella_rare_answered = 0usize;
    for (i, (keyword, rare)) in workload.queries.iter().enumerate() {
        let origin = addrs[i % addrs.len()];
        let submitted = sim.now();
        let _ = sim.drain_outputs();
        let kw = keyword.clone();
        sim.invoke(origin, move |node, ctx| {
            node.issue_query(ctx, vec![kw], 3);
        });
        sim.run_for(15_000_000);
        let first = sim
            .drain_outputs()
            .into_iter()
            .filter(|o| o.node == origin)
            .map(|o| o.time)
            .min();
        if *rare {
            gnutella_rare_issued += 1;
        }
        match first {
            Some(t) => {
                let latency = (t.saturating_sub(submitted)) as f64 / 1_000_000.0;
                gnutella_all.add(latency);
                if *rare {
                    gnutella_rare.add(latency);
                    gnutella_rare_answered += 1;
                }
            }
            None => {
                // No answer: contributes to the CDF never reaching 1.0.
            }
        }
    }

    let points: Vec<f64> = (0..=30).map(|i| i as f64 * 0.5).collect();
    let frac = |answered: usize, issued: usize| {
        if issued == 0 {
            0.0
        } else {
            1.0 - answered as f64 / issued as f64
        }
    };
    // Scale each CDF by its answer rate so "no answer" shows up as the curve
    // plateauing below 100%, as in the paper's figure.
    let scale = |cdf: &mut LatencyCdf, answered: usize, issued: usize| -> Vec<(f64, f64)> {
        let rate = if issued == 0 {
            0.0
        } else {
            answered as f64 / issued as f64
        };
        points
            .iter()
            .map(|&x| (x, cdf.fraction_at_most(x) * rate))
            .collect()
    };
    let mut gnutella_all_cdf = gnutella_all;
    let total_queries = workload.queries.len().max(1);
    let all_answered = gnutella_all_cdf.len();
    Fig1Result {
        points: points.clone(),
        pier_rare: scale(&mut pier_rare.clone(), pier_rare_answered, pier_rare_issued),
        gnutella_all: scale(&mut gnutella_all_cdf, all_answered, total_queries),
        gnutella_rare: scale(
            &mut gnutella_rare.clone(),
            gnutella_rare_answered,
            gnutella_rare_issued,
        ),
        pier_rare_no_answer: frac(pier_rare_answered, pier_rare_issued),
        gnutella_rare_no_answer: frac(gnutella_rare_answered, gnutella_rare_issued),
    }
}

/// FIG2 — the top-k sources of firewall events computed by a distributed
/// aggregation query, reproducing Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(source ip, count)` reported by the PIER query, descending.
    pub reported: Vec<(String, i64)>,
    /// Ground-truth top-k from the generated workload.
    pub ground_truth: Vec<(String, i64)>,
    /// How many of the reported sources are in the true top-k.
    pub overlap: usize,
}

/// Run the Figure-2 experiment.  The paper used 350 PlanetLab nodes.
pub fn fig2_netmon(nodes: usize, events: usize, k: usize, seed: u64) -> Fig2Result {
    let workload = FirewallWorkload::generate(nodes, events, 2_000, 1.2, seed);
    let mut cluster = Cluster::start(&ClusterConfig::internet(nodes, seed));
    for (node, src, port) in &workload.events {
        let addr = cluster.addr(node % cluster.len());
        cluster.add_local_row(addr, "events", FirewallWorkload::tuple(src, *port));
    }
    let proxy = cluster.addr(0);
    let plan = PlanBuilder::top_k_group_count(proxy, "events", "src", k, 25_000_000);
    let outcome = cluster.run_query(proxy, plan);
    let mut reported: Vec<(String, i64)> = outcome
        .tuples()
        .iter()
        .filter_map(|t| {
            Some((
                t.get("src")?.as_str()?.to_string(),
                t.get("count")?.as_i64()?,
            ))
        })
        .collect();
    reported.sort_by_key(|r| std::cmp::Reverse(r.1));
    reported.truncate(k);
    let ground_truth = workload.top_k(k);
    let truth_set: std::collections::HashSet<&str> =
        ground_truth.iter().map(|(s, _)| s.as_str()).collect();
    let overlap = reported
        .iter()
        .filter(|(s, _)| truth_set.contains(s.as_str()))
        .count();
    Fig2Result {
        reported,
        ground_truth,
        overlap,
    }
}

/// EXP-A — join strategy comparison: bytes shipped and result latency for a
/// rehash-based Symmetric Hash join versus a Fetch Matches index join.
#[derive(Debug, Clone)]
pub struct JoinStrategyResult {
    /// Strategy name.
    pub strategy: String,
    /// Result tuples delivered to the proxy.
    pub results: usize,
    /// Total bytes moved over the network during the query.
    pub bytes: u64,
    /// First-result latency, seconds (None when the join is empty).
    pub first_result_secs: Option<f64>,
}

/// Run EXP-A at the given scale.
pub fn join_strategies(nodes: usize, rows: usize, seed: u64) -> Vec<JoinStrategyResult> {
    let key = vec!["b".to_string()];
    let mut out = Vec::new();

    for strategy in ["symmetric-hash", "fetch-matches"] {
        let (r_rows, s_rows) = join_tables(nodes, rows, rows / 2, rows / 4, seed);
        let mut cluster = Cluster::start(&ClusterConfig::internet(nodes, seed));
        // Both relations are published into the DHT hashed on the join key,
        // i.e. each has a primary index on `b`.
        for (node, t) in r_rows.iter().chain(s_rows.iter()) {
            let addr = cluster.addr(node % cluster.len());
            cluster.publish(addr, t.table(), &key, t.clone());
        }
        cluster.settle(10_000_000);
        cluster.reset_stats();
        let proxy = cluster.addr(1);
        let plan = match strategy {
            "symmetric-hash" => {
                // Opgraph 0/1: rescan and rehash both relations into the
                // query's rendezvous namespace; opgraph 2: join as tuples
                // arrive (the DHT partition is the operator state).
                let ns = "q.join".to_string();
                PlanBuilder::new(proxy)
                    .timeout(25_000_000)
                    .opgraph(OpGraph {
                        id: 0,
                        source: SourceSpec::Table {
                            namespace: "r".into(),
                        },
                        join: None,
                        ops: vec![],
                        sink: SinkSpec::Rehash {
                            namespace: ns.clone(),
                            key_cols: key.clone(),
                        },
                    })
                    .opgraph(OpGraph {
                        id: 1,
                        source: SourceSpec::Table {
                            namespace: "s".into(),
                        },
                        join: None,
                        ops: vec![],
                        sink: SinkSpec::Rehash {
                            namespace: ns.clone(),
                            key_cols: key.clone(),
                        },
                    })
                    .opgraph(OpGraph {
                        id: 2,
                        source: SourceSpec::Table { namespace: ns },
                        join: Some(JoinSpec {
                            left_table: "r".into(),
                            right_table: "s".into(),
                            left_key: key.clone(),
                            right_key: key.clone(),
                            output_table: "r_s".into(),
                        }),
                        ops: vec![],
                        sink: SinkSpec::ToProxy,
                    })
                    .build()
            }
            _ => {
                // Fetch Matches: scan R, and for each tuple fetch the S
                // partition indexed by the same key (a distributed index
                // join; S is the "inner" relation, §3.3.3).
                PlanBuilder::new(proxy)
                    .timeout(25_000_000)
                    .opgraph(OpGraph {
                        id: 0,
                        source: SourceSpec::Table {
                            namespace: "r".into(),
                        },
                        join: None,
                        ops: vec![OperatorSpec::FetchMatches {
                            inner_namespace: "s".into(),
                            probe_col: "b".into(),
                            output_table: "r_s".into(),
                        }],
                        sink: SinkSpec::ToProxy,
                    })
                    .build()
            }
        };
        let outcome = cluster.run_query(proxy, plan);
        out.push(JoinStrategyResult {
            strategy: strategy.to_string(),
            results: outcome.results.len(),
            bytes: cluster.sim.stats().total_bytes,
            first_result_secs: outcome.first_result_latency_secs(),
        });
    }
    out
}

/// EXP-B — hierarchical vs flat aggregation: maximum per-node in-bandwidth
/// and bytes into the root.
#[derive(Debug, Clone)]
pub struct AggregationResult {
    /// Number of nodes.
    pub nodes: usize,
    /// "hierarchical" or "flat".
    pub mode: String,
    /// Maximum bytes received by any single node during the aggregation.
    pub max_in_bytes: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Number of groups reported.
    pub groups_reported: usize,
}

/// Run EXP-B for one network size.
pub fn hierarchical_aggregation(
    nodes: usize,
    events_per_node: usize,
    seed: u64,
) -> Vec<AggregationResult> {
    let mut out = Vec::new();
    for (mode, flat) in [("hierarchical", false), ("flat", true)] {
        let mut cluster = Cluster::start(&ClusterConfig::internet(nodes, seed));
        let workload = FirewallWorkload::generate(nodes, nodes * events_per_node, 500, 1.1, seed);
        for (node, src, port) in &workload.events {
            let addr = cluster.addr(node % cluster.len());
            cluster.add_local_row(addr, "events", FirewallWorkload::tuple(src, *port));
        }
        cluster.reset_stats();
        let proxy = cluster.addr(0);
        let plan = PlanBuilder::new(proxy)
            .timeout(25_000_000)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: "events".into(),
                },
                join: None,
                ops: vec![],
                sink: SinkSpec::HierarchicalAgg {
                    group_cols: vec!["src".into()],
                    aggs: vec![AggFunc::Count],
                    hold: 2_000_000,
                    final_ops: vec![],
                    flat,
                },
            })
            .build();
        let outcome = cluster.run_query(proxy, plan);
        out.push(AggregationResult {
            nodes,
            mode: mode.to_string(),
            max_in_bytes: cluster.sim.stats().max_in_bytes(),
            total_bytes: cluster.sim.stats().total_bytes,
            groups_reported: outcome.results.len(),
        });
    }
    out
}

/// EXP-C — query dissemination: nodes contacted and messages used by
/// broadcast vs equality-index routing.
#[derive(Debug, Clone)]
pub struct DisseminationResult {
    /// Number of nodes in the network.
    pub nodes: usize,
    /// "broadcast" or "equality-index".
    pub strategy: String,
    /// Messages sent while disseminating and answering the query.
    pub messages: u64,
    /// Result tuples returned (sanity check: both must answer correctly).
    pub results: usize,
}

/// Run EXP-C for one network size.
pub fn dissemination(nodes: usize, seed: u64) -> Vec<DisseminationResult> {
    let mut out = Vec::new();
    let key_cols = vec!["keyword".to_string()];
    for strategy in ["broadcast", "equality-index"] {
        let mut cluster = Cluster::start(&ClusterConfig::lan(nodes, seed));
        for i in 0..20 {
            let tuple = FilesharingWorkload::tuple("needle", &format!("file-{i}"));
            let addr = cluster.addr(i % cluster.len());
            cluster.publish(addr, "files", &key_cols, tuple);
        }
        cluster.settle(5_000_000);
        cluster.reset_stats();
        let proxy = cluster.addr(2);
        let dissemination = if strategy == "broadcast" {
            Dissemination::Broadcast
        } else {
            Dissemination::ByKey {
                namespace: "files".into(),
                key: Value::Str("needle".into()).key_string(),
            }
        };
        let plan = PlanBuilder::new(proxy)
            .dissemination(dissemination)
            .timeout(10_000_000)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: "files".into(),
                },
                join: None,
                ops: vec![OperatorSpec::Selection(Expr::eq("keyword", "needle"))],
                sink: SinkSpec::ToProxy,
            })
            .build();
        let outcome = cluster.run_query(proxy, plan);
        out.push(DisseminationResult {
            nodes,
            strategy: strategy.to_string(),
            messages: cluster.sim.stats().total_msgs,
            results: outcome.results.len(),
        });
    }
    out
}

/// EXP-D — DHT routing scalability: mean lookup hop count vs network size.
#[derive(Debug, Clone)]
pub struct ScalabilityResult {
    /// Network size.
    pub nodes: usize,
    /// Mean overlay hops per lookup.
    pub mean_hops: f64,
    /// 95th-percentile hops.
    pub p95_hops: f64,
}

/// Run EXP-D for one network size using the DHT directly (no query layer).
pub fn dht_scalability(nodes: usize, lookups: usize, seed: u64) -> ScalabilityResult {
    use pier_dht::{make_ring_refs, DhtNode, OverlayConfig, OverlayEvent};
    let refs = make_ring_refs(nodes, seed);
    let mut sim: Simulator<DhtNode<String>> = Simulator::new(SimConfig::lan(seed));
    for r in &refs {
        sim.add_node(DhtNode::with_static_ring(
            *r,
            &refs,
            OverlayConfig::default(),
        ));
    }
    sim.run_until(1_000);
    let mut rng = pier_runtime::Rng64::new(seed ^ 0x5ca1e);
    for _ in 0..lookups {
        let issuer = refs[rng.index(nodes)].addr;
        let target = pier_dht::Id(rng.next_u64());
        sim.invoke(issuer, move |node, ctx| {
            let now = ctx.now();
            let (_rid, effects) = node.overlay_mut().lookup(target, now);
            node.apply(ctx, effects);
        });
    }
    sim.run_for(30_000_000);
    let mut cdf = LatencyCdf::new();
    for r in &refs {
        for e in &sim.node(r.addr).unwrap().events {
            if let OverlayEvent::LookupDone { hops, .. } = e {
                cdf.add(*hops as f64);
            }
        }
    }
    ScalabilityResult {
        nodes,
        mean_hops: cdf.mean(),
        p95_hops: cdf.percentile(95.0).unwrap_or(0.0),
    }
}

/// EXP-E — churn: query recall as a function of the fraction of failed nodes.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Fraction of nodes failed before the query ran.
    pub failed_fraction: f64,
    /// Fraction of the published rows the query still returned.
    pub recall: f64,
}

/// Run EXP-E: publish rows, fail a fraction of the network, re-query.
pub fn churn(nodes: usize, rows: usize, failed_fraction: f64, seed: u64) -> ChurnResult {
    let key_cols = vec!["keyword".to_string()];
    let mut cluster = Cluster::start(&ClusterConfig::lan(nodes, seed));
    for i in 0..rows {
        let tuple = FilesharingWorkload::tuple("needle", &format!("file-{i}"));
        let addr = cluster.addr(i % cluster.len());
        cluster.publish(addr, "files", &key_cols, tuple);
    }
    cluster.settle(5_000_000);
    let failed = ((nodes as f64) * failed_fraction).round() as usize;
    // Never fail the proxy (the last node) so the query can still be issued.
    for i in 0..failed.min(nodes - 1) {
        let addr = cluster.addr(i);
        let now = cluster.sim.now();
        cluster.sim.fail_node_at(addr, now);
    }
    // Give the overlay time to detect the failures (liveness timeout), route
    // around them, and re-form the distribution tree under the new root, as
    // the soft-state design intends; the query then measures data loss.
    cluster.settle(60_000_000);
    let proxy = cluster.addr(nodes - 1);
    let plan = PlanBuilder::select(
        proxy,
        "files",
        Expr::eq("keyword", "needle"),
        vec!["file".to_string()],
        15_000_000,
    );
    let outcome = cluster.run_query(proxy, plan);
    ChurnResult {
        failed_fraction,
        recall: outcome.results.len() as f64 / rows as f64,
    }
}

/// EXP-F — congestion models: completion latency of the Figure-2 query under
/// the three congestion models of the simulator.
#[derive(Debug, Clone)]
pub struct CongestionResult {
    /// Congestion model name.
    pub model: String,
    /// Latency (seconds) of the last result to arrive.
    pub last_result_secs: f64,
    /// Number of grouped results delivered.
    pub results: usize,
}

/// Run EXP-F at a fixed scale.
pub fn congestion_models(nodes: usize, events: usize, seed: u64) -> Vec<CongestionResult> {
    use pier_runtime::sim::CongestionKind;
    let mut out = Vec::new();
    for (name, kind) in [
        ("none", CongestionKind::None),
        ("fifo", CongestionKind::Fifo),
        ("fair-queue", CongestionKind::FairQueue),
    ] {
        let mut config = ClusterConfig::internet(nodes, seed);
        config.congestion = kind;
        let mut cluster = Cluster::start(&config);
        let workload = FirewallWorkload::generate(nodes, events, 500, 1.2, seed);
        for (node, src, port) in &workload.events {
            let addr = cluster.addr(node % cluster.len());
            cluster.add_local_row(addr, "events", FirewallWorkload::tuple(src, *port));
        }
        let proxy = cluster.addr(0);
        let plan = PlanBuilder::top_k_group_count(proxy, "events", "src", 10, 25_000_000);
        let outcome = cluster.run_query(proxy, plan);
        let last = outcome
            .results
            .iter()
            .map(|(t, _)| (*t - outcome.submitted_at) as f64 / 1_000_000.0)
            .fold(0.0f64, f64::max);
        out.push(CongestionResult {
            model: name.to_string(),
            last_result_secs: last,
            results: outcome.results.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_small_scale_finds_the_heavy_hitters() {
        let r = fig2_netmon(20, 2_000, 5, 3);
        assert_eq!(r.ground_truth.len(), 5);
        assert!(!r.reported.is_empty(), "query must report sources");
        assert!(
            r.overlap >= 3,
            "top sources must largely match ground truth: {:?} vs {:?}",
            r.reported,
            r.ground_truth
        );
    }

    #[test]
    fn dissemination_equality_index_uses_fewer_messages() {
        let rows = dissemination(24, 11);
        let broadcast = rows.iter().find(|r| r.strategy == "broadcast").unwrap();
        let equality = rows
            .iter()
            .find(|r| r.strategy == "equality-index")
            .unwrap();
        assert_eq!(broadcast.results, 20);
        assert_eq!(equality.results, 20);
        assert!(
            equality.messages < broadcast.messages,
            "equality routing ({}) must use fewer messages than broadcast ({})",
            equality.messages,
            broadcast.messages
        );
    }

    #[test]
    fn dht_scalability_hops_grow_slowly() {
        let small = dht_scalability(16, 60, 5);
        let large = dht_scalability(128, 60, 5);
        assert!(small.mean_hops >= 0.5);
        assert!(large.mean_hops > small.mean_hops);
        // Logarithmic growth: 8x the nodes should not cost 8x the hops.
        assert!(large.mean_hops < small.mean_hops * 4.0);
    }

    #[test]
    fn churn_degrades_recall_gracefully() {
        let healthy = churn(20, 40, 0.0, 9);
        let degraded = churn(20, 40, 0.25, 9);
        assert!(healthy.recall > 0.95, "healthy recall {}", healthy.recall);
        assert!(degraded.recall <= healthy.recall);
        assert!(
            degraded.recall > 0.3,
            "recall should degrade gracefully, got {}",
            degraded.recall
        );
    }
}
