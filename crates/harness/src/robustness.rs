//! EXP-I — result fidelity under an adversary, with and without the
//! redundancy defenses of §4.1.2.
//!
//! This is the study the paper describes as in progress: "we are studying
//! the benefits offered by different dissemination and aggregation
//! topologies in minimizing the influence of an adversary on the computed
//! result.  Specifically, we examine the change in simple metrics such as
//! the fraction of data sources suppressed by the adversary and relative
//! result error."
//!
//! The membership is a set of overlay identifiers (the aggregators are the
//! same nodes that hold the data, as in PIER's in-network aggregation);
//! each member contributes one partial COUNT; the adversary compromises a
//! growing fraction of the membership and suppresses (or poisons) whatever
//! passes through the nodes it controls; and four strategies are compared —
//! the undefended single tree, k redundant trees combined exactly, k
//! redundant trees combined with duplicate-insensitive sketches, and a
//! multi-parent DAG with sketches.  A second driver measures the
//! spot-checking defense: how often sampled verification catches an
//! aggregator that suppressed part of its inputs.

use pier_runtime::Rng64;
use pier_security::adversary::{compare_defenses, Adversary, AdversaryConfig, Malice};
use pier_security::spot_check::{CheckOutcome, Commitment, SpotChecker};
use pier_security::FidelityReport;
use std::collections::BTreeSet;

/// One row of the EXP-I fidelity sweep.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Number of members (data sources / aggregators).
    pub members: usize,
    /// Fraction of members the adversary controls.
    pub compromised_fraction: f64,
    /// The defense strategy evaluated.
    pub strategy: String,
    /// Fraction of honest sources whose contribution never reached the root.
    pub suppressed_fraction: f64,
    /// |estimate − truth| / truth.
    pub relative_error: f64,
    /// Aggregation traffic in bytes.
    pub bytes_shipped: u64,
}

/// Run the fidelity sweep for one membership size over the given compromised
/// fractions.  Each member contributes `value_per_member` units (a COUNT of
/// its local rows).
///
/// Because a DHT aggregation tree concentrates most sources under a handful
/// of near-root relays (the in-bandwidth hot spot of §3.3.4), a *single*
/// adversary draw is close to all-or-nothing: either a chokepoint was
/// compromised or it was not.  The sweep therefore averages `trials`
/// independent adversary draws per fraction, reporting the expected
/// suppressed fraction and relative error — the quantity a deployment
/// actually cares about.
pub fn fidelity_sweep(
    members: usize,
    value_per_member: u64,
    fractions: &[f64],
    malice: Malice,
    trials: usize,
    seed: u64,
) -> Vec<RobustnessResult> {
    let mut rng = Rng64::new(seed ^ 0x0B57);
    let ids: Vec<u64> = (0..members).map(|_| rng.next_u64()).collect();
    let values: Vec<(u64, u64)> = ids.iter().map(|id| (*id, value_per_member)).collect();
    let trials = trials.max(1);
    let mut out = Vec::new();
    for &fraction in fractions {
        // strategy → (suppressed sum, error sum, bytes sum)
        let mut accum: Vec<(String, f64, f64, u64)> = Vec::new();
        for trial in 0..trials {
            let adversary = Adversary::new(
                &ids,
                AdversaryConfig {
                    compromised_fraction: fraction,
                    malice,
                    seed: seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                },
            );
            let reports: Vec<FidelityReport> =
                compare_defenses(&ids, &values, &adversary, 3, 2, seed);
            for (i, r) in reports.into_iter().enumerate() {
                if accum.len() <= i {
                    accum.push((r.strategy.clone(), 0.0, 0.0, 0));
                }
                accum[i].1 += r.suppressed_fraction;
                accum[i].2 += r.relative_error;
                accum[i].3 += r.bytes_shipped;
            }
        }
        for (strategy, supp, err, bytes) in accum {
            out.push(RobustnessResult {
                members,
                compromised_fraction: fraction,
                strategy,
                suppressed_fraction: supp / trials as f64,
                relative_error: err / trials as f64,
                bytes_shipped: bytes / trials as u64,
            });
        }
    }
    out
}

/// One row of the spot-checking driver.
#[derive(Debug, Clone)]
pub struct SpotCheckResult {
    /// Fraction of its inputs the cheating aggregator suppressed.
    pub suppressed_fraction: f64,
    /// Spot-check sample size.
    pub sample_size: usize,
    /// Fraction of trials in which the cheat was detected.
    pub detection_rate: f64,
    /// Detection probability predicted analytically (1 − (1−f)^s).
    pub predicted_rate: f64,
}

/// Measure how often spot-checking catches an aggregator that drops a
/// fraction of its inputs before committing, for several sample sizes.
pub fn spot_check_detection(
    sources: usize,
    suppressed_fraction: f64,
    sample_sizes: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<SpotCheckResult> {
    let mut rng = Rng64::new(seed ^ 0x5C0);
    let data: Vec<(u64, i64)> = (0..sources as u64)
        .map(|i| (i + 1, (i as i64 % 9) + 1))
        .collect();
    let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
    let drop_count = ((sources as f64) * suppressed_fraction).round() as usize;
    let mut out = Vec::new();
    for &sample_size in sample_sizes {
        let mut detected = 0usize;
        for _ in 0..trials {
            // The cheater drops a random subset of its inputs, then commits.
            let mut kept = data.clone();
            rng.shuffle(&mut kept);
            let kept: Vec<(u64, i64)> = kept.into_iter().skip(drop_count).collect();
            let (commitment, tree) = Commitment::honest(1, &kept);
            let checker = SpotChecker::new(sample_size, rng.next_u64());
            match checker.check(&commitment, &tree, &data, &legitimate) {
                CheckOutcome::Consistent => {}
                _ => detected += 1,
            }
        }
        let predicted = 1.0 - (1.0 - suppressed_fraction).powi(sample_size as i32);
        out.push(SpotCheckResult {
            suppressed_fraction,
            sample_size,
            detection_rate: detected as f64 / trials as f64,
            predicted_rate: predicted,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefended_error_grows_with_the_adversary_and_redundancy_helps() {
        let rows = fidelity_sweep(120, 10, &[0.0, 0.3], Malice::Suppress, 8, 9);
        let err = |fraction: f64, strategy: &str| {
            rows.iter()
                .find(|r| r.compromised_fraction == fraction && r.strategy == strategy)
                .unwrap()
                .relative_error
        };
        // With no adversary the exact strategies are exact.
        assert_eq!(err(0.0, "single-tree/exact"), 0.0);
        // With 30 % compromised, the undefended tree loses a noticeable
        // fraction on average and redundant trees lose no more than it.
        let undefended = err(0.3, "single-tree/exact");
        let defended = err(0.3, "3-trees/exact-max");
        assert!(undefended > 0.0, "suppression must cost something");
        assert!(defended <= undefended + 1e-9);
    }

    #[test]
    fn sweep_produces_one_row_per_strategy_per_fraction() {
        let rows = fidelity_sweep(60, 5, &[0.0, 0.1, 0.2], Malice::Suppress, 2, 4);
        assert_eq!(rows.len(), 3 * 4);
    }

    #[test]
    fn spot_check_detection_tracks_the_analytic_rate() {
        let rows = spot_check_detection(100, 0.2, &[1, 5, 20], 60, 3);
        assert_eq!(rows.len(), 3);
        // More samples → better detection.
        assert!(rows[2].detection_rate >= rows[0].detection_rate);
        // With 20 samples and 20 % suppression, detection should be nearly
        // certain (predicted ≈ 0.99).
        assert!(rows[2].detection_rate > 0.9, "{rows:?}");
        // The measured rate should be in the same ballpark as the analytic
        // prediction.
        for r in &rows {
            assert!((r.detection_rate - r.predicted_rate).abs() < 0.25, "{r:?}");
        }
    }
}
