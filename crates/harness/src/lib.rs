//! # pier-harness — clusters, workloads and experiment drivers
//!
//! Everything needed to regenerate the paper's figures and the ablation
//! experiments listed in `DESIGN.md`:
//!
//! * [`cluster`] — boot a network of [`pier_core::PierNode`]s over the
//!   discrete-event simulator, publish tables, submit queries and collect
//!   results.
//! * [`workloads`] — synthetic workload generators: a Zipf-popularity
//!   file-sharing corpus with a rare-keyword subset (Figure 1), a
//!   heavy-tailed firewall-event log (Figure 2), and generic relational
//!   tables for the join ablations.
//! * [`experiments`] — one driver per figure/table; each returns structured
//!   rows that the `pier-bench` benches print and that `EXPERIMENTS.md`
//!   records.
//! * [`indexes`] — the range-index (EXP-G) and secondary-index (EXP-J)
//!   dissemination ablations of §3.3.3.
//! * [`continuous`] — the continuous-query netmon workload (`pier-cq`):
//!   a standing sqlish windowed aggregate over a live packet stream, with
//!   optional churn, measuring sustained throughput, per-window latency and
//!   per-node state bounds.
//! * [`tenants`] — the `many_tenants` workload (`pier-mqo`): 64–256
//!   constant-varied monitoring queries over one packet stream, run shared
//!   (share groups + predicate index) or independent, with optional
//!   mid-stream install/uninstall and node churn — the multi-query sharing
//!   equivalence and throughput driver.
//! * [`self_monitoring()`] — the telemetry dogfood workload: every node
//!   publishes its metrics hub into the `system.metrics` DHT namespace and
//!   standing sqlish queries monitor the cluster through PIER itself.
//! * [`chaos`] — the robustness gauntlet: continuous netmon plus shared
//!   mqo tenants driven through seeded loss, partition and restart-storm
//!   phases ([`pier_runtime::sim::FaultPlan`]), measuring bounded result
//!   error, post-heal recovery time and warm restarts from durable window
//!   segments.
//! * [`profile`] — the EXPLAIN ANALYZE driver: continuous netmon with
//!   tracing forced on, every node's span ring merged into one stably
//!   ordered stream, and the measured profile reconciled against the
//!   static `pier-analyze` cost bounds (measured ≤ static asserted).
//! * [`adaptivity`] — the eddy routing-policy ablation (EXP-H, §4.2.2).
//! * [`robustness`] — adversary fidelity and spot-checking studies
//!   (EXP-I, §4.1.2), built on `pier-security`.
//! * [`recursion`] — distributed reachability by rounds of index joins
//!   (EXP-K, §3.3.2).

pub mod adaptivity;
pub mod chaos;
pub mod cluster;
pub mod continuous;
pub mod experiments;
pub mod indexes;
pub mod profile;
pub mod recursion;
pub mod robustness;
pub mod self_monitoring;
pub mod tenants;
pub mod workloads;

pub use chaos::{run_chaos, ChaosConfig, ChaosOutcome, ChaosSpans};
pub use cluster::{Cluster, ClusterConfig, ClusterTelemetrySummary, QueryOutcome};
pub use continuous::{
    continuous_netmon, continuous_netmon_observed, ContinuousNetmonConfig, ContinuousOutcome,
};
pub use profile::{explain_analyze_netmon, QueryProfileOutcome};
pub use self_monitoring::{
    self_monitoring, MetricWindow, SelfMonitoringConfig, SelfMonitoringOutcome,
};
pub use tenants::{
    many_tenants, AdmissionOutcome, ManyTenantsConfig, ManyTenantsOutcome, TenantResult,
};
pub use workloads::{FilesharingWorkload, FirewallWorkload};
