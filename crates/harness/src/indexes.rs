//! Distributed-index experiments: the range index (EXP-G) and secondary
//! indexes (EXP-J).
//!
//! §3.3.3 describes three distributed indexes — the broadcast tree, the
//! equality index (the DHT itself) and the PHT range index — plus secondary
//! indexes built as `(index-key, tupleID)` tables.  The existing EXP-C
//! ablation covers broadcast vs equality; these drivers cover the remaining
//! two:
//!
//! * **EXP-G** — a range query answered by broadcasting to every node vs by
//!   disseminating only to the range-index buckets overlapping the
//!   predicate.  Both must return the same rows; the interesting metrics are
//!   messages and the number of nodes contacted.
//! * **EXP-J** — an equality lookup on a *non*-partitioning column answered
//!   by broadcasting a selection over the base table vs by the secondary
//!   index semi-join (index partition → Fetch Matches into the base table).

use crate::cluster::{Cluster, ClusterConfig};
use pier_core::{
    range_index::range_scan_plan, secondary_index, Expr, OpGraph, OperatorSpec, PlanBuilder,
    RangeIndexConfig, SinkSpec, SourceSpec, Tuple, Value,
};
use pier_runtime::Rng64;

/// One row of the EXP-G output.
#[derive(Debug, Clone)]
pub struct RangeDisseminationResult {
    /// Network size.
    pub nodes: usize,
    /// Fraction of the key domain the query's range covers.
    pub range_fraction: f64,
    /// "broadcast" or "range-index".
    pub strategy: String,
    /// Range-index buckets the query was shipped to (0 for broadcast).
    pub buckets: usize,
    /// Query-related messages: total observed during the query window minus
    /// the overlay's background maintenance traffic over an idle window of
    /// the same length.
    pub messages: u64,
    /// Nodes that had the opgraph installed just before the timeout.
    pub nodes_running_query: usize,
    /// Result rows returned.
    pub results: usize,
}

/// Run EXP-G: a range scan over a `readings(sensor, temp)` table published
/// through the range index, answered with and without range dissemination.
pub fn range_dissemination(
    nodes: usize,
    rows: usize,
    range_fraction: f64,
    seed: u64,
) -> Vec<RangeDisseminationResult> {
    let config = RangeIndexConfig::new(6, 16);
    let domain = 1u64 << config.domain_bits;
    let lo = (domain as f64 * 0.30) as i64;
    let hi = lo + (domain as f64 * range_fraction) as i64;
    let mut out = Vec::new();
    for strategy in ["broadcast", "range-index"] {
        let mut cluster = Cluster::start(&ClusterConfig::lan(nodes, seed));
        let mut rng = Rng64::new(seed ^ 0x6A17);
        for i in 0..rows {
            let temp = (rng.next_below(domain)) as i64;
            let tuple = Tuple::new(
                "readings",
                vec![
                    ("sensor", Value::Str(format!("sensor-{i}").into())),
                    ("temp", Value::Int(temp)),
                ],
            );
            let from = cluster.addr(i % cluster.len());
            cluster.publish_range_indexed(from, "readings", "temp", config, tuple);
        }
        cluster.settle(5_000_000);
        let baseline = cluster.idle_baseline_msgs(13_000_000);
        let proxy = cluster.addr(1);
        let plan = if strategy == "range-index" {
            range_scan_plan(
                proxy,
                "readings",
                "temp",
                lo,
                hi,
                config,
                vec!["sensor".into(), "temp".into()],
                10_000_000,
            )
        } else {
            PlanBuilder::select(
                proxy,
                "readings",
                Expr::all(vec![
                    Expr::cmp(pier_core::CmpOp::Ge, Expr::col("temp"), Expr::lit(lo)),
                    Expr::cmp(pier_core::CmpOp::Le, Expr::col("temp"), Expr::lit(hi)),
                ]),
                vec!["sensor".into(), "temp".into()],
                10_000_000,
            )
        };
        let buckets = match &plan.dissemination {
            pier_core::Dissemination::ByRange { bucket_keys, .. } => bucket_keys.len(),
            _ => 0,
        };
        let (outcome, installed) = cluster.run_query_observed(proxy, plan);
        out.push(RangeDisseminationResult {
            nodes,
            range_fraction,
            strategy: strategy.to_string(),
            buckets,
            messages: cluster.sim.stats().total_msgs.saturating_sub(baseline),
            nodes_running_query: installed,
            results: outcome.results.len(),
        });
    }
    out
}

/// One row of the EXP-J output.
#[derive(Debug, Clone)]
pub struct SecondaryIndexResult {
    /// Network size.
    pub nodes: usize,
    /// "broadcast-scan" or "secondary-index".
    pub strategy: String,
    /// Query-related messages (maintenance baseline subtracted).
    pub messages: u64,
    /// Nodes that had the opgraph installed just before the timeout.
    pub nodes_running_query: usize,
    /// Result rows returned.
    pub results: usize,
}

/// Run EXP-J: look up the files tagged with one keyword when the `files`
/// table is partitioned by file name, either by broadcasting the selection
/// or through the secondary index on `keyword`.
pub fn secondary_index_lookup(
    nodes: usize,
    files: usize,
    matching: usize,
    seed: u64,
) -> Vec<SecondaryIndexResult> {
    let key_cols = vec!["file".to_string()];
    let index_cols = vec!["keyword".to_string()];
    let mut out = Vec::new();
    for strategy in ["broadcast-scan", "secondary-index"] {
        let mut cluster = Cluster::start(&ClusterConfig::lan(nodes, seed));
        for i in 0..files {
            let keyword = if i < matching {
                "needle".to_string()
            } else {
                format!("kw-{}", i % 37)
            };
            let tuple = Tuple::new(
                "files",
                vec![
                    ("file", Value::Str(format!("file-{i}.dat").into())),
                    ("keyword", Value::Str(keyword.into())),
                    ("size", Value::Int((i as i64 % 900) + 100)),
                ],
            );
            let from = cluster.addr(i % cluster.len());
            cluster.publish_with_secondary_indexes(from, "files", &key_cols, &index_cols, tuple);
        }
        cluster.settle(5_000_000);
        let baseline = cluster.idle_baseline_msgs(13_000_000);
        let proxy = cluster.addr(3);
        let plan = if strategy == "secondary-index" {
            secondary_index::lookup_plan(
                proxy,
                "files",
                "keyword",
                Value::Str("needle".into()),
                10_000_000,
            )
        } else {
            PlanBuilder::new(proxy)
                .timeout(10_000_000)
                .opgraph(OpGraph {
                    id: 0,
                    source: SourceSpec::Table {
                        namespace: "files".into(),
                    },
                    join: None,
                    ops: vec![OperatorSpec::Selection(Expr::eq("keyword", "needle"))],
                    sink: SinkSpec::ToProxy,
                })
                .build()
        };
        let (outcome, installed) = cluster.run_query_observed(proxy, plan);
        out.push(SecondaryIndexResult {
            nodes,
            strategy: strategy.to_string(),
            messages: cluster.sim.stats().total_msgs.saturating_sub(baseline),
            nodes_running_query: installed,
            results: outcome.results.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_agree_on_the_answer() {
        let rows = range_dissemination(16, 60, 0.10, 11);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].results, rows[1].results,
            "broadcast and range dissemination must return the same rows: {rows:?}"
        );
        assert!(rows[1].buckets >= 1);
        assert!(rows[0].results > 0, "the range should select something");
    }

    #[test]
    fn secondary_index_finds_every_matching_file() {
        let rows = secondary_index_lookup(16, 40, 6, 5);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].results, 6, "broadcast scan finds the 6 needles");
        assert_eq!(rows[1].results, 6, "secondary index finds the 6 needles");
    }
}
