//! The `self_monitoring` workload: PIER watching PIER.
//!
//! The dogfood loop of the telemetry layer: every node runs with
//! telemetry enabled and a publish interval, so each node periodically
//! materialises its hub as a tuple into the `system.metrics` DHT namespace
//! (node label, receive counters, DHT lookup latency percentiles, owner
//! cache hit/miss).  Two standing `sqlish` queries over that namespace —
//! installed everywhere by broadcast dissemination, exactly like any user
//! query — then monitor the cluster *through PIER itself*:
//!
//! ```sql
//! SELECT node, MAX(bytes_recv)     FROM system.metrics
//!     GROUP BY node WINDOW 4s SLIDE 2s EVERY 5s
//! SELECT node, MAX(lookup_p99_us) FROM system.metrics
//!     GROUP BY node WINDOW 4s SLIDE 2s EVERY 5s
//! ```
//!
//! A background packet stream keeps the DHT busy so the monitored metrics
//! move.  The driver collects both queries' per-window result streams at
//! the proxy and exports one node's structured event trace as JSONL — the
//! artifact the CI schema check validates — plus the merged, stably
//! ordered all-nodes trace and span exports (`pier-trace`'s merger).

use crate::cluster::{Cluster, ClusterConfig};
use pier_core::{sqlish, PierConfig, PierOut, TelemetryConfig, Tuple, Value};
use pier_runtime::{NodeAddr, Rng64, SimTime};
use std::collections::BTreeMap;

/// Configuration of a self-monitoring run.
#[derive(Debug, Clone)]
pub struct SelfMonitoringConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Determinism seed.
    pub seed: u64,
    /// How long the monitored stream runs (virtual seconds).
    pub run_secs: u64,
    /// How often each node publishes its hub into `system.metrics`
    /// (microseconds of virtual time).
    pub publish_interval: u64,
    /// Background packets published per node per virtual second (the DHT
    /// traffic the standing queries observe).
    pub events_per_node_per_sec: u64,
    /// Per-node configuration (the driver enables telemetry on it).
    pub pier: PierConfig,
}

impl SelfMonitoringConfig {
    /// A standard run: publish every virtual second, light packet stream.
    pub fn new(nodes: usize, run_secs: u64, seed: u64) -> Self {
        SelfMonitoringConfig {
            nodes,
            seed,
            run_secs,
            publish_interval: 1_000_000,
            events_per_node_per_sec: 4,
            pier: PierConfig::default(),
        }
    }
}

/// One emitted window of a monitoring query: per-node label → MAX value.
#[derive(Debug, Clone)]
pub struct MetricWindow {
    /// Window bounds (virtual time, inclusive/exclusive).
    pub window: (SimTime, SimTime),
    /// Node label (`n<addr>`) → the window's MAX of the monitored metric.
    pub per_node: BTreeMap<String, f64>,
}

/// Result of a self-monitoring run.
#[derive(Debug)]
pub struct SelfMonitoringOutcome {
    /// Per-window `MAX(bytes_recv)` per node, in window order.
    pub bytes_recv: Vec<MetricWindow>,
    /// Per-window `MAX(lookup_p99_us)` per node, in window order.
    pub lookup_p99: Vec<MetricWindow>,
    /// `telemetry.publishes` summed over all nodes (metrics tuples shipped
    /// into the DHT).
    pub publishes: u64,
    /// Node 0's structured event trace as JSONL (one event per line).
    pub trace_jsonl: String,
    /// Every node's event trace merged under the `(time, node, ordinal)`
    /// total order — the cluster-wide form of [`Self::trace_jsonl`]
    /// (each line gains a leading `"node"` key).
    pub merged_trace_jsonl: String,
    /// Every node's span ring merged the same way (empty when the run had
    /// tracing off — the default).
    pub merged_span_jsonl: String,
    /// Sum over nodes of trace/span ring drops; nonzero means the merged
    /// exports are incomplete.
    pub trace_dropped: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Background packet rows published during the run.
    pub events: u64,
}

impl SelfMonitoringOutcome {
    /// Most nodes observed in any single `bytes_recv` window — the
    /// liveness measure the workload asserts on (every node publishes, so
    /// a healthy run sees them all).
    pub fn nodes_reporting(&self) -> usize {
        self.bytes_recv
            .iter()
            .map(|w| w.per_node.len())
            .max()
            .unwrap_or(0)
    }

    /// Largest per-node `MAX(bytes_recv)` seen in any window.
    pub fn peak_bytes_recv(&self) -> f64 {
        self.bytes_recv
            .iter()
            .flat_map(|w| w.per_node.values().copied())
            .fold(0.0, f64::max)
    }

    /// Largest per-node `MAX(lookup_p99_us)` seen in any window.
    pub fn peak_lookup_p99(&self) -> f64 {
        self.lookup_p99
            .iter()
            .flat_map(|w| w.per_node.values().copied())
            .fold(0.0, f64::max)
    }
}

/// Fold one query's `WindowResult` stream into ordered [`MetricWindow`]s.
fn collect_windows(
    outputs: &[(SimTime, NodeAddr, PierOut)],
    proxy: NodeAddr,
    query_id: u64,
    value_col: &str,
) -> Vec<MetricWindow> {
    let mut by_window: BTreeMap<(SimTime, SimTime), BTreeMap<String, f64>> = BTreeMap::new();
    for (_, node, out) in outputs {
        let PierOut::WindowResult {
            query_id: qid,
            window_start,
            window_end,
            retract,
            tuple,
        } = out
        else {
            continue;
        };
        if *qid != query_id || *node != proxy {
            continue;
        }
        let entry = by_window.entry((*window_start, *window_end)).or_default();
        let Some(label) = tuple.get("node").and_then(Value::as_str) else {
            continue;
        };
        if *retract {
            entry.remove(label);
            continue;
        }
        let value = tuple
            .get(value_col)
            .and_then(|v| v.as_f64().or_else(|| v.as_i64().map(|i| i as f64)))
            .unwrap_or(0.0);
        entry.insert(label.to_string(), value);
    }
    by_window
        .into_iter()
        .map(|(window, per_node)| MetricWindow { window, per_node })
        .collect()
}

/// Run the self-monitoring workload.
pub fn self_monitoring(cfg: &SelfMonitoringConfig) -> SelfMonitoringOutcome {
    let mut cluster_cfg = ClusterConfig::lan(cfg.nodes, cfg.seed);
    cluster_cfg.pier = cfg.pier.clone();
    cluster_cfg.pier.telemetry = TelemetryConfig::publishing(cfg.publish_interval);
    let mut cluster = Cluster::start(&cluster_cfg);
    let _ = cluster.sim.drain_outputs();

    // Install the two standing monitoring queries at node 0's proxy.
    let proxy = cluster.addr(0);
    let run_micros = cfg.run_secs * 1_000_000;
    let timeout = run_micros + 30_000_000;
    let mut submit = |sql: &str| -> u64 {
        let plan = sqlish::compile(sql, proxy, timeout).expect("monitoring query compiles");
        let mut query_id = 0u64;
        cluster.sim.invoke(proxy, |node, ctx| {
            query_id = node.submit_query(ctx, plan);
        });
        query_id
    };
    let q_bytes = submit(
        "SELECT node, MAX(bytes_recv) FROM system.metrics \
         GROUP BY node WINDOW 4s SLIDE 2s EVERY 5s",
    );
    let q_p99 = submit(
        "SELECT node, MAX(lookup_p99_us) FROM system.metrics \
         GROUP BY node WINDOW 4s SLIDE 2s EVERY 5s",
    );
    cluster.settle(1_000_000);

    // Background DHT traffic: every node keeps publishing packet rows, so
    // lookups, receive counters and latency histograms all move.
    let mut rng = Rng64::new(cfg.seed ^ 0x5E1F);
    let key_cols = vec!["src".to_string()];
    let tick = 500_000u64;
    let per_tick = (cfg.events_per_node_per_sec * tick / 1_000_000).max(1) as usize;
    let mut events = 0u64;
    let stream_end = cluster.sim.now() + run_micros;
    while cluster.sim.now() < stream_end {
        let now = cluster.sim.now();
        for addr in cluster.sim.alive_nodes() {
            for _ in 0..per_tick {
                let tuple = Tuple::new(
                    "packets",
                    vec![
                        (
                            "src",
                            Value::Str(format!("10.0.0.{}", rng.index(64)).into()),
                        ),
                        ("ts", Value::Int(now as i64)),
                        ("len", Value::Int(40 + rng.index(1400) as i64)),
                    ],
                );
                events += 1;
                cluster.publish(addr, "packets", &key_cols, tuple);
            }
        }
        cluster.sim.run_for(tick);
    }
    // Drain: the trailing windows close, travel to the root and reach the
    // proxy before both queries time out.
    cluster
        .sim
        .run_for(timeout.saturating_sub(run_micros) + 5_000_000);

    let outputs: Vec<(SimTime, NodeAddr, PierOut)> = cluster
        .sim
        .drain_outputs()
        .into_iter()
        .map(|o| (o.time, o.node, o.value))
        .collect();
    let bytes_recv = collect_windows(&outputs, proxy, q_bytes, "max_bytes_recv");
    let lookup_p99 = collect_windows(&outputs, proxy, q_p99, "max_lookup_p99_us");

    let mut publishes = 0u64;
    for addr in cluster.sim.alive_nodes() {
        if let Some(tel) = cluster.telemetry(addr) {
            publishes += tel.counter("telemetry.publishes");
        }
    }
    let trace_jsonl = cluster
        .telemetry(cluster.addr(0))
        .map(|tel| tel.trace_jsonl())
        .unwrap_or_default();
    let merged_trace_jsonl = cluster.merged_trace_jsonl();
    let merged_span_jsonl = cluster.merged_span_jsonl();
    let trace_dropped = cluster.telemetry_summary().trace_dropped;
    SelfMonitoringOutcome {
        bytes_recv,
        lookup_p99,
        publishes,
        trace_jsonl,
        merged_trace_jsonl,
        merged_span_jsonl,
        trace_dropped,
        nodes: cfg.nodes,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standing_queries_over_system_metrics_see_every_node() {
        let cfg = SelfMonitoringConfig::new(8, 12, 11);
        let out = self_monitoring(&cfg);
        assert!(out.publishes > 0, "nodes must publish metrics tuples");
        assert!(
            !out.bytes_recv.is_empty(),
            "the bytes_recv monitor must emit windows"
        );
        assert_eq!(
            out.nodes_reporting(),
            cfg.nodes,
            "every node's metrics must reach the monitoring query"
        );
        assert!(
            out.peak_bytes_recv() > 0.0,
            "received-bytes counters must move"
        );
        assert!(
            !out.lookup_p99.is_empty(),
            "the lookup-latency monitor must emit windows"
        );
        assert!(
            out.peak_lookup_p99() > 0.0,
            "lookup latency percentiles must move"
        );
    }
}
