//! EXP-H — adaptive query processing with eddies (§4.2.2).
//!
//! PIER has no catalog, so a static optimizer has nothing to order
//! predicates by; the paper's answer is the eddy.  This driver measures the
//! quantity an optimizer (static or adaptive) is trying to minimize —
//! **operator invocations** — for the same conjunctive filter query executed
//! four ways:
//!
//! * a static plan wired in the *worst* order (least selective predicate
//!   first) — what a naive UFL author might produce,
//! * a static plan wired in the *best* order (most selective first) — the
//!   unattainable-without-statistics optimum,
//! * an eddy with round-robin routing (no learning), and
//! * an eddy with lottery routing (learning from observed drop rates),
//!   optionally warm-started with observations merged from other nodes, the
//!   cross-site statistics sharing the paper discusses for distributed
//!   eddies.
//!
//! All variants must return exactly the same tuples; only the work differs.

use pier_core::eddy::{Eddy, OperatorObservation, RoutingPolicy};
use pier_core::{CmpOp, Expr, Tuple, Value};
use pier_runtime::Rng64;

/// One row of the EXP-H output.
#[derive(Debug, Clone)]
pub struct EddyResult {
    /// Strategy label.
    pub strategy: String,
    /// Total operator invocations over the whole input stream.
    pub invocations: u64,
    /// Tuples that satisfied every predicate.
    pub results: u64,
    /// Input tuples processed.
    pub tuples: u64,
}

/// The three predicates of the experiment, in *worst* (least selective
/// first) wiring order, over a `flows(proto, port, bytes)` stream:
/// `bytes >= 64` passes nearly everything, `port < 1024` passes about a
/// third, `proto = 'udp'` passes a tenth.
fn predicates() -> Vec<(String, Expr)> {
    vec![
        (
            "bytes>=64".to_string(),
            Expr::cmp(CmpOp::Ge, Expr::col("bytes"), Expr::lit(64i64)),
        ),
        (
            "port<1024".to_string(),
            Expr::cmp(CmpOp::Lt, Expr::col("port"), Expr::lit(1024i64)),
        ),
        ("proto=udp".to_string(), Expr::eq("proto", "udp")),
    ]
}

/// Generate the synthetic flow stream.
fn workload(tuples: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng64::new(seed ^ 0xF10);
    (0..tuples)
        .map(|_| {
            let proto = if rng.chance(0.1) { "udp" } else { "tcp" };
            let port = rng.next_below(3072) as i64;
            let bytes = 40 + rng.next_below(1460) as i64;
            Tuple::new(
                "flows",
                vec![
                    ("proto", Value::str(proto)),
                    ("port", Value::Int(port)),
                    ("bytes", Value::Int(bytes)),
                ],
            )
        })
        .collect()
}

fn run_eddy(mut eddy: Eddy, stream: &[Tuple], label: &str) -> EddyResult {
    let mut results = 0u64;
    for t in stream {
        if eddy.route(t.clone()).is_some() {
            results += 1;
        }
    }
    EddyResult {
        strategy: label.to_string(),
        invocations: eddy.invocations(),
        results,
        tuples: stream.len() as u64,
    }
}

/// Run EXP-H over a stream of `tuples` flow records.
pub fn eddy_policies(tuples: usize, seed: u64) -> Vec<EddyResult> {
    let stream = workload(tuples, seed);
    let mut out = Vec::new();

    // Static, worst wiring order (the order `predicates()` returns).
    out.push(run_eddy(
        Eddy::over_predicates(predicates(), RoutingPolicy::Fixed, seed),
        &stream,
        "static/worst-order",
    ));

    // Static, best wiring order (most selective first).
    let mut best: Vec<(String, Expr)> = predicates();
    best.reverse();
    out.push(run_eddy(
        Eddy::over_predicates(best, RoutingPolicy::Fixed, seed),
        &stream,
        "static/best-order",
    ));

    // Eddy, round-robin (no learning).
    out.push(run_eddy(
        Eddy::over_predicates(predicates(), RoutingPolicy::RoundRobin, seed),
        &stream,
        "eddy/round-robin",
    ));

    // Eddy, lottery (learning).
    out.push(run_eddy(
        Eddy::over_predicates(predicates(), RoutingPolicy::Lottery, seed),
        &stream,
        "eddy/lottery",
    ));

    // Eddy, lottery, warm-started with observations "gossiped" from a node
    // that has already processed a similar stream (distributed eddies
    // aggregating their observations, §4.2.2).
    let mut trainer = Eddy::over_predicates(predicates(), RoutingPolicy::Lottery, seed ^ 1);
    for t in workload(tuples / 4, seed ^ 2) {
        trainer.route(t);
    }
    let remote: Vec<OperatorObservation> = trainer.observations().to_vec();
    let mut warmed = Eddy::over_predicates(predicates(), RoutingPolicy::Lottery, seed);
    warmed.absorb_observations(&remote);
    out.push(run_eddy(warmed, &stream, "eddy/lottery+shared-stats"));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_returns_the_same_result_count() {
        let rows = eddy_policies(2_000, 7);
        assert_eq!(rows.len(), 5);
        let expected = rows[0].results;
        for r in &rows {
            assert_eq!(
                r.results, expected,
                "{} returned a different answer",
                r.strategy
            );
            assert_eq!(r.tuples, 2_000);
        }
        assert!(expected > 0, "the workload must produce some matches");
    }

    #[test]
    fn lottery_beats_the_worst_static_order_and_approaches_the_best() {
        let rows = eddy_policies(5_000, 3);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.strategy == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .invocations
        };
        let worst = by("static/worst-order");
        let best = by("static/best-order");
        let lottery = by("eddy/lottery");
        assert!(best < worst, "sanity: the orders must actually differ");
        assert!(
            lottery < worst,
            "lottery ({lottery}) must do less work than the worst order ({worst})"
        );
        // The adaptive policy should close most of the gap to the optimum.
        let gap = (lottery - best) as f64 / (worst - best) as f64;
        assert!(
            gap < 0.5,
            "lottery should close at least half the gap, closed {gap:.2}"
        );
    }

    #[test]
    fn shared_statistics_do_not_hurt() {
        let rows = eddy_policies(3_000, 11);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.strategy == name)
                .unwrap()
                .invocations
        };
        assert!(by("eddy/lottery+shared-stats") <= by("eddy/lottery") + by("eddy/lottery") / 10);
    }
}
