//! The chaos workload: continuous netmon plus shared mqo tenants driven
//! through loss, partition and restart-storm phases under a seeded
//! [`FaultPlan`].
//!
//! The run is split into contiguous phases of virtual time:
//!
//! 1. **baseline** — clean network, establishes that the standing queries
//!    are healthy before anything is injected.
//! 2. **degraded** — probabilistic message loss across the whole phase plus
//!    a network partition of one or two non-proxy nodes over an inner
//!    sub-span.  Result quality is measured here: the mean relative error
//!    of the netmon per-window counts against the generated ground truth
//!    must stay bounded.
//! 3. **heal** — the network is clean again; the first post-heal window
//!    whose error falls under the recovery threshold dates the recovery.
//! 4. **storm** — a pre-drawn crash/restart storm kills durable nodes and
//!    brings them back cold.  Because every node carries a
//!    [`DurableStore`](pier_cq::DurableStore) "disk", the restarted nodes
//!    rehydrate warm window segments when the next re-dissemination
//!    re-installs the queries — the outcome records the rehydrated-window
//!    evidence.
//!
//! Every fault the simulator injects is mirrored into the netmon proxy's
//! telemetry hub as a `fault.inject` / `partition.heal` trace event, so the
//! outcome's trace can be reconciled against the plan's own log — and two
//! runs with equal seeds must produce **byte-identical** traces.

use crate::cluster::{Cluster, ClusterConfig};
use crate::continuous::WindowEmission;
use pier_core::{sqlish, PierConfig, PierOut, TelemetryConfig, Tuple, Value};
use pier_runtime::sim::{FaultCounts, FaultKind, FaultPlan, StormEvent};
use pier_runtime::{NodeAddr, Rng64, SimTime, Zipf};
use std::collections::BTreeMap;

/// Configuration of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of nodes at boot.
    pub nodes: usize,
    /// Determinism seed: topology, stream, fault schedule and storm draws.
    pub seed: u64,
    /// Shared mqo tenants riding along (each watches one source).
    pub tenants: usize,
    /// Events generated per node per second of virtual time.
    pub events_per_node_per_sec: u64,
    /// Distinct packet source addresses.
    pub sources: usize,
    /// Zipf skew of source popularity.
    pub zipf_theta: f64,
    /// Clean warm-up phase (virtual seconds).
    pub baseline_secs: u64,
    /// Loss + partition phase (virtual seconds).
    pub degraded_secs: u64,
    /// Clean recovery phase (virtual seconds).
    pub heal_secs: u64,
    /// Crash/restart-storm phase (virtual seconds).
    pub storm_secs: u64,
    /// Per-message drop probability across the degraded phase.
    pub loss: f64,
    /// Nodes cut away by the partition (an inner sub-span of the degraded
    /// phase); chosen from nodes that host no proxy.
    pub partition_nodes: usize,
    /// Storm victims crashed (and restarted warm) during the storm phase.
    pub storm_kills: usize,
    /// Acceptance bound on the mean relative netmon error over the
    /// degraded phase.
    pub error_bound: f64,
    /// A post-heal window counts as recovered once its relative error is at
    /// or under this threshold.
    pub recovered_below: f64,
    /// Per-node configuration (the driver enables sharing, telemetry and
    /// durable segments on it).
    pub pier: PierConfig,
}

impl ChaosConfig {
    /// The standard chaos run: 5% loss, a one-node partition, two storm
    /// kills.
    pub fn standard(nodes: usize, seed: u64) -> Self {
        ChaosConfig {
            nodes,
            seed,
            tenants: 6,
            events_per_node_per_sec: 8,
            sources: 48,
            zipf_theta: 0.8,
            baseline_secs: 12,
            degraded_secs: 10,
            heal_secs: 8,
            storm_secs: 10,
            loss: 0.05,
            partition_nodes: 1,
            storm_kills: 2,
            error_bound: 0.10,
            recovered_below: 0.05,
            pier: PierConfig::default(),
        }
    }
}

/// Phase boundaries of a run, in absolute virtual time.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpans {
    /// Stream start / end.
    pub stream: (SimTime, SimTime),
    /// Clean-measurable prefix of the baseline phase: only windows whose
    /// close-and-emit pipeline (`EVERY` interval plus transit) completes
    /// before fault onset — later baseline windows emit their deltas *into*
    /// the loss phase and are not a fault-free measurement.
    pub baseline: (SimTime, SimTime),
    /// The degraded (loss + partition) phase.
    pub degraded: (SimTime, SimTime),
    /// The partition's inner sub-span.
    pub partition: (SimTime, SimTime),
    /// Instant the partition healed and the loss schedule ended.
    pub heal_at: SimTime,
    /// The restart-storm phase.
    pub storm: (SimTime, SimTime),
}

/// Result of a chaos run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The netmon standing query's id.
    pub query_id: u64,
    /// Netmon per-window results keyed by `(window_start, window_end)`.
    pub windows: BTreeMap<(SimTime, SimTime), WindowEmission>,
    /// Ground truth: events generated per window, over the same window
    /// arithmetic the query uses.
    pub generated: BTreeMap<(SimTime, SimTime), u64>,
    /// Total events fed to the cluster.
    pub events: u64,
    /// Phase boundaries (for error/recovery attribution).
    pub spans: ChaosSpans,
    /// Node indexes the storm crashed and restarted.
    pub restarted: Vec<usize>,
    /// Largest warm-restart evidence on any restarted node: windows the
    /// netmon query rehydrated from durable segments after coming back.
    pub rehydrated_windows: u64,
    /// Fraction of expected tenant windows that received at least one row.
    pub tenant_coverage: f64,
    /// Aggregate fault-injection counts from the plan's log.
    pub fault_counts: FaultCounts,
    /// The netmon proxy's telemetry trace (JSONL), with every injected
    /// fault mirrored in — equal seeds must reproduce this byte-for-byte.
    pub trace: String,
    /// Every node's event trace merged under the `(time, node, ordinal)`
    /// total order — the all-nodes form of [`ChaosOutcome::trace`], equally
    /// byte-reproducible under equal seeds.
    pub merged_trace: String,
    /// Messages delivered between stream start and end of drain.
    pub total_msgs: u64,
    /// Bytes delivered over the same interval.
    pub total_bytes: u64,
    /// Cluster-wide telemetry sums at the end of the run (zeros for
    /// metrics the run never touched).
    pub telemetry: crate::cluster::ClusterTelemetrySummary,
}

impl ChaosOutcome {
    /// Total netmon count delivered for a window across groups (last
    /// emission per group wins).
    pub fn total_for(&self, window: (SimTime, SimTime)) -> i64 {
        self.windows.get(&window).map_or(0, |w| {
            w.rows
                .iter()
                .filter_map(|t| t.get("count").and_then(Value::as_i64))
                .sum()
        })
    }

    /// Relative error of one window against the generated ground truth.
    pub fn rel_error(&self, window: (SimTime, SimTime)) -> Option<f64> {
        let gen = *self.generated.get(&window)?;
        if gen == 0 {
            return None;
        }
        let obs = self.total_for(window);
        Some((obs - gen as i64).abs() as f64 / gen as f64)
    }

    /// Mean relative error over the windows lying fully inside `span`.
    pub fn mean_rel_error(&self, span: (SimTime, SimTime)) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&(start, end), _) in self.generated.range((span.0, 0)..) {
            if start < span.0 {
                continue;
            }
            if end > span.1 {
                break;
            }
            if let Some(err) = self.rel_error((start, end)) {
                sum += err;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Seconds from the heal instant until the end of the first post-heal
    /// window whose relative error is at or under `below` (`None` when no
    /// window recovered).
    pub fn recovery_secs(&self, below: f64) -> Option<f64> {
        let heal = self.spans.heal_at;
        for (&(start, end), _) in self.generated.range((heal, 0)..) {
            if start < heal {
                continue;
            }
            if self.rel_error((start, end)).is_some_and(|e| e <= below) {
                return Some(end.saturating_sub(heal) as f64 / 1e6);
            }
        }
        None
    }
}

/// Source address of rank `i` (shared by tenants and the generator).
fn source_addr(rank: usize) -> String {
    format!("10.0.{}.{}", (rank / 256) % 256, rank % 256)
}

/// Telemetry fields of one mirrored fault record.
fn fault_fields(kind: &FaultKind) -> Vec<(&'static str, String)> {
    let mut fields = vec![("kind", kind.label().to_string())];
    match kind {
        FaultKind::Loss { from, to } | FaultKind::PartitionDrop { from, to } => {
            fields.push(("from", from.index().to_string()));
            fields.push(("to", to.index().to_string()));
        }
        FaultKind::Duplicate { from, to, extra }
        | FaultKind::Reorder { from, to, extra }
        | FaultKind::DelaySpike { from, to, extra } => {
            fields.push(("from", from.index().to_string()));
            fields.push(("to", to.index().to_string()));
            fields.push(("extra", extra.to_string()));
        }
        FaultKind::PartitionStart { id } | FaultKind::PartitionHeal { id } => {
            fields.push(("id", id.to_string()));
        }
        FaultKind::Crash { node }
        | FaultKind::Restart { node }
        | FaultKind::StallStart { node }
        | FaultKind::StallEnd { node } => {
            fields.push(("node", node.index().to_string()));
        }
    }
    fields
}

/// One riding tenant: query id, proxy, watched source and collected
/// per-window rows.
struct TenantRun {
    query_id: u64,
    proxy: NodeAddr,
    windows: BTreeMap<(SimTime, SimTime), Vec<Tuple>>,
}

/// Run the chaos workload.  Panics on an invalid configuration (the
/// configuration is part of the experiment, not user input).
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    assert!(
        cfg.nodes > cfg.tenants + cfg.partition_nodes + cfg.storm_kills + 1,
        "need enough nodes to keep proxies out of the fault sets"
    );
    let mut cluster_cfg = ClusterConfig::lan(cfg.nodes, cfg.seed);
    cluster_cfg.pier = cfg.pier.clone();
    cluster_cfg.pier.sharing = Some(pier_mqo::layer);
    let cluster_cfg = cluster_cfg
        .with_liveness_timeout(3_000_000)
        .with_telemetry(TelemetryConfig {
            enabled: true,
            trace_capacity: 65_536,
            publish_interval: None,
            ..TelemetryConfig::default()
        })
        .with_durable();
    let mut cluster = Cluster::start(&cluster_cfg);
    let proxy = cluster.addr(0);
    let stream_micros =
        (cfg.baseline_secs + cfg.degraded_secs + cfg.heal_secs + cfg.storm_secs) * 1_000_000;

    // The netmon standing query at node 0, outliving the stream so trailing
    // windows can close and travel.
    let netmon_sql =
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s".to_string();
    let mut plan = sqlish::compile(&netmon_sql, proxy, stream_micros + 40_000_000)
        .expect("chaos netmon query must compile");
    // The netmon query opts out of the mqo layer: shared group state is not
    // persisted, and this query is the one whose warm restart we measure.
    if let Some(cq) = plan.cq.as_mut() {
        cq.exclusive = true;
    }
    let window_spec = match plan.windowed_sink() {
        Some((_, pier_core::SinkSpec::WindowedAgg { window, .. })) => *window,
        _ => panic!("chaos netmon query must have a WINDOW clause"),
    };
    let _ = cluster.sim.drain_outputs();
    let mut query_id = 0u64;
    cluster.sim.invoke(proxy, |node, ctx| {
        query_id = node.submit_query(ctx, plan);
    });
    // The riding tenants: constant-varied per-source queries sharing one
    // mqo dataflow, proxied at nodes 1..=tenants (kept out of the faults).
    let mut tenants: Vec<TenantRun> = Vec::with_capacity(cfg.tenants);
    for tenant in 0..cfg.tenants {
        let src = source_addr(tenant);
        let sql = format!(
            "SELECT src, COUNT(*) FROM packets WHERE src = '{src}' \
             GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        );
        let t_proxy = cluster.addr(1 + tenant);
        let plan = sqlish::compile(&sql, t_proxy, stream_micros + 40_000_000)
            .expect("tenant query compiles");
        let mut qid = 0u64;
        cluster.sim.invoke(t_proxy, |node, ctx| {
            qid = node.submit_query(ctx, plan);
        });
        tenants.push(TenantRun {
            query_id: qid,
            proxy: t_proxy,
            windows: BTreeMap::new(),
        });
    }
    // Let dissemination reach everyone, then isolate stream traffic.
    cluster.settle(1_000_000);
    cluster.reset_stats();

    // Phase boundaries in absolute virtual time.
    let stream_begin = cluster.sim.now();
    let d_start = stream_begin + cfg.baseline_secs * 1_000_000;
    let d_end = d_start + cfg.degraded_secs * 1_000_000;
    let fifth = cfg.degraded_secs * 1_000_000 / 5;
    let p_start = d_start + fifth;
    let p_end = d_end - fifth;
    let storm_start = d_end + cfg.heal_secs * 1_000_000;
    let stream_end = storm_start + cfg.storm_secs * 1_000_000;

    // Fault eligibility: node 0 and the tenant proxies host clients, so
    // they stay out of every fault set.  The partition cuts away the
    // highest-indexed nodes; the storm draws from the rest.
    let partition_side: Vec<NodeAddr> = (0..cfg.partition_nodes)
        .map(|i| cluster.addr(cfg.nodes - 1 - i))
        .collect();
    let storm_victims: Vec<NodeAddr> = (0..cfg.storm_kills.max(1))
        .map(|i| cluster.addr(1 + cfg.tenants + i))
        .collect();
    let plan = FaultPlan::new(cfg.seed ^ 0xFA017)
        .with_loss(d_start, d_end, cfg.loss)
        .with_partition(p_start, p_end, partition_side)
        .with_restart_storm(
            storm_start,
            storm_start + cfg.storm_secs * 1_000_000 * 2 / 5,
            &storm_victims,
            cfg.storm_kills,
            2_000_000,
            3_500_000,
        );
    // The simulator cannot construct fresh programs, so the harness arms
    // the storm schedule itself: crashes lose the program, restarts bring
    // the node back cold with its durable disk reattached.
    let storm: Vec<StormEvent> = plan.storm().to_vec();
    let mut restarted: Vec<usize> = Vec::new();
    for ev in &storm {
        cluster.crash_node_at(ev.node.index(), ev.crash_at);
        if let Some(at) = ev.restart_at {
            cluster.restart_node_at(ev.node.index(), at);
            if !restarted.contains(&ev.node.index()) {
                restarted.push(ev.node.index());
            }
        }
    }
    // Mirror every injected fault into the netmon proxy's telemetry hub so
    // traces can be reconciled against the plan's own log.
    let tel = cluster
        .telemetry(proxy)
        .expect("netmon proxy has a telemetry hub");
    cluster.sim.set_fault_sink(move |rec| {
        tel.set_now(rec.time);
        let kind = match rec.kind {
            FaultKind::PartitionHeal { .. } => "partition.heal",
            _ => "fault.inject",
        };
        tel.event(kind, || fault_fields(&rec.kind));
    });
    cluster.sim.set_fault_plan(plan);

    // The stream: every alive node ingests Zipf-popular packet tuples;
    // ground truth counts only what was actually generated (dead nodes
    // generate nothing).
    let mut rng = Rng64::new(cfg.seed ^ 0xC4A05);
    let zipf = Zipf::new(cfg.sources.max(1), cfg.zipf_theta);
    let tick = 250_000u64; // 4 ingest rounds per virtual second
    let mut events = 0u64;
    let mut generated: BTreeMap<(SimTime, SimTime), u64> = BTreeMap::new();
    let mut tenant_gen: Vec<BTreeMap<(SimTime, SimTime), u64>> = vec![BTreeMap::new(); cfg.tenants];
    while cluster.sim.now() < stream_end {
        let now = cluster.sim.now();
        let per_tick = (cfg.events_per_node_per_sec * tick / 1_000_000).max(1) as usize;
        for addr in cluster.sim.alive_nodes() {
            for _ in 0..per_tick {
                // Zipf ranks are 1-based; sources (and tenants) are 0-based.
                let rank = zipf.sample(&mut rng) - 1;
                let tuple = Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(source_addr(rank).into())),
                        ("ts", Value::Int(now as i64)),
                        ("port", Value::Int([22, 80, 443, 445][rng.index(4)])),
                    ],
                );
                events += 1;
                for wid in window_spec.windows_containing(now) {
                    let bounds = window_spec.bounds(wid);
                    *generated.entry(bounds).or_default() += 1;
                    if rank < cfg.tenants {
                        *tenant_gen[rank].entry(bounds).or_default() += 1;
                    }
                }
                cluster.sim.invoke(addr, move |node, ctx| {
                    node.ingest(ctx, "packets", tuple);
                });
            }
        }
        cluster.sim.run_for(tick);
    }
    // Drain: trailing windows close and travel; restarted nodes have had
    // their re-dissemination and rehydration by the end.
    let drain = window_spec.size + window_spec.grace + 4 * window_spec.slide + 10_000_000;
    cluster.sim.run_for(drain);
    let total_msgs = cluster.sim.stats().total_msgs;
    let total_bytes = cluster.sim.stats().total_bytes;
    let fault_counts = cluster
        .sim
        .fault_plan()
        .map(pier_runtime::FaultPlan::counts)
        .unwrap_or_default();

    // Collect netmon windows at node 0 and tenant windows at their proxies.
    let mut windows: BTreeMap<(SimTime, SimTime), WindowEmission> = BTreeMap::new();
    let by_query: BTreeMap<u64, usize> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.query_id, i))
        .collect();
    for out in cluster.sim.drain_outputs() {
        let PierOut::WindowResult {
            query_id: qid,
            window_start,
            window_end,
            retract,
            tuple,
        } = out.value
        else {
            continue;
        };
        if qid == query_id && out.node == proxy {
            let w = windows.entry((window_start, window_end)).or_default();
            if w.first_emitted_at == 0 {
                w.first_emitted_at = out.time;
            }
            if w.last_emitted_at != out.time {
                w.last_emitted_at = out.time;
                w.emissions += 1;
            }
            if retract {
                w.retractions += 1;
                w.rows.retain(|t| *t != tuple);
            } else {
                w.rows.retain(|t| t.get("src") != tuple.get("src"));
                w.rows.push(tuple);
            }
        } else if let Some(&idx) = by_query.get(&qid) {
            if tenants[idx].proxy != out.node {
                continue;
            }
            let rows = tenants[idx]
                .windows
                .entry((window_start, window_end))
                .or_default();
            if retract {
                rows.retain(|t| *t != tuple);
            } else {
                rows.retain(|t| t.get("src") != tuple.get("src"));
                rows.push(tuple);
            }
        }
    }
    // Warm-restart evidence: the restarted nodes' re-installed netmon query
    // reports how many windows it rehydrated from durable segments.
    let mut rehydrated_windows = 0u64;
    for &i in &restarted {
        if let Some(diag) = cluster
            .sim
            .node(cluster.addr(i))
            .and_then(|n| n.cq_diagnostics(query_id))
        {
            rehydrated_windows = rehydrated_windows.max(diag.rehydrated_windows);
        }
    }
    // Tenant liveness: of the windows a tenant's source actually appeared
    // in (and that closed before the stream ended), how many produced at
    // least one row at that tenant's proxy?
    let mut expected = 0usize;
    let mut covered = 0usize;
    for (tenant, gen) in tenant_gen.iter().enumerate() {
        for &(start, end) in gen.keys() {
            if start < stream_begin || end > stream_end {
                continue;
            }
            expected += 1;
            if tenants[tenant]
                .windows
                .get(&(start, end))
                .is_some_and(|rows| !rows.is_empty())
            {
                covered += 1;
            }
        }
    }
    let tenant_coverage = if expected == 0 {
        1.0
    } else {
        covered as f64 / expected as f64
    };
    let trace = cluster
        .telemetry(proxy)
        .map(|t| t.trace_jsonl())
        .unwrap_or_default();
    let merged_trace = cluster.merged_trace_jsonl();
    ChaosOutcome {
        query_id,
        windows,
        generated,
        events,
        spans: ChaosSpans {
            stream: (stream_begin, stream_end),
            // A window's results are fault-free only if its EVERY-5s emission
            // tick *and* the deltas' transit land before faults begin.
            baseline: (stream_begin, d_start.saturating_sub(6_000_000)),
            degraded: (d_start, d_end),
            partition: (p_start, p_end),
            heal_at: d_end,
            storm: (storm_start, stream_end),
        },
        restarted,
        rehydrated_windows,
        tenant_coverage,
        fault_counts,
        trace,
        merged_trace,
        total_msgs,
        total_bytes,
        telemetry: cluster.telemetry_summary(),
    }
}
