//! The continuous network-monitoring workload (the paper's Figure-2
//! scenario run the way it is meant to be run: as a *standing* query).
//!
//! A sqlish windowed aggregate is registered once at a proxy and then a
//! packet/flow stream is fed to every node for many windows of virtual
//! time, optionally with churn (node kills and fresh joins) mid-stream.
//! The driver collects the per-window result stream delivered to the
//! proxy's client and reports sustained throughput, per-window latency and
//! per-node state bounds — the metrics that make a continuous query
//! deployable on shared infrastructure.

use crate::cluster::{Cluster, ClusterConfig};
use pier_core::{sqlish, PierConfig, PierNode, PierOut, Tuple, Value};
use pier_dht::NodeRef;
use pier_runtime::{NodeAddr, Rng64, SimTime, Zipf};
use std::collections::BTreeMap;

/// Configuration of a continuous netmon run.
#[derive(Debug, Clone)]
pub struct ContinuousNetmonConfig {
    /// Number of nodes at boot.
    pub nodes: usize,
    /// Determinism seed.
    pub seed: u64,
    /// The standing query (sqlish; must contain a `WINDOW` clause).
    pub sql: String,
    /// Events generated per node per second of virtual time.
    pub events_per_node_per_sec: u64,
    /// Distinct packet source addresses.
    pub sources: usize,
    /// Zipf skew of source popularity.
    pub zipf_theta: f64,
    /// How long the stream runs (virtual seconds).
    pub run_secs: u64,
    /// Churn: `(at_sec, kills, joins)` — at virtual second `at_sec`, fail
    /// `kills` non-proxy nodes and boot `joins` fresh nodes.
    pub churn: Option<(u64, usize, usize)>,
    /// Per-node configuration (batching knobs, publish lifetimes); the
    /// batching-equivalence tests run the same stream with batching on and
    /// off and compare results and traffic.
    pub pier: PierConfig,
}

impl ContinuousNetmonConfig {
    /// The default standing query: per-source packet counts over a sliding
    /// window, renewed every 5 s.
    pub fn default_query() -> String {
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s".to_string()
    }

    /// A small steady-state run (tests, examples).
    pub fn steady(nodes: usize, run_secs: u64, seed: u64) -> Self {
        ContinuousNetmonConfig {
            nodes,
            seed,
            sql: Self::default_query(),
            events_per_node_per_sec: 8,
            sources: 64,
            zipf_theta: 0.9,
            run_secs,
            churn: None,
            pier: PierConfig::default(),
        }
    }
}

/// One per-window emission observed at the proxy's client.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowEmission {
    /// Insert/snapshot rows, latest emission per window.
    pub rows: Vec<Tuple>,
    /// Rows retracted across the window's emissions (delta mode).
    pub retractions: usize,
    /// Virtual time the first emission for this window arrived.
    pub first_emitted_at: SimTime,
    /// Virtual time the latest emission arrived (refinements re-emit).
    pub last_emitted_at: SimTime,
    /// Number of emissions: 1 for a single snapshot, more when late
    /// partials refined the window after its first emission.
    pub emissions: u32,
}

/// Result of a continuous netmon run.
#[derive(Debug)]
pub struct ContinuousOutcome {
    /// The standing query's id.
    pub query_id: u64,
    /// Per-window results keyed by `(window_start, window_end)`.
    pub windows: BTreeMap<(SimTime, SimTime), WindowEmission>,
    /// Ground truth: events generated per `(window_start, window_end)`,
    /// counted over the same window arithmetic the query uses.
    pub generated: BTreeMap<(SimTime, SimTime), u64>,
    /// Total events fed to the cluster.
    pub events: u64,
    /// Sustained ingest rate over the run (tuples per virtual second).
    pub tuples_per_sec: f64,
    /// Mean delay from window end to first emission (virtual seconds).
    pub mean_window_latency_secs: f64,
    /// Largest per-node CQ state footprint observed at the end of the run:
    /// `(open windows, groups, tracked emissions)`.
    pub max_node_state: (usize, usize, usize),
    /// Messages delivered between the start of the stream and the end of the
    /// drain (dissemination/boot traffic excluded).
    pub total_msgs: u64,
    /// Bytes delivered over the same interval.
    pub total_bytes: u64,
    /// Cluster-wide telemetry sums at the end of the run (all zeros when
    /// the cluster ran without telemetry).
    pub telemetry: crate::cluster::ClusterTelemetrySummary,
}

impl ContinuousOutcome {
    /// Count delivered for `window` and source `src` (last emission wins).
    pub fn count_for(&self, window: (SimTime, SimTime), src: &str) -> Option<i64> {
        self.windows.get(&window).and_then(|w| {
            w.rows
                .iter()
                .filter(|t| t.get("src").and_then(Value::as_str) == Some(src))
                .filter_map(|t| t.get("count").and_then(Value::as_i64))
                .next_back()
        })
    }

    /// Total count delivered for a window across groups (last emissions).
    pub fn total_for(&self, window: (SimTime, SimTime)) -> i64 {
        self.windows.get(&window).map_or(0, |w| {
            w.rows
                .iter()
                .filter_map(|t| t.get("count").and_then(Value::as_i64))
                .sum()
        })
    }
}

/// Run the continuous netmon workload.  Panics on an invalid query (the
/// configuration is part of the experiment, not user input).
pub fn continuous_netmon(cfg: &ContinuousNetmonConfig) -> ContinuousOutcome {
    continuous_netmon_observed(cfg).0
}

/// Like [`continuous_netmon`], but hands the drained cluster back so the
/// caller can inspect post-run state — the profile driver
/// ([`crate::profile`]) collects every node's span ring from it to
/// assemble the merged EXPLAIN ANALYZE trace.
pub fn continuous_netmon_observed(cfg: &ContinuousNetmonConfig) -> (ContinuousOutcome, Cluster) {
    // Continuous queries need routes to heal within a window slide, so
    // fail-stop detection is tightened well below the 30 s default.
    let mut cluster_cfg = ClusterConfig::lan(cfg.nodes, cfg.seed);
    cluster_cfg.pier = cfg.pier.clone();
    let cluster_cfg = cluster_cfg.with_liveness_timeout(3_000_000);
    let mut cluster = Cluster::start(&cluster_cfg);
    let proxy = cluster.addr(0);
    let run_micros = cfg.run_secs * 1_000_000;
    // The query outlives the stream so trailing windows can close and
    // travel; the proxy keeps renewing until the timeout.
    let plan = sqlish::compile(&cfg.sql, proxy, run_micros + 20_000_000)
        .expect("continuous netmon query must compile");
    let window_spec = match plan.windowed_sink() {
        Some((_, pier_core::SinkSpec::WindowedAgg { window, .. })) => *window,
        _ => panic!("continuous netmon query must have a WINDOW clause"),
    };
    let _ = cluster.sim.drain_outputs();
    let mut query_id = 0u64;
    cluster.sim.invoke(proxy, |node, ctx| {
        query_id = node.submit_query(ctx, plan);
    });
    // Let dissemination reach everyone before the stream starts, then
    // isolate the stream's traffic from boot/dissemination traffic.
    cluster.settle(1_000_000);
    cluster.reset_stats();

    let mut rng = Rng64::new(cfg.seed ^ 0xCAFE);
    let zipf = Zipf::new(cfg.sources.max(1), cfg.zipf_theta);
    let tick = 250_000u64; // 4 ingest rounds per virtual second
    let mut events = 0u64;
    let mut generated: BTreeMap<(SimTime, SimTime), u64> = BTreeMap::new();
    let stream_end = cluster.sim.now() + run_micros;
    let mut churned = false;
    while cluster.sim.now() < stream_end {
        let now = cluster.sim.now();
        // Churn: kill some non-proxy nodes and boot fresh ones mid-stream.
        if let Some((at_sec, kills, joins)) = cfg.churn {
            if !churned && now >= at_sec * 1_000_000 {
                churned = true;
                let alive: Vec<NodeAddr> = cluster
                    .sim
                    .alive_nodes()
                    .into_iter()
                    .filter(|a| *a != proxy)
                    .collect();
                for victim in alive.iter().rev().take(kills) {
                    cluster.sim.fail_node_at(*victim, now);
                }
                for _ in 0..joins {
                    let addr = NodeAddr(cluster.sim.node_count() as u32);
                    let me = NodeRef {
                        id: pier_dht::Id(rng.next_u64()),
                        addr,
                    };
                    let mut ring = cluster.refs.clone();
                    ring.push(me);
                    let assigned = cluster.sim.add_node(PierNode::with_static_ring(
                        me,
                        &ring,
                        cluster_cfg.pier.clone(),
                    ));
                    debug_assert_eq!(assigned, addr);
                }
                // Process the failure before streaming on.
                cluster.settle(1);
                continue;
            }
        }
        let per_tick = (cfg.events_per_node_per_sec * tick / 1_000_000).max(1) as usize;
        let alive = cluster.sim.alive_nodes();
        for addr in alive {
            for _ in 0..per_tick {
                let rank = zipf.sample(&mut rng);
                let src = format!("10.0.{}.{}", (rank / 256) % 256, rank % 256);
                let tuple = Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(src.into())),
                        ("ts", Value::Int(now as i64)),
                        ("port", Value::Int([22, 80, 443, 445][rng.index(4)])),
                    ],
                );
                events += 1;
                for wid in window_spec.windows_containing(now) {
                    *generated.entry(window_spec.bounds(wid)).or_default() += 1;
                }
                cluster.sim.invoke(addr, move |node, ctx| {
                    node.ingest(ctx, "packets", tuple);
                });
            }
        }
        cluster.sim.run_for(tick);
    }
    // Drain: let trailing windows close, travel and emit.
    let drain = window_spec.size + window_spec.grace + 4 * window_spec.slide + 2_000_000;
    cluster.sim.run_for(drain);
    let total_msgs = cluster.sim.stats().total_msgs;
    let total_bytes = cluster.sim.stats().total_bytes;

    // Collect per-window emissions delivered to the proxy's client.
    let mut windows: BTreeMap<(SimTime, SimTime), WindowEmission> = BTreeMap::new();
    for out in cluster.sim.drain_outputs() {
        if out.node != proxy {
            continue;
        }
        if let PierOut::WindowResult {
            query_id: qid,
            window_start,
            window_end,
            retract,
            tuple,
        } = out.value
        {
            if qid != query_id {
                continue;
            }
            let w = windows.entry((window_start, window_end)).or_default();
            if w.first_emitted_at == 0 {
                w.first_emitted_at = out.time;
            }
            // Rows of one emission share an arrival instant; a later
            // instant means the window was re-emitted (refinement).
            if w.last_emitted_at != out.time {
                w.last_emitted_at = out.time;
                w.emissions += 1;
            }
            if retract {
                w.retractions += 1;
                w.rows.retain(|t| *t != tuple);
            } else {
                // A re-emission (snapshot refresh or delta refinement)
                // supersedes the group's earlier row.
                w.rows.retain(|t| t.get("src") != tuple.get("src"));
                w.rows.push(tuple);
            }
        }
    }
    let mean_window_latency_secs = if windows.is_empty() {
        0.0
    } else {
        windows
            .iter()
            .map(|((_, end), w)| w.first_emitted_at.saturating_sub(*end) as f64 / 1e6)
            .sum::<f64>()
            / windows.len() as f64
    };
    // Per-node state bound at the end of the run.
    let mut max_node_state = (0usize, 0usize, 0usize);
    for addr in cluster.sim.alive_nodes() {
        if let Some(diag) = cluster
            .sim
            .node(addr)
            .and_then(|n| n.cq_diagnostics(query_id))
        {
            max_node_state.0 = max_node_state.0.max(diag.open_windows);
            max_node_state.1 = max_node_state.1.max(diag.total_groups);
            max_node_state.2 = max_node_state.2.max(diag.tracked_emissions);
        }
    }
    let outcome = ContinuousOutcome {
        query_id,
        windows,
        generated,
        events,
        tuples_per_sec: events as f64 / cfg.run_secs.max(1) as f64,
        mean_window_latency_secs,
        max_node_state,
        total_msgs,
        total_bytes,
        telemetry: cluster.telemetry_summary(),
    };
    (outcome, cluster)
}
