//! Synthetic workload generators.
//!
//! The paper's evaluation data is not redistributable (real Gnutella query
//! traces intercepted on PlanetLab, and live firewall logs from 350
//! machines), so these generators produce synthetic workloads that preserve
//! the statistical properties the figures depend on: Zipf-skewed keyword
//! popularity with a long tail of *rare* keywords (Figure 1), and a
//! heavy-tailed distribution of firewall-event source addresses where a few
//! sources produce most of the unwanted traffic (Figure 2).

use pier_core::{Tuple, Value};
use pier_runtime::{Rng64, Zipf};

/// A generated file-sharing corpus plus a query workload over it.
#[derive(Debug, Clone)]
pub struct FilesharingWorkload {
    /// `(node index, keyword, file name)` publications: which node shares
    /// which file under which keyword.
    pub publications: Vec<(usize, String, String)>,
    /// Queries: each is a keyword plus whether it is "rare" (appears on at
    /// most `rare_threshold` files).
    pub queries: Vec<(String, bool)>,
    /// Number of distinct keywords.
    pub keywords: usize,
}

impl FilesharingWorkload {
    /// Generate a corpus of `files` files over `keywords` keywords with
    /// Zipf(`theta`) popularity, spread across `nodes` nodes, plus `queries`
    /// keyword queries drawn from the same popularity distribution.
    /// Keywords with at most `rare_threshold` files are labelled rare.
    pub fn generate(
        nodes: usize,
        files: usize,
        keywords: usize,
        theta: f64,
        queries: usize,
        rare_threshold: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Rng64::new(seed);
        let zipf = Zipf::new(keywords, theta);
        let mut keyword_count = vec![0usize; keywords + 1];
        let mut publications = Vec::with_capacity(files);
        for f in 0..files {
            let kw_rank = zipf.sample(&mut rng);
            keyword_count[kw_rank] += 1;
            let node = rng.index(nodes);
            publications.push((node, format!("kw{kw_rank}"), format!("file-{f}.dat")));
        }
        let mut query_list = Vec::with_capacity(queries);
        for _ in 0..queries {
            let kw_rank = zipf.sample(&mut rng);
            // "Rare" keywords are ones that exist in the corpus but on few
            // files (the paper's rare-query subset is drawn from real queries
            // whose keywords were used infrequently, not from keywords with
            // no matching content at all).
            let rare = keyword_count[kw_rank] >= 1 && keyword_count[kw_rank] <= rare_threshold;
            query_list.push((format!("kw{kw_rank}"), rare));
        }
        FilesharingWorkload {
            publications,
            queries: query_list,
            keywords,
        }
    }

    /// The inverted-index tuple for one publication.
    pub fn tuple(keyword: &str, file: &str) -> Tuple {
        Tuple::new(
            "files",
            vec![("keyword", Value::str(keyword)), ("file", Value::str(file))],
        )
    }
}

/// A generated endpoint-monitoring workload: per-node firewall event logs.
#[derive(Debug, Clone)]
pub struct FirewallWorkload {
    /// `(node index, source ip, destination port)` events.
    pub events: Vec<(usize, String, i64)>,
    /// Ground truth: total events per source ip, descending.
    pub ground_truth: Vec<(String, i64)>,
}

impl FirewallWorkload {
    /// Generate `events` firewall log entries spread over `nodes` nodes,
    /// with source addresses drawn from Zipf(`theta`) over `sources`
    /// distinct addresses — a few sources generate most of the traffic, the
    /// property Figure 2 illustrates.
    pub fn generate(nodes: usize, events: usize, sources: usize, theta: f64, seed: u64) -> Self {
        let mut rng = Rng64::new(seed ^ 0xF1EE);
        let zipf = Zipf::new(sources, theta);
        let mut per_source: std::collections::HashMap<String, i64> = Default::default();
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let rank = zipf.sample(&mut rng);
            let src = format!("10.{}.{}.{}", rank / 65536, (rank / 256) % 256, rank % 256);
            let node = rng.index(nodes);
            let port = [22, 23, 80, 135, 443, 445][rng.index(6)];
            *per_source.entry(src.clone()).or_default() += 1;
            out.push((node, src, port));
        }
        let mut ground_truth: Vec<(String, i64)> = per_source.into_iter().collect();
        ground_truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        FirewallWorkload {
            events: out,
            ground_truth,
        }
    }

    /// The event tuple for one log entry.
    pub fn tuple(src: &str, port: i64) -> Tuple {
        Tuple::new(
            "events",
            vec![
                ("src", Value::str(src)),
                ("port", Value::Int(port)),
                ("blocked", Value::Bool(true)),
            ],
        )
    }

    /// The true top-`k` sources by event count.
    pub fn top_k(&self, k: usize) -> Vec<(String, i64)> {
        self.ground_truth.iter().take(k).cloned().collect()
    }
}

/// Generate two relations `r(a, b)` and `s(b, c)` for the join ablations:
/// `r_rows`/`s_rows` tuples with join attribute `b` drawn from `domain`
/// values, assigned round-robin to nodes.
#[allow(clippy::type_complexity)]
pub fn join_tables(
    nodes: usize,
    r_rows: usize,
    s_rows: usize,
    domain: usize,
    seed: u64,
) -> (Vec<(usize, Tuple)>, Vec<(usize, Tuple)>) {
    let mut rng = Rng64::new(seed ^ 0x104A);
    let mut r = Vec::with_capacity(r_rows);
    for i in 0..r_rows {
        let b = rng.index(domain) as i64;
        r.push((
            i % nodes,
            Tuple::new("r", vec![("a", Value::Int(i as i64)), ("b", Value::Int(b))]),
        ));
    }
    let mut s = Vec::with_capacity(s_rows);
    for i in 0..s_rows {
        let b = rng.index(domain) as i64;
        s.push((
            i % nodes,
            Tuple::new(
                "s",
                vec![("b", Value::Int(b)), ("c", Value::Int((i * 7) as i64))],
            ),
        ));
    }
    (r, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filesharing_workload_is_skewed_and_has_rare_keywords() {
        let w = FilesharingWorkload::generate(50, 5_000, 800, 1.0, 500, 3, 42);
        assert_eq!(w.publications.len(), 5_000);
        assert_eq!(w.queries.len(), 500);
        // Popularity skew: the most popular keyword has far more files than
        // the per-keyword average.
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for (_, kw, _) in &w.publications {
            *counts.entry(kw.as_str()).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 5_000 / 800 * 10);
        // Both rare and popular queries occur.
        assert!(w.queries.iter().any(|(_, rare)| *rare));
        assert!(w.queries.iter().any(|(_, rare)| !*rare));
    }

    #[test]
    fn firewall_workload_ground_truth_is_consistent() {
        let w = FirewallWorkload::generate(350, 20_000, 3_000, 1.2, 7);
        assert_eq!(w.events.len(), 20_000);
        let total: i64 = w.ground_truth.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 20_000);
        let top = w.top_k(10);
        assert_eq!(top.len(), 10);
        // Heavy tail: the top 10 sources account for a sizable share.
        let top_total: i64 = top.iter().map(|(_, n)| n).sum();
        assert!(
            top_total as f64 / 20_000.0 > 0.1,
            "top-10 share too small: {top_total}"
        );
        // Descending order.
        for w2 in w.ground_truth.windows(2) {
            assert!(w2[0].1 >= w2[1].1);
        }
    }

    #[test]
    fn join_tables_have_expected_shapes() {
        let (r, s) = join_tables(16, 200, 150, 20, 3);
        assert_eq!(r.len(), 200);
        assert_eq!(s.len(), 150);
        assert!(r.iter().all(|(n, t)| *n < 16 && t.get("b").is_some()));
        assert!(s.iter().all(|(n, t)| *n < 16 && t.get("c").is_some()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FilesharingWorkload::generate(10, 100, 50, 1.0, 20, 2, 9);
        let b = FilesharingWorkload::generate(10, 100, 50, 1.0, 20, 2, 9);
        assert_eq!(a.publications, b.publications);
        assert_eq!(a.queries, b.queries);
    }
}
