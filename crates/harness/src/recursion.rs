//! EXP-K — recursive (reachability) queries evaluated as rounds of
//! distributed index joins (§3.3.2).
//!
//! The paper supports cyclic UFL opgraphs for recursive queries and points
//! at declarative routing \[42\] as the motivating application: computing
//! which nodes are reachable from a given node over a distributed `links`
//! table.  This driver evaluates that query semi-naively over a simulated
//! PIER cluster:
//!
//! * every edge `(src, dst)` is published into the DHT hashed on `src` —
//!   the primary index a Fetch Matches join needs,
//! * each round, the current frontier is materialised as a node-local table
//!   at the proxy and a `Dissemination::Local` opgraph issues one Fetch
//!   Matches probe per frontier node against the `links` table, and
//! * the fetched edges advance a [`pier_core::recursive::ReachabilityRound`]
//!   until the frontier is empty (the fixpoint).
//!
//! The result is validated against the purely local
//! [`pier_core::TransitiveClosure`] fixpoint over the same edge set.

use crate::cluster::{Cluster, ClusterConfig};
use pier_core::recursive::ReachabilityRound;
use pier_core::{
    Dissemination, OpGraph, OperatorSpec, PlanBuilder, SinkSpec, SourceSpec, TransitiveClosure,
    Tuple, Value,
};
use pier_runtime::Rng64;

/// The outcome of one distributed reachability evaluation.
#[derive(Debug, Clone)]
pub struct ReachabilityResult {
    /// Number of PIER nodes in the cluster.
    pub nodes: usize,
    /// Number of edges published.
    pub edges: usize,
    /// Nodes reachable from the start according to the distributed rounds.
    pub reached_distributed: usize,
    /// Nodes reachable according to the local reference fixpoint.
    pub reached_reference: usize,
    /// Distributed rounds executed (frontier expansions + the final empty one).
    pub rounds: usize,
    /// Total messages across the whole evaluation.
    pub messages: u64,
    /// True when the distributed and reference answers are identical sets.
    pub matches_reference: bool,
}

/// Generate a random directed graph over `graph_nodes` labels with out-degree
/// roughly `degree`.
fn random_edges(graph_nodes: usize, degree: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = Rng64::new(seed ^ 0x6EA9);
    let mut edges = Vec::new();
    for i in 0..graph_nodes {
        for _ in 0..degree {
            let j = rng.index(graph_nodes);
            if i != j {
                edges.push((format!("h{i}"), format!("h{j}")));
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Run EXP-K: publish a random `links` graph into a `nodes`-node cluster and
/// compute reachability from `h0` by rounds of distributed Fetch Matches
/// joins.
pub fn distributed_reachability(
    nodes: usize,
    graph_nodes: usize,
    degree: usize,
    seed: u64,
) -> ReachabilityResult {
    let edges = random_edges(graph_nodes, degree, seed);
    let mut cluster = Cluster::start(&ClusterConfig::lan(nodes, seed));
    let key_cols = vec!["src".to_string()];
    let mut reference = TransitiveClosure::new();
    for (i, (src, dst)) in edges.iter().enumerate() {
        let tuple = Tuple::new(
            "links",
            vec![("src", Value::str(src)), ("dst", Value::str(dst))],
        );
        reference.add_edge(src.clone(), dst.clone());
        let from = cluster.addr(i % cluster.len());
        cluster.publish(from, "links", &key_cols, tuple);
    }
    cluster.settle(5_000_000);
    cluster.reset_stats();

    let proxy = cluster.addr(0);
    let start = "h0";
    let mut rounds = ReachabilityRound::new(start, "src", "dst");
    let mut round_no = 0usize;
    // Semi-naive loop: one distributed index join per frontier expansion.
    while !rounds.done() && round_no < graph_nodes + 2 {
        let frontier_table = format!("reach.frontier.{round_no}");
        let output_table = format!("reach.step.{round_no}");
        for node_name in rounds.frontier() {
            cluster.add_local_row(
                proxy,
                &frontier_table,
                Tuple::new(
                    frontier_table.as_str(),
                    vec![("node", Value::str(node_name))],
                ),
            );
        }
        let plan = PlanBuilder::new(proxy)
            .dissemination(Dissemination::Local)
            .timeout(8_000_000)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: frontier_table.clone(),
                },
                join: None,
                ops: vec![OperatorSpec::FetchMatches {
                    inner_namespace: "links".to_string(),
                    probe_col: "node".to_string(),
                    output_table,
                }],
                sink: SinkSpec::ToProxy,
            })
            .build();
        let outcome = cluster.run_query(proxy, plan);
        rounds.absorb(&outcome.tuples());
        round_no += 1;
    }

    let (mut reference_reached, _) = reference.reachable_from(start);
    let mut distributed = rounds.reached().clone();
    // The round evaluator always counts the start as explored; the reference
    // only reports it when a cycle leads back to it.  Compare the sets with
    // the start excluded from both so the two conventions agree.
    distributed.remove(start);
    reference_reached.remove(start);
    let matches_reference = distributed == reference_reached;
    ReachabilityResult {
        nodes,
        edges: edges.len(),
        reached_distributed: distributed.len(),
        reached_reference: reference_reached.len(),
        rounds: rounds.rounds(),
        messages: cluster.sim.stats().total_msgs,
        matches_reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_reachability_matches_the_local_fixpoint() {
        let result = distributed_reachability(12, 18, 2, 5);
        assert!(
            result.matches_reference,
            "distributed ({}) and reference ({}) answers differ",
            result.reached_distributed, result.reached_reference
        );
        assert!(result.reached_distributed > 0, "h0 should reach something");
        assert!(result.rounds >= 1);
    }

    #[test]
    fn random_graphs_are_deterministic_per_seed() {
        assert_eq!(random_edges(10, 2, 3), random_edges(10, 2, 3));
        assert_ne!(random_edges(10, 2, 3), random_edges(10, 2, 4));
    }
}
