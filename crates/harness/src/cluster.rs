//! Boot and drive a PIER cluster under the Simulation Environment.

use pier_core::{
    PierConfig, PierNode, PierOut, QueryPlan, SpanRecord, Telemetry, TelemetryConfig, TraceEvent,
    Tuple,
};
use pier_cq::DurableStore;
use pier_dht::{make_ring_refs, NodeRef};
use pier_runtime::sim::{CongestionKind, TopologyConfig};
use pier_runtime::{NodeAddr, SimConfig, SimTime, Simulator};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of PIER nodes.
    pub nodes: usize,
    /// Seed controlling identifiers, topology and workloads.
    pub seed: u64,
    /// Network topology.
    pub topology: TopologyConfig,
    /// Congestion model.
    pub congestion: CongestionKind,
    /// Per-node configuration (overlay tuning, publish lifetimes).
    pub pier: PierConfig,
    /// Give every node its own [`DurableStore`] "disk" that survives
    /// crashes, so [`Cluster::restart_node_at`] brings the node back with warm
    /// window segments instead of empty continuous-query state.
    pub durable: bool,
}

impl ClusterConfig {
    /// A LAN-like cluster (fast, uncongested) — functional tests.
    pub fn lan(nodes: usize, seed: u64) -> Self {
        ClusterConfig {
            nodes,
            seed,
            topology: TopologyConfig::lan(),
            congestion: CongestionKind::None,
            pier: PierConfig::default(),
            durable: false,
        }
    }

    /// A wide-area transit-stub cluster with FIFO access-link queuing — the
    /// configuration used to reproduce the paper's figures.
    pub fn internet(nodes: usize, seed: u64) -> Self {
        ClusterConfig {
            nodes,
            seed,
            topology: TopologyConfig::internet_like(),
            congestion: CongestionKind::Fifo,
            pier: PierConfig::default(),
            durable: false,
        }
    }

    /// Tighten fail-stop detection to `micros` — continuous queries want
    /// routes to heal within a window slide, not the conservative default.
    pub fn with_liveness_timeout(mut self, micros: u64) -> Self {
        self.pier.overlay.router.liveness_timeout = micros;
        self
    }

    /// Enable self-monitoring telemetry on every node.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.pier.telemetry = telemetry;
        self
    }

    /// Enable per-node durable window segments (warm restarts).
    pub fn with_durable(mut self) -> Self {
        self.durable = true;
        self
    }
}

/// Cluster-wide telemetry sums (see [`Cluster::telemetry_summary`]): the
/// measured quantities the admission-soundness suite compares against the
/// static [`CostReport`](pier_core::admission) bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterTelemetrySummary {
    /// Sum over nodes of the `cq.accepted` gauge — rows accepted into
    /// window stores (local + root), cumulative over the run.
    pub cq_accepted: u64,
    /// Sum over nodes of the final `cq.state_bytes` gauge.
    pub cq_state_bytes: u64,
    /// Largest single-node `cq.state_bytes` gauge.
    pub max_node_state_bytes: u64,
    /// Sum over nodes of the `dht.put_batch.entries` counter.
    pub put_batch_entries: u64,
    /// Sum over nodes of the `dht.put_batch.flushes` counter.
    pub put_batch_flushes: u64,
    /// Sum over nodes of the `admission.admit` counter.
    pub admission_admit: u64,
    /// Sum over nodes of the `admission.shed` counter.
    pub admission_shed: u64,
    /// Sum over nodes of the `admission.reject` counter.
    pub admission_reject: u64,
    /// Sum over nodes of trace-ring **and** span-ring drops — records the
    /// bounded rings evicted because an export ran too long between reads.
    /// Nonzero drops mean a merged export is incomplete; experiments that
    /// assert on trace contents check [`ClusterTelemetrySummary::has_trace_drops`].
    pub trace_dropped: u64,
}

impl ClusterTelemetrySummary {
    /// True when any node's bounded trace or span ring overflowed — the
    /// flag the harness surfaces so a truncated export is never mistaken
    /// for a complete one.
    pub fn has_trace_drops(&self) -> bool {
        self.trace_dropped > 0
    }
}

/// The outcome of a query run through [`Cluster::run_query`].
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query id assigned by the proxy.
    pub query_id: u64,
    /// Virtual time at which the query was submitted.
    pub submitted_at: SimTime,
    /// Result tuples with their arrival times at the proxy's client.
    pub results: Vec<(SimTime, Tuple)>,
}

impl QueryOutcome {
    /// Latency (seconds) until the first result reached the client, if any.
    pub fn first_result_latency_secs(&self) -> Option<f64> {
        self.results
            .iter()
            .map(|(t, _)| *t)
            .min()
            .map(|t| (t.saturating_sub(self.submitted_at)) as f64 / 1_000_000.0)
    }

    /// Just the result tuples, in arrival order.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.results.iter().map(|(_, t)| t.clone()).collect()
    }
}

/// A simulated PIER deployment.
pub struct Cluster {
    /// The underlying simulator (exposed for custom experiment logic).
    pub sim: Simulator<PierNode>,
    /// The ring references of all nodes, index = node address.
    pub refs: Vec<NodeRef>,
    /// Per-node configuration, kept so crashed nodes restart identically.
    pier: PierConfig,
    /// Each node's durable "disk" (empty when the cluster is soft-only):
    /// it outlives the node's program, which is the whole point.
    durable: Vec<Option<DurableStore>>,
}

impl Cluster {
    /// Boot a cluster with pre-converged routing state and a warm
    /// distribution tree.
    pub fn start(config: &ClusterConfig) -> Self {
        let refs = make_ring_refs(config.nodes, config.seed);
        let sim_config = SimConfig {
            seed: config.seed,
            topology: config.topology.clone(),
            congestion: config.congestion,
            ..SimConfig::default()
        };
        let mut sim: Simulator<PierNode> = Simulator::new(sim_config);
        let mut durable = Vec::with_capacity(refs.len());
        for r in &refs {
            // One DurableStore per node: keys are query-scoped, so sharing
            // a store across nodes would collide their segment logs.
            let disk = config.durable.then(DurableStore::new);
            let mut pier = config.pier.clone();
            pier.durable = disk.clone();
            durable.push(disk);
            sim.add_node(PierNode::with_static_ring(*r, &refs, pier));
        }
        // Let start-up timers fire and the distribution tree form (tree
        // join announcements go out within the first refresh interval).
        sim.run_for(6_000_000);
        Cluster {
            sim,
            refs,
            pier: config.pier.clone(),
            durable,
        }
    }

    /// Crash node `i` at virtual time `at`: its program state (window
    /// stores, routing tables, installed queries) is lost; only its
    /// [`DurableStore`], held here, survives.
    pub fn crash_node_at(&mut self, i: usize, at: SimTime) {
        self.sim.fail_node_at(self.refs[i].addr, at);
    }

    /// Restart a crashed node `i` at virtual time `at` with a *cold*
    /// program but its original identity and durable disk: the overlay
    /// re-converges around the same ring position, and the next query
    /// re-dissemination rehydrates warm windows from the surviving
    /// segment logs.
    pub fn restart_node_at(&mut self, i: usize, at: SimTime) {
        let mut pier = self.pier.clone();
        pier.durable = self.durable[i].clone();
        let program = PierNode::with_static_ring(self.refs[i], &self.refs, pier);
        self.sim.restart_node_at(self.refs[i].addr, program, at);
    }

    /// Node `i`'s durable store, when the cluster was started
    /// [`ClusterConfig::durable`] (for warm-restart assertions).
    pub fn durable_store(&self, i: usize) -> Option<&DurableStore> {
        self.durable[i].as_ref()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Address of node `i`.
    pub fn addr(&self, i: usize) -> NodeAddr {
        self.refs[i].addr
    }

    /// Publish a tuple into the DHT-partitioned primary index of `table`
    /// from node `from`, hashed on `key_cols`.
    pub fn publish(&mut self, from: NodeAddr, table: &str, key_cols: &[String], tuple: Tuple) {
        let table = table.to_string();
        let key_cols = key_cols.to_vec();
        self.sim.invoke(from, move |node, ctx| {
            node.publish(ctx, &table, &key_cols, tuple);
        });
    }

    /// Publish a tuple together with secondary-index entries on `index_cols`
    /// (§3.3.3) from node `from`.
    pub fn publish_with_secondary_indexes(
        &mut self,
        from: NodeAddr,
        table: &str,
        key_cols: &[String],
        index_cols: &[String],
        tuple: Tuple,
    ) {
        let table = table.to_string();
        let key_cols = key_cols.to_vec();
        let index_cols = index_cols.to_vec();
        self.sim.invoke(from, move |node, ctx| {
            node.publish_with_secondary_indexes(ctx, &table, &key_cols, &index_cols, tuple);
        });
    }

    /// Publish a tuple into the PHT-style range index of `table` on `column`
    /// from node `from` (§3.3.3 "Range Index Substrate").
    pub fn publish_range_indexed(
        &mut self,
        from: NodeAddr,
        table: &str,
        column: &str,
        config: pier_core::RangeIndexConfig,
        tuple: Tuple,
    ) {
        let table = table.to_string();
        let column = column.to_string();
        self.sim.invoke(from, move |node, ctx| {
            node.publish_range_indexed(ctx, &table, &column, config, tuple);
        });
    }

    /// Append a row to a node-local table at `node` (data that stays where
    /// it was produced, e.g. that node's firewall log).
    pub fn add_local_row(&mut self, node: NodeAddr, table: &str, tuple: Tuple) {
        let table = table.to_string();
        self.sim.with_node_mut(node, move |n| {
            n.add_local_row(&table, tuple);
        });
    }

    /// Number of nodes that received at least one message since the last
    /// [`Cluster::reset_stats`] — the "nodes contacted" metric of the
    /// dissemination experiments.
    pub fn nodes_contacted(&self) -> usize {
        self.sim
            .stats()
            .iter()
            .filter(|(_, s)| s.msgs_recv > 0)
            .count()
    }

    /// Let the network quiesce for `micros` of virtual time.
    pub fn settle(&mut self, micros: u64) {
        self.sim.run_for(micros);
    }

    /// Submit `plan` at `proxy`, run the simulation until the query's
    /// timeout has comfortably passed, and collect the results delivered to
    /// the proxy's client.
    pub fn run_query(&mut self, proxy: NodeAddr, plan: QueryPlan) -> QueryOutcome {
        self.run_query_observed(proxy, plan).0
    }

    /// Like [`Cluster::run_query`], but also reports how many nodes had the
    /// query's opgraphs installed shortly before the timeout — the
    /// "nodes running the query" metric of the dissemination ablations
    /// (§3.3.3), which is independent of background overlay maintenance
    /// traffic.
    pub fn run_query_observed(
        &mut self,
        proxy: NodeAddr,
        plan: QueryPlan,
    ) -> (QueryOutcome, usize) {
        let submitted_at = self.sim.now();
        let timeout = plan.timeout;
        // Drain previous outputs so this query's results are isolated.
        let _ = self.sim.drain_outputs();
        let mut issued = 0u64;
        self.sim.invoke(proxy, |node, ctx| {
            issued = node.submit_query(ctx, plan);
        });
        // Run to just before the timeout, observe where the query landed,
        // then let it finish.
        self.sim.run_for(timeout.saturating_sub(1_000_000));
        let installed = self
            .refs
            .iter()
            .filter(|r| {
                self.sim
                    .node(r.addr)
                    .is_some_and(|n| n.installed_queries() > 0)
            })
            .count();
        self.sim
            .run_for(timeout - timeout.saturating_sub(1_000_000) + 3_000_000);
        let results = self
            .sim
            .drain_outputs()
            .into_iter()
            .filter_map(|o| match o.value {
                PierOut::Result { query_id, tuple } if query_id == issued && o.node == proxy => {
                    Some((o.time, tuple))
                }
                _ => None,
            })
            .collect();
        (
            QueryOutcome {
                query_id: issued,
                submitted_at,
                results,
            },
            installed,
        )
    }

    /// Measure the overlay's background maintenance traffic over `micros` of
    /// idle virtual time (no query running).  Experiments subtract this from
    /// a query window of the same length to isolate query-related messages.
    /// Leaves the traffic counters reset.
    pub fn idle_baseline_msgs(&mut self, micros: u64) -> u64 {
        self.reset_stats();
        self.sim.run_for(micros);
        let msgs = self.sim.stats().total_msgs;
        self.reset_stats();
        msgs
    }

    /// Reset the per-node traffic counters (used between experiment phases).
    pub fn reset_stats(&mut self) {
        self.sim.stats_mut().reset();
    }

    /// A node's telemetry handle (a cheap clone of the shared hub; inert
    /// when the cluster runs without telemetry).
    pub fn telemetry(&self, node: NodeAddr) -> Option<Telemetry> {
        self.sim.node(node).map(|n| n.telemetry().clone())
    }

    /// Cluster-wide telemetry sums over all live nodes — the measured side
    /// of the admission-soundness comparison (all zeros when the cluster
    /// runs without telemetry).
    pub fn telemetry_summary(&self) -> ClusterTelemetrySummary {
        let mut s = ClusterTelemetrySummary::default();
        for addr in self.sim.alive_nodes() {
            let Some(tel) = self.telemetry(addr) else {
                continue;
            };
            let accepted = tel.gauge_value("cq.accepted").unwrap_or(0.0) as u64;
            let state_bytes = tel.gauge_value("cq.state_bytes").unwrap_or(0.0) as u64;
            s.cq_accepted += accepted;
            s.cq_state_bytes += state_bytes;
            s.max_node_state_bytes = s.max_node_state_bytes.max(state_bytes);
            s.put_batch_entries += tel.counter("dht.put_batch.entries");
            s.put_batch_flushes += tel.counter("dht.put_batch.flushes");
            s.admission_admit += tel.counter("admission.admit");
            s.admission_shed += tel.counter("admission.shed");
            s.admission_reject += tel.counter("admission.reject");
            s.trace_dropped += tel
                .with(|h| h.trace_dropped() + h.spans_dropped())
                .unwrap_or(0);
        }
        s
    }

    /// Every live node's recorded spans, keyed by node address — the input
    /// shape [`pier_trace::merge_spans`] expects.  Nodes without telemetry
    /// contribute nothing; node order follows the ring (ascending address),
    /// though the merger's total order makes collection order irrelevant.
    pub fn node_spans(&self) -> Vec<(u32, Vec<SpanRecord>)> {
        let mut per_node = Vec::new();
        for r in &self.refs {
            let Some(spans) = self
                .telemetry(r.addr)
                .and_then(|tel| tel.with(|h| h.spans().copied().collect::<Vec<_>>()))
            else {
                continue;
            };
            if !spans.is_empty() {
                per_node.push((r.addr.0, spans));
            }
        }
        per_node
    }

    /// Every live node's structured trace events, keyed by node address —
    /// the input shape [`pier_trace::merged_trace_jsonl`] expects.
    pub fn node_traces(&self) -> Vec<(u32, Vec<TraceEvent>)> {
        let mut per_node = Vec::new();
        for r in &self.refs {
            let Some(events) = self
                .telemetry(r.addr)
                .and_then(|tel| tel.with(|h| h.trace().cloned().collect::<Vec<_>>()))
            else {
                continue;
            };
            if !events.is_empty() {
                per_node.push((r.addr.0, events));
            }
        }
        per_node
    }

    /// The cluster-wide span stream under the merger's total order
    /// (`(start, node, ordinal)` ascending — equal seeds ⇒ identical).
    pub fn merged_spans(&self) -> Vec<pier_trace::NodeSpan> {
        pier_trace::merge_spans(&self.node_spans())
    }

    /// The merged all-nodes span export as JSONL (one span per line, a
    /// leading `"node"` key on each).
    pub fn merged_span_jsonl(&self) -> String {
        pier_trace::merged_span_jsonl(&self.merged_spans())
    }

    /// The merged all-nodes structured-event trace as JSONL — the
    /// cluster-wide form of the per-node `trace_jsonl` export.
    pub fn merged_trace_jsonl(&self) -> String {
        pier_trace::merged_trace_jsonl(&self.node_traces())
    }

    /// Feed the simulator's per-node [`NetStats`](pier_runtime::NetStats)
    /// into each node's telemetry hub as `host.*` gauges — the host-level
    /// counterpart of the node's own `net.*` counters (a physical
    /// deployment syncs `UdpCc::stats` the same way, as `udpcc.*`).
    pub fn sync_host_stats(&mut self) {
        for addr in self.sim.alive_nodes() {
            let stats = self.sim.stats().node(addr);
            let Some(tel) = self.telemetry(addr) else {
                continue;
            };
            if !tel.is_enabled() {
                continue;
            }
            tel.gauge("host.msgs_sent", stats.msgs_sent as f64);
            tel.gauge("host.msgs_recv", stats.msgs_recv as f64);
            tel.gauge("host.bytes_sent", stats.bytes_sent as f64);
            tel.gauge("host.bytes_recv", stats.bytes_recv as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::{Dissemination, Expr, PlanBuilder, Value};

    #[test]
    fn broadcast_selection_returns_matching_published_rows() {
        let mut cluster = Cluster::start(&ClusterConfig::lan(12, 5));
        // Publish an inverted-index style table hashed on keyword.
        let key_cols = vec!["keyword".to_string()];
        for (i, (kw, file)) in [("rock", "a.mp3"), ("rock", "b.mp3"), ("jazz", "c.mp3")]
            .iter()
            .enumerate()
        {
            let tuple = Tuple::new(
                "files",
                vec![("keyword", Value::str(kw)), ("file", Value::str(file))],
            );
            let from = cluster.addr(i % cluster.len());
            cluster.publish(from, "files", &key_cols, tuple);
        }
        cluster.settle(3_000_000);
        let proxy = cluster.addr(7);
        let plan = PlanBuilder::select(
            proxy,
            "files",
            Expr::eq("keyword", "rock"),
            vec!["file".to_string()],
            10_000_000,
        );
        let outcome = cluster.run_query(proxy, plan);
        let files: Vec<String> = outcome
            .tuples()
            .iter()
            .filter_map(|t| t.get("file").and_then(|v| v.as_str().map(String::from)))
            .collect();
        assert_eq!(
            outcome.results.len(),
            2,
            "exactly the two rock files: {files:?}"
        );
        assert!(files.contains(&"a.mp3".to_string()));
        assert!(files.contains(&"b.mp3".to_string()));
        assert!(outcome.first_result_latency_secs().unwrap() < 5.0);
    }

    #[test]
    fn bykey_dissemination_reaches_only_the_partition_and_answers() {
        let mut cluster = Cluster::start(&ClusterConfig::lan(16, 9));
        let key_cols = vec!["keyword".to_string()];
        for i in 0..10 {
            let tuple = Tuple::new(
                "files",
                vec![
                    ("keyword", Value::str("obscure")),
                    ("file", Value::Str(format!("rare-{i}.ogg").into())),
                ],
            );
            let from = cluster.addr(i % cluster.len());
            cluster.publish(from, "files", &key_cols, tuple);
        }
        cluster.settle(3_000_000);
        let proxy = cluster.addr(3);
        let plan = PlanBuilder::new(proxy)
            .dissemination(Dissemination::ByKey {
                namespace: "files".into(),
                key: Value::Str("obscure".into()).key_string(),
            })
            .timeout(10_000_000)
            .opgraph(pier_core::OpGraph {
                id: 0,
                source: pier_core::SourceSpec::Table {
                    namespace: "files".into(),
                },
                join: None,
                ops: vec![pier_core::OperatorSpec::Selection(Expr::eq(
                    "keyword", "obscure",
                ))],
                sink: pier_core::SinkSpec::ToProxy,
            })
            .build();
        let outcome = cluster.run_query(proxy, plan);
        assert_eq!(outcome.results.len(), 10);
    }

    #[test]
    fn hierarchical_count_group_by_matches_ground_truth() {
        let mut cluster = Cluster::start(&ClusterConfig::lan(10, 21));
        // Node-local event logs: source "10.0.0.1" appears 3x as often.
        let mut expected: std::collections::HashMap<&str, i64> = Default::default();
        for i in 0..cluster.len() {
            for j in 0..6 {
                let src = if j % 2 == 0 { "10.0.0.1" } else { "10.0.0.9" };
                *expected.entry(src).or_default() += 1;
                let tuple = Tuple::new(
                    "events",
                    vec![("src", Value::str(src)), ("port", Value::Int(j as i64))],
                );
                let addr = cluster.addr(i);
                cluster.add_local_row(addr, "events", tuple);
            }
        }
        let proxy = cluster.addr(0);
        let plan = PlanBuilder::top_k_group_count(proxy, "events", "src", 10, 20_000_000);
        let outcome = cluster.run_query(proxy, plan);
        assert!(
            !outcome.results.is_empty(),
            "aggregation query must return grouped counts"
        );
        for t in outcome.tuples() {
            let src = t.get("src").and_then(|v| v.as_str()).unwrap().to_string();
            let count = t.get("count").and_then(pier_core::Value::as_i64).unwrap();
            assert_eq!(count, expected[src.as_str()], "count for {src}");
        }
    }
}
