//! The `many_tenants` workload: N constant-varied monitoring queries.
//!
//! The multi-tenant network-monitoring scenario the paper's scale target
//! implies: tens to hundreds of users each install the *same* standing
//! windowed aggregate over the shared packet stream, differing only in the
//! constant of their `WHERE src = <mine>` predicate.  The driver installs
//! one such continuous query per tenant (optionally staggered mid-stream,
//! optionally torn down early), streams Zipf-skewed packet events to every
//! node for many windows of virtual time — optionally with node churn —
//! and collects each tenant's per-window result stream at that tenant's
//! own proxy.
//!
//! Run with [`ManyTenantsConfig::sharing`] on, the cluster executes the
//! tenants through `pier-mqo` share groups (one shared dataflow, one
//! predicate-index scan per chunk, one partial stream per group); off,
//! every tenant runs its own dataflow.  The mqo equivalence suite runs the
//! same stream both ways and pins identical per-tenant results; the
//! `mqo_shared` bench reports the throughput and traffic ratio.

use crate::cluster::{Cluster, ClusterConfig};
use pier_core::{sqlish, PierConfig, PierNode, PierOut, Tuple, Value};
use pier_dht::NodeRef;
use pier_runtime::{LatencyCdf, NodeAddr, Rng64, SimTime, Zipf};
use std::collections::BTreeMap;

/// Configuration of a many-tenants run.
#[derive(Debug, Clone)]
pub struct ManyTenantsConfig {
    /// Number of nodes at boot.
    pub nodes: usize,
    /// Determinism seed (also controls the packet stream, which is
    /// identical for equal seeds regardless of `sharing`).
    pub seed: u64,
    /// Number of tenant queries; tenant `i` watches source `i`.
    pub tenants: usize,
    /// Execute tenants through the `pier-mqo` sharing layer.
    pub sharing: bool,
    /// Events generated per node per second of virtual time.
    pub events_per_node_per_sec: u64,
    /// Distinct packet sources (at least `tenants`; extra sources generate
    /// rows no tenant selects).
    pub sources: usize,
    /// Zipf skew of source popularity.
    pub zipf_theta: f64,
    /// How long the stream runs (virtual seconds).
    pub run_secs: u64,
    /// This many tenants (from the high end) install mid-stream, at
    /// one-third of the run.
    pub late_installs: usize,
    /// This many tenants (from the low end) tear down mid-stream, at
    /// two-thirds of the run (their query timeout expires there).
    pub early_uninstalls: usize,
    /// Churn: `(at_sec, kills, joins)` — at virtual second `at_sec`, fail
    /// `kills` non-proxy nodes and boot `joins` fresh ones.
    pub churn: Option<(u64, usize, usize)>,
    /// Per-node configuration (the driver sets `sharing` on it).
    pub pier: PierConfig,
}

impl ManyTenantsConfig {
    /// A standard run: `tenants` constant-varied queries over a steady
    /// stream, all installed up front.
    pub fn new(nodes: usize, tenants: usize, run_secs: u64, seed: u64) -> Self {
        ManyTenantsConfig {
            nodes,
            seed,
            tenants,
            sharing: true,
            events_per_node_per_sec: 8,
            sources: tenants + tenants / 4,
            zipf_theta: 0.6,
            run_secs,
            late_installs: 0,
            early_uninstalls: 0,
            churn: None,
            pier: PierConfig::default(),
        }
    }

    /// The tenant's source address and standing query.
    pub fn tenant_query(&self, tenant: usize) -> (String, String) {
        let src = source_addr(tenant);
        let sql = format!(
            "SELECT src, COUNT(*) FROM packets WHERE src = '{src}' \
             GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        );
        (src, sql)
    }
}

/// Source address of rank `i` (shared by tenants and the generator).
fn source_addr(rank: usize) -> String {
    format!("10.0.{}.{}", (rank / 256) % 256, rank % 256)
}

/// The admission decision a tenant's proxy reported for its query
/// (captured from [`PierOut::Admission`]; absent when the cluster runs
/// without an admission layer).
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// Whether the query was admitted (possibly shed to sampling).
    pub accepted: bool,
    /// Sampling stride imposed by shed-to-sampling (1 = full stream).
    pub sample_every: u32,
    /// The machine-readable decision envelope (JSON) from the analyzer.
    pub report: String,
}

/// One tenant's collected results.
#[derive(Debug, Clone)]
pub struct TenantResult {
    /// The tenant's query id.
    pub query_id: u64,
    /// The tenant's proxy node.
    pub proxy: NodeAddr,
    /// The source this tenant watches.
    pub src: String,
    /// Admission decision for this tenant's query, if an admission layer
    /// was configured on the cluster.
    pub admission: Option<AdmissionOutcome>,
    /// Virtual time the tenant's query was submitted.
    pub installed_at: SimTime,
    /// Virtual time the tenant's query times out.
    pub ends_at: SimTime,
    /// Final per-window rows (last emission wins, retractions applied),
    /// keyed by `(window_start, window_end)`.
    pub windows: BTreeMap<(SimTime, SimTime), Vec<Tuple>>,
    /// Result latency samples (microseconds): per result row, the delay
    /// from the row's window *end* — the first instant the window's answer
    /// can exist — to its arrival at this tenant's proxy.
    pub result_latency: LatencyCdf,
}

impl TenantResult {
    /// This tenant's result-latency percentile in microseconds
    /// (`None` until a result arrived).
    pub fn latency_percentile_us(&mut self, p: f64) -> Option<f64> {
        self.result_latency.percentile(p)
    }
}

/// Result of a many-tenants run.
#[derive(Debug)]
pub struct ManyTenantsOutcome {
    /// Per-tenant results, indexed by tenant rank.
    pub tenants: Vec<TenantResult>,
    /// Total events fed to the cluster.
    pub events: u64,
    /// Virtual instant the stream started / ended.
    pub stream: (SimTime, SimTime),
    /// Wall-clock seconds spent driving the simulation from first install
    /// to full drain (the bench's throughput denominator).
    pub wall_secs: f64,
    /// Messages delivered between stream start and end of drain.
    pub total_msgs: u64,
    /// Bytes delivered over the same interval.
    pub total_bytes: u64,
    /// Largest number of live share groups observed on any node (0 without
    /// sharing).
    pub max_shared_groups: usize,
    /// Virtual instant the configured churn fired, if it did.
    pub churn_at: Option<SimTime>,
    /// Share groups still alive anywhere after the run's tenants ended
    /// (leak detector for refcounted teardown).
    pub residual_groups: usize,
    /// Share-group members still alive anywhere after the run.
    pub residual_members: usize,
    /// Cluster-wide telemetry sums at the end of the run (all zeros when
    /// the cluster ran without telemetry).
    pub telemetry: crate::cluster::ClusterTelemetrySummary,
}

impl ManyTenantsOutcome {
    /// Sustained ingest rate in rows per *wall-clock* second — the bench's
    /// headline shared-vs-independent comparison.
    pub fn rows_per_wall_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }

    /// Cross-tenant result-latency summary in microseconds: the median of
    /// the per-tenant p50s and the worst per-tenant p99 (`None` until some
    /// tenant received a result).  The bench emits both as metric lines.
    pub fn result_latency_summary_us(&mut self) -> Option<(f64, f64)> {
        let mut p50s = LatencyCdf::new();
        let mut worst_p99 = f64::NEG_INFINITY;
        for t in &mut self.tenants {
            let Some(p50) = t.result_latency.percentile(50.0) else {
                continue;
            };
            p50s.add(p50);
            worst_p99 = worst_p99.max(t.result_latency.percentile(99.0)?);
        }
        Some((p50s.percentile(50.0)?, worst_p99))
    }
}

/// Run the many-tenants workload.
pub fn many_tenants(cfg: &ManyTenantsConfig) -> ManyTenantsOutcome {
    assert!(cfg.sources >= cfg.tenants, "every tenant needs its source");
    let mut cluster_cfg = ClusterConfig::lan(cfg.nodes, cfg.seed);
    cluster_cfg.pier = cfg.pier.clone();
    cluster_cfg.pier.sharing = if cfg.sharing {
        Some(pier_mqo::layer)
    } else {
        None
    };
    let cluster_cfg = cluster_cfg.with_liveness_timeout(3_000_000);
    let mut cluster = Cluster::start(&cluster_cfg);
    let _ = cluster.sim.drain_outputs();
    let run_micros = cfg.run_secs * 1_000_000;
    let wall_start = std::time::Instant::now();

    // Install the up-front tenants; late ones install at run/3, early
    // teardowns expire their timeout at 2*run/3.
    let late_from = cfg.tenants.saturating_sub(cfg.late_installs);
    let stream_begin_estimate = cluster.sim.now() + 1_000_000;
    let mut tenants: Vec<TenantResult> = Vec::with_capacity(cfg.tenants);
    let submit = |cluster: &mut Cluster, tenant: usize, ends_at: SimTime| -> TenantResult {
        let (src, sql) = cfg.tenant_query(tenant);
        let proxy = cluster.addr(tenant % cfg.nodes);
        let now = cluster.sim.now();
        let mut plan = sqlish::compile(&sql, proxy, ends_at.saturating_sub(now).max(1_000_000))
            .expect("tenant query compiles");
        // Tenant rank doubles as the SLO tenant id, so per-tenant budgets
        // in `PierConfig::slo` attach to the right queries.
        plan.tenant = tenant as u64;
        let mut query_id = 0u64;
        cluster.sim.invoke(proxy, |node, ctx| {
            query_id = node.submit_query(ctx, plan);
        });
        TenantResult {
            query_id,
            proxy,
            src,
            admission: None,
            installed_at: now,
            ends_at,
            windows: BTreeMap::new(),
            result_latency: LatencyCdf::new(),
        }
    };
    let default_end = stream_begin_estimate + run_micros + 20_000_000;
    let early_end = stream_begin_estimate + (run_micros / 3) * 2;
    for tenant in 0..late_from {
        let ends_at = if tenant < cfg.early_uninstalls {
            early_end
        } else {
            default_end
        };
        let t = submit(&mut cluster, tenant, ends_at);
        tenants.push(t);
    }
    // Let dissemination reach everyone, then isolate stream traffic.
    cluster.settle(1_000_000);
    cluster.reset_stats();

    let mut rng = Rng64::new(cfg.seed ^ 0x7E4A47);
    let zipf = Zipf::new(cfg.sources.max(1), cfg.zipf_theta);
    let tick = 250_000u64; // 4 ingest rounds per virtual second
    let mut events = 0u64;
    let stream_begin = cluster.sim.now();
    let stream_end = stream_begin + run_micros;
    let late_at = stream_begin + run_micros / 3;
    let mut churned = false;
    let mut churn_at = None;
    let mut late_installed = false;
    let mut max_shared_groups = 0usize;
    while cluster.sim.now() < stream_end {
        let now = cluster.sim.now();
        if !late_installed && cfg.late_installs > 0 && now >= late_at {
            late_installed = true;
            for tenant in late_from..cfg.tenants {
                let t = submit(&mut cluster, tenant, default_end);
                tenants.push(t);
            }
            cluster.settle(1_000_000);
            continue;
        }
        if let Some((at_sec, kills, joins)) = cfg.churn {
            if !churned && now >= stream_begin + at_sec * 1_000_000 {
                churned = true;
                churn_at = Some(now);
                let proxies: Vec<NodeAddr> = tenants.iter().map(|t| t.proxy).collect();
                let alive: Vec<NodeAddr> = cluster
                    .sim
                    .alive_nodes()
                    .into_iter()
                    .filter(|a| !proxies.contains(a))
                    .collect();
                for victim in alive.iter().rev().take(kills) {
                    cluster.sim.fail_node_at(*victim, now);
                }
                for _ in 0..joins {
                    let addr = NodeAddr(cluster.sim.node_count() as u32);
                    let me = NodeRef {
                        id: pier_dht::Id(rng.next_u64()),
                        addr,
                    };
                    let mut ring = cluster.refs.clone();
                    ring.push(me);
                    let assigned = cluster.sim.add_node(PierNode::with_static_ring(
                        me,
                        &ring,
                        cluster_cfg.pier.clone(),
                    ));
                    debug_assert_eq!(assigned, addr);
                }
                cluster.settle(1);
                continue;
            }
        }
        let per_tick = (cfg.events_per_node_per_sec * tick / 1_000_000).max(1) as usize;
        for addr in cluster.sim.alive_nodes() {
            for _ in 0..per_tick {
                // Zipf ranks are 1-based; sources (and tenants) are 0-based.
                let rank = zipf.sample(&mut rng) - 1;
                let tuple = Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(source_addr(rank).into())),
                        ("ts", Value::Int(now as i64)),
                        ("len", Value::Int(40 + (rng.index(1400) as i64))),
                    ],
                );
                events += 1;
                cluster.sim.invoke(addr, move |node, ctx| {
                    node.ingest(ctx, "packets", tuple);
                });
            }
        }
        cluster.sim.run_for(tick);
        if cfg.sharing {
            for addr in cluster.sim.alive_nodes() {
                if let Some(stats) = cluster
                    .sim
                    .node(addr)
                    .and_then(pier_core::PierNode::sharing_stats)
                {
                    max_shared_groups = max_shared_groups.max(stats.groups);
                }
            }
        }
    }
    // Drain: trailing windows close and travel; every tenant's timeout —
    // and the lease lapse of any straggler node still holding the query —
    // has comfortably passed at the end, so teardown is observable.
    cluster.sim.run_for(run_micros / 2 + 40_000_000);
    let total_msgs = cluster.sim.stats().total_msgs;
    let total_bytes = cluster.sim.stats().total_bytes;
    let wall_secs = wall_start.elapsed().as_secs_f64();

    // Collect each tenant's per-window rows at that tenant's proxy.
    let by_query: BTreeMap<u64, usize> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.query_id, i))
        .collect();
    for out in cluster.sim.drain_outputs() {
        match out.value {
            PierOut::WindowResult {
                query_id,
                window_start,
                window_end,
                retract,
                tuple,
            } => {
                let Some(&idx) = by_query.get(&query_id) else {
                    continue;
                };
                if tenants[idx].proxy != out.node {
                    continue;
                }
                let tenant = &mut tenants[idx];
                if !retract {
                    tenant
                        .result_latency
                        .add(out.time.saturating_sub(window_end) as f64);
                }
                let rows = tenant
                    .windows
                    .entry((window_start, window_end))
                    .or_default();
                if retract {
                    rows.retain(|t| *t != tuple);
                } else {
                    rows.retain(|t| t.get("src") != tuple.get("src"));
                    rows.push(tuple);
                }
            }
            PierOut::Admission {
                query_id,
                accepted,
                sample_every,
                report,
                ..
            } => {
                let Some(&idx) = by_query.get(&query_id) else {
                    continue;
                };
                if tenants[idx].proxy != out.node {
                    continue;
                }
                tenants[idx].admission = Some(AdmissionOutcome {
                    accepted,
                    sample_every,
                    report,
                });
            }
            _ => {}
        }
    }
    // Leak detection: after every tenant ended, no node may retain share
    // groups or members.
    let mut residual_groups = 0usize;
    let mut residual_members = 0usize;
    for addr in cluster.sim.alive_nodes() {
        if let Some(stats) = cluster
            .sim
            .node(addr)
            .and_then(pier_core::PierNode::sharing_stats)
        {
            residual_groups += stats.groups;
            residual_members += stats.members;
        }
    }
    ManyTenantsOutcome {
        tenants,
        events,
        stream: (stream_begin, stream_end),
        wall_secs,
        total_msgs,
        total_bytes,
        max_shared_groups,
        churn_at,
        residual_groups,
        residual_members,
        telemetry: cluster.telemetry_summary(),
    }
}
