//! # pier-gnutella — a Gnutella-style flooding-search baseline
//!
//! Figure 1 of the paper compares PIER's file-sharing search against the
//! native Gnutella network on real user queries.  We cannot replay the live
//! Gnutella network, so this crate implements the protocol family Gnutella
//! belongs to — an unstructured random-graph overlay with TTL-limited query
//! flooding and reverse-path query hits — as a [`Program`] that runs under
//! the same simulator as PIER.  The property that matters for the figure is
//! preserved: flooding finds *popular* (widely replicated) content quickly,
//! but rare items are often missed entirely or found only after the flood
//! has spread widely.

use pier_runtime::{NodeAddr, Program, ProgramContext, WireSize};
use std::collections::{HashMap, HashSet};

/// A shared file: a name made of keywords plus an identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFile {
    /// File identifier.
    pub file_id: u64,
    /// Keywords describing the file.
    pub keywords: Vec<String>,
}

/// Messages of the flooding protocol.
#[derive(Debug, Clone)]
pub enum GnutellaMsg {
    /// A keyword query being flooded.
    Query {
        /// Unique query identifier (origin address is the high half).
        query_id: u64,
        /// Keywords that must all appear in a matching file.
        keywords: Vec<String>,
        /// Remaining hops before the flood stops.
        ttl: u32,
    },
    /// A query hit travelling back toward the originator.
    QueryHit {
        /// The query being answered.
        query_id: u64,
        /// Identifier of the matching file.
        file_id: u64,
        /// Node holding the file.
        holder: NodeAddr,
    },
}

impl WireSize for GnutellaMsg {
    fn wire_size(&self) -> usize {
        match self {
            GnutellaMsg::Query { keywords, .. } => {
                8 + 4 + keywords.iter().map(|k| 4 + k.len()).sum::<usize>()
            }
            GnutellaMsg::QueryHit { .. } => 8 + 8 + 6,
        }
    }
}

/// Client-visible output: a hit for a locally issued query.
#[derive(Debug, Clone)]
pub struct GnutellaHit {
    /// The query that matched.
    pub query_id: u64,
    /// The matching file.
    pub file_id: u64,
    /// The node holding it.
    pub holder: NodeAddr,
}

/// A node in the unstructured overlay.
#[derive(Debug, Clone, Default)]
pub struct GnutellaNode {
    /// Fixed neighbor set (the random overlay graph).
    pub neighbors: Vec<NodeAddr>,
    /// Files shared by this node.
    pub library: Vec<SharedFile>,
    seen_queries: HashSet<u64>,
    origins: HashMap<u64, NodeAddr>,
    next_query_seq: u64,
}

impl GnutellaNode {
    /// Create a node with the given neighbors and shared files.
    pub fn new(neighbors: Vec<NodeAddr>, library: Vec<SharedFile>) -> Self {
        GnutellaNode {
            neighbors,
            library,
            ..Default::default()
        }
    }

    /// Issue a keyword query from this node with the given TTL.  Returns the
    /// query id; hits arrive as [`GnutellaHit`] outputs.
    pub fn issue_query(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        keywords: Vec<String>,
        ttl: u32,
    ) -> u64 {
        self.next_query_seq += 1;
        let query_id = ((ctx.me().0 as u64) << 32) | self.next_query_seq;
        self.seen_queries.insert(query_id);
        self.origins.insert(query_id, ctx.me());
        // Answer from the local library first, then flood.
        let local_hits: Vec<u64> = self.matching_files(&keywords);
        for file_id in local_hits {
            ctx.output(GnutellaHit {
                query_id,
                file_id,
                holder: ctx.me(),
            });
        }
        for n in &self.neighbors {
            ctx.send(
                *n,
                GnutellaMsg::Query {
                    query_id,
                    keywords: keywords.clone(),
                    ttl,
                },
            );
        }
        query_id
    }

    fn matching_files(&self, keywords: &[String]) -> Vec<u64> {
        self.library
            .iter()
            .filter(|f| keywords.iter().all(|k| f.keywords.contains(k)))
            .map(|f| f.file_id)
            .collect()
    }
}

impl Program for GnutellaNode {
    type Msg = GnutellaMsg;
    type Timer = ();
    type Out = GnutellaHit;

    fn on_start(&mut self, _ctx: &mut ProgramContext<Self>) {}

    fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
        match msg {
            GnutellaMsg::Query {
                query_id,
                keywords,
                ttl,
            } => {
                if !self.seen_queries.insert(query_id) {
                    return; // already processed this flood
                }
                // Remember the reverse path towards the originator.
                self.origins.entry(query_id).or_insert(from);
                for file_id in self.matching_files(&keywords) {
                    let holder = ctx.me();
                    ctx.send(
                        from,
                        GnutellaMsg::QueryHit {
                            query_id,
                            file_id,
                            holder,
                        },
                    );
                }
                if ttl > 1 {
                    for n in self.neighbors.clone() {
                        if n != from {
                            ctx.send(
                                n,
                                GnutellaMsg::Query {
                                    query_id,
                                    keywords: keywords.clone(),
                                    ttl: ttl - 1,
                                },
                            );
                        }
                    }
                }
            }
            GnutellaMsg::QueryHit {
                query_id,
                file_id,
                holder,
            } => {
                match self.origins.get(&query_id) {
                    Some(origin) if *origin == ctx.me() => ctx.output(GnutellaHit {
                        query_id,
                        file_id,
                        holder,
                    }),
                    Some(origin) => {
                        // Forward along the reverse path.
                        let next = *origin;
                        ctx.send(
                            next,
                            GnutellaMsg::QueryHit {
                                query_id,
                                file_id,
                                holder,
                            },
                        );
                    }
                    None => {}
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut ProgramContext<Self>, _timer: Self::Timer) {}
}

/// Build a connected random overlay graph of `n` nodes with average degree
/// `degree` (a ring plus random chords), returning each node's neighbor list.
pub fn random_overlay(n: usize, degree: usize, seed: u64) -> Vec<Vec<NodeAddr>> {
    let mut rng = pier_runtime::Rng64::new(seed);
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    // Ring for connectivity.
    for i in 0..n {
        let j = (i + 1) % n;
        adj[i].insert(j);
        adj[j].insert(i);
    }
    // Random chords up to the target degree.
    for i in 0..n {
        while adj[i].len() < degree.min(n - 1) {
            let j = rng.index(n);
            if j != i {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    adj.into_iter()
        .map(|set| set.into_iter().map(|i| NodeAddr(i as u32)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_runtime::{SimConfig, Simulator};

    fn build_network(
        n: usize,
        files_at: &[(usize, &str)],
        seed: u64,
    ) -> (Simulator<GnutellaNode>, Vec<NodeAddr>) {
        let topology = random_overlay(n, 4, seed);
        let mut sim: Simulator<GnutellaNode> = Simulator::new(SimConfig::lan(seed));
        let mut addrs = Vec::new();
        for (i, neighbors) in topology.into_iter().enumerate() {
            let library: Vec<SharedFile> = files_at
                .iter()
                .filter(|(at, _)| *at == i)
                .enumerate()
                .map(|(k, (_, kw))| SharedFile {
                    file_id: (i * 100 + k) as u64,
                    keywords: vec![kw.to_string()],
                })
                .collect();
            addrs.push(sim.add_node(GnutellaNode::new(neighbors, library)));
        }
        sim.run_until(1_000);
        (sim, addrs)
    }

    #[test]
    fn overlay_graph_is_connected_and_has_degree() {
        let adj = random_overlay(50, 5, 3);
        assert_eq!(adj.len(), 50);
        for (i, neighbors) in adj.iter().enumerate() {
            assert!(neighbors.len() >= 2, "node {i} under-connected");
            assert!(!neighbors.contains(&NodeAddr(i as u32)), "self-loop at {i}");
        }
    }

    #[test]
    fn flooding_finds_replicated_content() {
        // The keyword "rock" is widely replicated: flooding finds it.
        let placements: Vec<(usize, &str)> = (0..30).step_by(3).map(|i| (i, "rock")).collect();
        let (mut sim, addrs) = build_network(30, &placements, 7);
        sim.invoke(addrs[1], |node, ctx| {
            node.issue_query(ctx, vec!["rock".to_string()], 4);
        });
        sim.run_for(5_000_000);
        let hits = sim.outputs().iter().filter(|o| o.node == addrs[1]).count();
        assert!(hits >= 1, "popular content must be found by flooding");
    }

    #[test]
    fn rare_content_outside_ttl_horizon_is_missed() {
        // One copy of "obscure" far from the querier; a TTL-2 flood in a
        // 100-node sparse graph cannot reach the whole network.
        let (mut sim, addrs) = build_network(100, &[(60, "obscure")], 11);
        sim.invoke(addrs[0], |node, ctx| {
            node.issue_query(ctx, vec!["obscure".to_string()], 2);
        });
        sim.run_for(10_000_000);
        let hits = sim.outputs().iter().filter(|o| o.node == addrs[0]).count();
        assert_eq!(hits, 0, "TTL-limited flood should miss the rare item");
    }

    #[test]
    fn duplicate_floods_are_suppressed() {
        let (mut sim, addrs) = build_network(20, &[(5, "x")], 13);
        sim.invoke(addrs[0], |node, ctx| {
            node.issue_query(ctx, vec!["x".to_string()], 8);
        });
        sim.run_for(5_000_000);
        // Even with a generous TTL in a 20-node network, duplicate
        // suppression bounds the number of messages well below the
        // worst-case exponential flood.
        let msgs = sim.stats().total_msgs;
        assert!(msgs < 20 * 8 * 4, "flood not suppressed: {msgs} messages");
        let hits = sim.outputs().iter().filter(|o| o.node == addrs[0]).count();
        assert_eq!(hits, 1);
    }
}
