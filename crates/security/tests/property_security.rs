//! Property-based tests for the security primitives: the invariants that
//! make the §4.1 defenses sound must hold for arbitrary inputs, not just the
//! hand-picked unit-test cases.

use pier_security::{
    sketch::{CountSketch, SumSketch},
    spot_check::{Commitment, MerkleTree, SpotChecker},
    topology::AggregationTopology,
    TokenBucket,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// Merging duplicate-insensitive sketches is commutative, associative
    /// enough for aggregation (merge order never changes the result), and
    /// idempotent.
    #[test]
    fn count_sketch_merge_order_never_matters(
        items_a in prop::collection::vec(any::<u64>(), 0..200),
        items_b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut a = CountSketch::new(32);
        let mut b = CountSketch::new(32);
        for i in &items_a { a.insert(*i); }
        for i in &items_b { b.insert(*i); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotence: merging b in twice changes nothing.
        let mut abb = ab.clone();
        abb.merge(&b);
        prop_assert_eq!(&ab, &abb);
        // Building one sketch over the concatenation gives the same bitmaps.
        let mut joint = CountSketch::new(32);
        for i in items_a.iter().chain(items_b.iter()) { joint.insert(*i); }
        prop_assert_eq!(&joint, &ab);
    }

    /// Duplicate insertions never change a sketch.
    #[test]
    fn count_sketch_is_a_set(items in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut once = CountSketch::new(16);
        let mut repeated = CountSketch::new(16);
        for i in &items {
            once.insert(*i);
            repeated.insert(*i);
            repeated.insert(*i);
        }
        for i in items.iter().rev() {
            repeated.insert(*i);
        }
        prop_assert_eq!(once, repeated);
    }

    /// The sketch estimate is monotone: inserting more items never lowers it.
    #[test]
    fn count_sketch_estimate_is_monotone(
        base in prop::collection::vec(any::<u64>(), 1..100),
        extra in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut s = CountSketch::new(32);
        for i in &base { s.insert(*i); }
        let before = s.estimate();
        for i in &extra { s.insert(*i); }
        prop_assert!(s.estimate() >= before - 1e-9);
    }

    /// Sum sketches tolerate duplicate delivery of whole partials.
    #[test]
    fn sum_sketch_duplicate_partials_do_not_inflate(
        values in prop::collection::vec((any::<u64>(), 0u64..64), 1..60),
    ) {
        let mut once = SumSketch::new(32, 1);
        let mut dup = SumSketch::new(32, 1);
        for (id, v) in &values {
            once.add(*id, *v);
            dup.add(*id, *v);
        }
        // Deliver every contribution a second time (a second path).
        for (id, v) in &values {
            dup.add(*id, *v);
        }
        prop_assert_eq!(once, dup);
    }

    /// Every member of every generated aggregation tree reaches the root, and
    /// depth stays within the DHT-like logarithmic bound.
    #[test]
    fn aggregation_trees_are_connected_and_shallow(
        n in 2usize..150,
        seed in any::<u64>(),
        root_key in any::<u64>(),
    ) {
        let members: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed).rotate_left(17))
            .collect();
        let tree = AggregationTopology::tree(&members, root_key, 0);
        let empty = BTreeSet::new();
        for &m in tree.members() {
            prop_assert!(tree.survives(m, &empty));
        }
        prop_assert!(tree.max_depth() <= 64);
    }

    /// Redundant trees never make suppression worse: any source that survives
    /// the single tree also survives the union of k salted trees.
    #[test]
    fn redundancy_never_hurts_survival(
        n in 4usize..80,
        seed in any::<u64>(),
        fraction in 0.0f64..0.4,
    ) {
        let members: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(seed))
            .collect();
        let single = AggregationTopology::tree(&members, 1, 0);
        let trees = AggregationTopology::redundant_trees(&members, 1, 3);
        let bad_count = ((n as f64) * fraction) as usize;
        let compromised: BTreeSet<u64> = members.iter().copied().take(bad_count).collect();
        for &m in single.members() {
            if compromised.contains(&m) {
                continue;
            }
            let survives_single = single.survives(m, &compromised);
            let survives_any = trees.iter().any(|t| t.survives(m, &compromised));
            // trees[0] is the same construction as `single` (salt 0), so
            // survival can only improve.
            prop_assert!(!survives_single || survives_any);
        }
    }

    /// Merkle inclusion proofs verify for every leaf of every tree, and stop
    /// verifying if the committed value is altered.
    #[test]
    fn merkle_proofs_verify_and_detect_tampering(
        leaves in prop::collection::vec((any::<u64>(), -1000i64..1000), 1..64),
        bump in 1i64..50,
    ) {
        let tree = MerkleTree::build(leaves.clone());
        let root = tree.root();
        for i in 0..leaves.len() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(root, &proof));
            let mut bad = proof.clone();
            bad.leaf.1 += bump;
            prop_assert!(!MerkleTree::verify(root, &bad));
        }
    }

    /// An honest aggregator always passes spot checks, for any inputs and any
    /// sampling seed.
    #[test]
    fn honest_commitments_always_pass(
        inputs in prop::collection::vec((1u64..10_000, 0i64..1_000), 1..80),
        sample in 1usize..20,
        seed in any::<u64>(),
    ) {
        // Deduplicate sources: ground truth has one value per source.
        let mut seen = BTreeSet::new();
        let inputs: Vec<(u64, i64)> = inputs
            .into_iter()
            .filter(|(s, _)| seen.insert(*s))
            .collect();
        let (commitment, tree) = Commitment::honest(9, &inputs);
        let legitimate: BTreeSet<u64> = inputs.iter().map(|(s, _)| *s).collect();
        let checker = SpotChecker::new(sample, seed);
        prop_assert_eq!(
            checker.check(&commitment, &tree, &inputs, &legitimate),
            pier_security::spot_check::CheckOutcome::Consistent
        );
    }

    /// A token bucket never goes negative and never exceeds its burst.
    #[test]
    fn token_bucket_stays_within_bounds(
        ops in prop::collection::vec((0u64..10_000_000, 0.0f64..5.0), 1..100),
        rate in 0.1f64..100.0,
        burst in 0.1f64..50.0,
    ) {
        let mut bucket = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        for (advance, cost) in ops {
            now += advance;
            let _ = bucket.try_consume(cost, now);
            let available = bucket.available(now);
            prop_assert!(available >= -1e-9, "available {available} went negative");
            prop_assert!(available <= burst + 1e-9, "available {available} exceeded burst {burst}");
        }
    }
}
