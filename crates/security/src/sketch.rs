//! Duplicate-insensitive synopses for robust in-network aggregation.
//!
//! Redundancy (§4.1.2) sends the same partial aggregate along several
//! aggregation paths so that a single malicious or failed aggregator cannot
//! suppress it.  Plain partial sums cannot be combined that way — a datum
//! that survives on two paths would be counted twice — which is why the
//! paper points to the *duplicate-insensitive summarization* line of work
//! (Considine et al., Synopsis Diffusion, Bawa et al.).  The standard tool
//! is a Flajolet–Martin (FM) sketch: inserting the same item twice sets the
//! same bit, and merging two sketches is a bitwise OR, so any combination of
//! re-transmission, multi-path forwarding and re-aggregation yields the same
//! synopsis and therefore the same estimate.
//!
//! Two synopses are provided:
//!
//! * [`CountSketch`] — estimates the number of *distinct* items inserted
//!   (the COUNT aggregate when every source inserts a unique identifier).
//! * [`SumSketch`] — estimates a sum of non-negative integer values by
//!   inserting `value` logical sub-items per datum (with the usual
//!   logarithmic-trick expansion so large values stay cheap).
//!
//! Accuracy follows the classic FM analysis: with `m` independent sketch
//! maps the standard error is roughly `0.78 / sqrt(m)`.

/// A deterministic 64-bit mixer (SplitMix64 finalizer) used as the sketch
/// hash.  Stable across platforms and runs — required for reproducible
/// experiments and for sketches built on different nodes to be mergeable.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Position of the lowest set bit (ρ in the FM literature), capped at 63.
fn rho(hash: u64) -> u32 {
    if hash == 0 {
        63
    } else {
        hash.trailing_zeros().min(63)
    }
}

/// Flajolet–Martin distinct-count sketch with `m` independent bitmaps.
///
/// Inserting the same item any number of times, on any number of nodes, and
/// merging the resulting sketches in any order always produces the same
/// bitmaps — the duplicate-insensitivity property that makes multi-path
/// aggregation safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountSketch {
    maps: Vec<u64>,
}

/// Correction factor φ ≈ 0.77351 from the FM analysis.
const FM_PHI: f64 = 0.773_51;

impl CountSketch {
    /// Create a sketch with `maps` independent bitmaps (more maps → lower
    /// variance; 64 is a reasonable default).
    pub fn new(maps: usize) -> Self {
        CountSketch {
            maps: vec![0u64; maps.max(1)],
        }
    }

    /// Number of independent bitmaps.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// Insert an item identified by `item` (e.g. a source node identifier or
    /// a tuple uniquifier).  Re-inserting the same identifier is a no-op in
    /// terms of the final estimate.
    pub fn insert(&mut self, item: u64) {
        for (i, map) in self.maps.iter_mut().enumerate() {
            let h = mix64(item ^ mix64(i as u64 + 1));
            *map |= 1u64 << rho(h);
        }
    }

    /// Insert an item identified by a string key.
    pub fn insert_str(&mut self, item: &str) {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for b in item.as_bytes() {
            acc = (acc ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.insert(acc);
    }

    /// Merge another sketch into this one (bitwise OR).  Panics if the two
    /// sketches have different widths — they would not be comparable.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(
            self.maps.len(),
            other.maps.len(),
            "cannot merge sketches of different widths"
        );
        for (a, b) in self.maps.iter_mut().zip(&other.maps) {
            *a |= *b;
        }
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(|m| *m == 0)
    }

    /// Estimate the number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Mean position of the lowest unset bit over all maps.
        let mean_r: f64 = self
            .maps
            .iter()
            .map(|m| (!m).trailing_zeros() as f64)
            .sum::<f64>()
            / self.maps.len() as f64;
        2f64.powf(mean_r) / FM_PHI
    }

    /// Wire size of the sketch in bytes (what travels up the tree).
    pub fn size_bytes(&self) -> usize {
        self.maps.len() * 8
    }
}

/// Duplicate-insensitive sum sketch for non-negative integer values.
///
/// A datum `(id, value)` is expanded into `value` logical sub-items derived
/// from `id`, so the distinct-count of sub-items equals the sum.  To keep
/// insertion cost logarithmic in `value` the expansion inserts whole
/// power-of-two blocks via a block identifier; the estimate inherits the FM
/// error bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumSketch {
    sketch: CountSketch,
    /// Sub-item granularity: values are counted in units of `scale`.
    scale: u64,
}

impl SumSketch {
    /// Create a sum sketch with `maps` bitmaps counting in units of `scale`
    /// (e.g. `scale = 1` counts exact units; larger scales trade resolution
    /// for insertion cost on very large values).
    pub fn new(maps: usize, scale: u64) -> Self {
        SumSketch {
            sketch: CountSketch::new(maps),
            scale: scale.max(1),
        }
    }

    /// The unit in which values are counted.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Add `value` attributed to the datum `id`.  Re-adding the same
    /// `(id, value)` pair (a duplicate delivery along a second path) does not
    /// change the estimate; adding the same `id` with a larger value only
    /// contributes the extra units, which mirrors the semantics of synopsis
    /// diffusion.
    ///
    /// Insertion cost is `O(value / scale)`; choose a coarser `scale` when
    /// individual values are very large.
    pub fn add(&mut self, id: u64, value: u64) {
        let units = value / self.scale;
        for unit in 0..units {
            self.sketch
                .insert(mix64(id) ^ mix64(unit.wrapping_add(0x51ab_51ab)));
        }
    }

    /// Merge another sum sketch (bitwise OR of the underlying bitmaps).
    pub fn merge(&mut self, other: &SumSketch) {
        assert_eq!(
            self.scale, other.scale,
            "cannot merge sketches of different scales"
        );
        self.sketch.merge(&other.sketch);
    }

    /// Estimate the sum.
    pub fn estimate(&self) -> f64 {
        self.sketch.estimate() * self.scale as f64
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sketch.size_bytes() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sketch_estimates_within_expected_error() {
        let mut s = CountSketch::new(64);
        let n = 5_000u64;
        for i in 0..n {
            s.insert(i);
        }
        let est = s.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.35, "estimate {est} for n={n}, relative error {err}");
    }

    #[test]
    fn count_sketch_is_duplicate_insensitive() {
        let mut once = CountSketch::new(32);
        let mut thrice = CountSketch::new(32);
        for i in 0..500u64 {
            once.insert(i);
            thrice.insert(i);
            thrice.insert(i);
            thrice.insert(i);
        }
        assert_eq!(once, thrice);
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = CountSketch::new(32);
        let mut b = CountSketch::new(32);
        for i in 0..300u64 {
            a.insert(i);
        }
        for i in 200..600u64 {
            b.insert(i);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(
            ab, abb,
            "merging the same sketch again must not change anything"
        );
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merging_mismatched_widths_panics() {
        let mut a = CountSketch::new(16);
        let b = CountSketch::new(32);
        a.merge(&b);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = CountSketch::new(16);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.size_bytes(), 16 * 8);
    }

    #[test]
    fn string_items_hash_consistently() {
        let mut a = CountSketch::new(32);
        let mut b = CountSketch::new(32);
        a.insert_str("10.0.0.1");
        b.insert_str("10.0.0.1");
        assert_eq!(a, b);
        b.insert_str("10.0.0.2");
        assert_ne!(a, b);
    }

    #[test]
    fn sum_sketch_tracks_total_within_error() {
        let mut s = SumSketch::new(64, 1);
        let mut total = 0u64;
        for i in 0..200u64 {
            let v = (i % 13) + 1;
            s.add(i, v);
            total += v;
        }
        let est = s.estimate();
        let err = (est - total as f64).abs() / total as f64;
        assert!(
            err < 0.4,
            "estimate {est} for total {total}, relative error {err}"
        );
    }

    #[test]
    fn sum_sketch_duplicate_delivery_does_not_inflate() {
        let mut once = SumSketch::new(32, 1);
        let mut duplicated = SumSketch::new(32, 1);
        for i in 0..100u64 {
            once.add(i, 5);
            duplicated.add(i, 5);
            duplicated.add(i, 5);
        }
        assert_eq!(once, duplicated);
    }

    #[test]
    fn sum_sketch_merge_respects_scale() {
        let mut a = SumSketch::new(16, 10);
        let mut b = SumSketch::new(16, 10);
        a.add(1, 100);
        b.add(2, 200);
        a.merge(&b);
        assert!(a.estimate() > 0.0);
        assert_eq!(a.scale(), 10);
    }

    #[test]
    #[should_panic(expected = "different scales")]
    fn sum_sketch_scale_mismatch_panics() {
        let mut a = SumSketch::new(16, 1);
        let b = SumSketch::new(16, 2);
        a.merge(&b);
    }
}
