//! Spot-checking and early commitment (§4.1.2 "Spot-checking and Early
//! Commitment").
//!
//! The defense the paper adopts from the SIA work [55]: an aggregator first
//! **commits** to the exact set of inputs it aggregated by publishing the
//! root of an authenticated data structure (a Merkle tree) together with its
//! result; the client then **spot-checks** by sampling a few inputs directly
//! from their sources and demanding inclusion proofs against the committed
//! root.  Because the commitment precedes the checks, a cheating aggregator
//! cannot "cover its tracks after the fact": it either committed to the
//! inputs it really used (and any omission or alteration shows up in the
//! sampled proofs) or its recomputed aggregate over the committed leaves
//! disagrees with the result it reported.
//!
//! Three checks from the paper are implemented by [`SpotChecker`]:
//!
//! 1. *node-level correctness*: the committed leaves really do sum to the
//!    reported partial result,
//! 2. *inclusion*: a sampled source's value is present in the commitment,
//! 3. *legitimacy*: every committed leaf names a source that exists (no
//!    fabricated inputs).
//!
//! The hash is the workspace's deterministic 64-bit mixer chain; it models
//! a collision-resistant hash well enough for protocol-logic testing while
//! keeping the crate dependency-free (a deployment would swap in SHA-256).

use std::collections::BTreeSet;

/// A 64-bit hash value used throughout the commitment scheme.
pub type HashValue = u64;

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of one leaf: the (source, value) pair an aggregator claims to have
/// consumed.
pub fn leaf_hash(source: u64, value: i64) -> HashValue {
    mix64(mix64(source ^ 0x1EAF) ^ (value as u64).wrapping_mul(0x9E37_79B9))
}

/// Hash of an interior node from its two children.
pub fn node_hash(left: HashValue, right: HashValue) -> HashValue {
    mix64(left.rotate_left(17) ^ mix64(right ^ 0x0DD))
}

/// A Merkle tree over the (source, value) leaves an aggregator consumed.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<HashValue>>,
    leaves: Vec<(u64, i64)>,
}

/// An inclusion proof: the sibling hashes along the path from a leaf to the
/// root, with the side each sibling is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// The proven (source, value) pair.
    pub leaf: (u64, i64),
    /// (sibling_hash, sibling_is_right) from the leaf level upward.
    pub path: Vec<(HashValue, bool)>,
}

impl MerkleTree {
    /// Build a tree over the given leaves (order is the aggregator's
    /// processing order and is part of the commitment).  An empty leaf set
    /// commits to the hash of "nothing".
    pub fn build(leaves: Vec<(u64, i64)>) -> Self {
        let mut levels: Vec<Vec<HashValue>> = Vec::new();
        let leaf_hashes: Vec<HashValue> = if leaves.is_empty() {
            vec![mix64(0xE111)]
        } else {
            leaves.iter().map(|(s, v)| leaf_hash(*s, *v)).collect()
        };
        levels.push(leaf_hashes);
        while levels.last().map_or(0, Vec::len) > 1 {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let combined = if pair.len() == 2 {
                    node_hash(pair[0], pair[1])
                } else {
                    // Odd node is promoted by hashing with itself, a standard
                    // (if slightly wasteful) way to keep the tree binary.
                    node_hash(pair[0], pair[0])
                };
                next.push(combined);
            }
            levels.push(next);
        }
        MerkleTree { levels, leaves }
    }

    /// The committed root hash.
    pub fn root(&self) -> HashValue {
        *self
            .levels
            .last()
            .and_then(|l| l.first())
            .expect("tree always has a root")
    }

    /// Number of committed leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when the tree commits to no inputs.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The committed leaves (the aggregator publishes these on demand).
    pub fn leaves(&self) -> &[(u64, i64)] {
        &self.leaves
    }

    /// Produce an inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaves.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut pos = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling = if pos.is_multiple_of(2) {
                pos + 1
            } else {
                pos - 1
            };
            let sibling_hash = level.get(sibling).copied().unwrap_or(level[pos]);
            path.push((sibling_hash, pos.is_multiple_of(2)));
            pos /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            leaf: self.leaves[index],
            path,
        })
    }

    /// Verify an inclusion proof against a committed root.
    pub fn verify(root: HashValue, proof: &MerkleProof) -> bool {
        let mut hash = leaf_hash(proof.leaf.0, proof.leaf.1);
        for (sibling, sibling_is_right) in &proof.path {
            hash = if *sibling_is_right {
                node_hash(hash, *sibling)
            } else {
                node_hash(*sibling, hash)
            };
        }
        hash == root
    }
}

/// What an aggregator publishes alongside its partial result: the commitment
/// to its inputs and the result it claims they produce.
#[derive(Debug, Clone, PartialEq)]
pub struct Commitment {
    /// The aggregator's overlay identifier.
    pub aggregator: u64,
    /// Merkle root over the consumed (source, value) leaves.
    pub root: HashValue,
    /// Number of leaves committed to.
    pub leaf_count: usize,
    /// The SUM the aggregator claims the committed leaves produce.
    pub claimed_sum: i64,
}

impl Commitment {
    /// Build the commitment an honest aggregator would publish for `inputs`.
    pub fn honest(aggregator: u64, inputs: &[(u64, i64)]) -> (Commitment, MerkleTree) {
        let tree = MerkleTree::build(inputs.to_vec());
        let claimed_sum = inputs.iter().map(|(_, v)| *v).sum();
        (
            Commitment {
                aggregator,
                root: tree.root(),
                leaf_count: inputs.len(),
                claimed_sum,
            },
            tree,
        )
    }
}

/// The verdict of a spot check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every sampled check passed.
    Consistent,
    /// The committed leaves do not reproduce the claimed result.
    SumMismatch,
    /// A sampled source's true value is missing from (or altered in) the
    /// commitment.
    MissingInput {
        /// The source whose contribution was suppressed or altered.
        source: u64,
    },
    /// A committed leaf names a source that does not exist (fabricated
    /// input).
    IllegitimateInput {
        /// The fabricated source identifier.
        source: u64,
    },
    /// An inclusion proof failed verification.
    BadProof,
}

/// The client-side verifier.  It samples `sample_size` sources per check
/// using a deterministic seed so experiments replay.
#[derive(Debug, Clone)]
pub struct SpotChecker {
    sample_size: usize,
    seed: u64,
}

impl SpotChecker {
    /// Create a checker that samples `sample_size` sources per verification.
    pub fn new(sample_size: usize, seed: u64) -> Self {
        SpotChecker {
            sample_size: sample_size.max(1),
            seed,
        }
    }

    /// Deterministically sample up to `sample_size` indices out of `n`.
    fn sample(&self, n: usize) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let mut picked = BTreeSet::new();
        let mut state = mix64(self.seed ^ n as u64);
        while picked.len() < self.sample_size.min(n) {
            state = mix64(state);
            picked.insert((state % n as u64) as usize);
        }
        picked.into_iter().collect()
    }

    /// Verify an aggregator's commitment.
    ///
    /// * `commitment` / `tree` — what the aggregator published (the tree is
    ///   revealed lazily; a real deployment transfers only the sampled
    ///   proofs).
    /// * `ground_truth` — the true (source, value) pairs, obtained by the
    ///   client contacting the sampled sources directly.
    /// * `legitimate_sources` — the set of sources that exist (from the
    ///   query's dissemination membership).
    pub fn check(
        &self,
        commitment: &Commitment,
        tree: &MerkleTree,
        ground_truth: &[(u64, i64)],
        legitimate_sources: &BTreeSet<u64>,
    ) -> CheckOutcome {
        // 1. Recompute the claimed result from the committed leaves.
        let recomputed: i64 = tree.leaves().iter().map(|(_, v)| *v).sum();
        if recomputed != commitment.claimed_sum || tree.root() != commitment.root {
            return CheckOutcome::SumMismatch;
        }
        // 2. Sampled inclusion checks against sources contacted directly.
        for idx in self.sample(ground_truth.len()) {
            let (source, true_value) = ground_truth[idx];
            match tree.leaves().iter().position(|(s, _)| *s == source) {
                None => return CheckOutcome::MissingInput { source },
                Some(leaf_idx) => {
                    let leaf = tree.leaves()[leaf_idx];
                    if leaf.1 != true_value {
                        return CheckOutcome::MissingInput { source };
                    }
                    let proof = tree.prove(leaf_idx).expect("index in range");
                    if !MerkleTree::verify(commitment.root, &proof) {
                        return CheckOutcome::BadProof;
                    }
                }
            }
        }
        // 3. Sampled legitimacy checks over the committed leaves.
        for idx in self.sample(tree.len()) {
            let (source, _) = tree.leaves()[idx];
            if !legitimate_sources.contains(&source) {
                return CheckOutcome::IllegitimateInput { source };
            }
        }
        CheckOutcome::Consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> Vec<(u64, i64)> {
        (0..n as u64).map(|i| (i + 1, (i as i64 % 7) + 1)).collect()
    }

    #[test]
    fn inclusion_proofs_verify_against_the_root() {
        let tree = MerkleTree::build(inputs(13));
        let root = tree.root();
        for i in 0..13 {
            let proof = tree.prove(i).unwrap();
            assert!(MerkleTree::verify(root, &proof), "leaf {i} must verify");
        }
        assert!(tree.prove(13).is_none());
    }

    #[test]
    fn tampered_leaf_or_wrong_root_fails_verification() {
        let tree = MerkleTree::build(inputs(8));
        let root = tree.root();
        let mut proof = tree.prove(3).unwrap();
        proof.leaf.1 += 1;
        assert!(!MerkleTree::verify(root, &proof));
        let good = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(root ^ 1, &good));
    }

    #[test]
    fn empty_and_single_leaf_trees_are_well_formed() {
        let empty = MerkleTree::build(vec![]);
        assert!(empty.is_empty());
        let single = MerkleTree::build(vec![(9, 5)]);
        assert_eq!(single.len(), 1);
        let proof = single.prove(0).unwrap();
        assert!(MerkleTree::verify(single.root(), &proof));
    }

    #[test]
    fn honest_aggregator_passes_spot_checks() {
        let data = inputs(50);
        let (commitment, tree) = Commitment::honest(77, &data);
        let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
        let checker = SpotChecker::new(8, 42);
        assert_eq!(
            checker.check(&commitment, &tree, &data, &legitimate),
            CheckOutcome::Consistent
        );
    }

    #[test]
    fn suppressed_input_is_detected() {
        let data = inputs(40);
        // The aggregator drops the first 10 sources before committing.
        let used: Vec<(u64, i64)> = data[10..].to_vec();
        let (commitment, tree) = Commitment::honest(77, &used);
        let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
        // With a large enough sample the dropped sources are hit.
        let checker = SpotChecker::new(20, 7);
        match checker.check(&commitment, &tree, &data, &legitimate) {
            CheckOutcome::MissingInput { source } => assert!(source <= 10),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    #[test]
    fn inflated_result_is_detected_as_sum_mismatch() {
        let data = inputs(20);
        let (mut commitment, tree) = Commitment::honest(5, &data);
        commitment.claimed_sum += 100; // lie about the sum of committed leaves
        let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
        let checker = SpotChecker::new(4, 3);
        assert_eq!(
            checker.check(&commitment, &tree, &data, &legitimate),
            CheckOutcome::SumMismatch
        );
    }

    #[test]
    fn fabricated_sources_are_detected() {
        let data = inputs(20);
        // The aggregator pads its inputs with sources that do not exist.
        let mut padded = data.clone();
        for i in 0..20u64 {
            padded.push((1_000 + i, 50));
        }
        let (commitment, tree) = Commitment::honest(5, &padded);
        let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
        let checker = SpotChecker::new(15, 11);
        match checker.check(&commitment, &tree, &data, &legitimate) {
            CheckOutcome::IllegitimateInput { source } => assert!(source >= 1_000),
            other => panic!("expected IllegitimateInput, got {other:?}"),
        }
    }

    #[test]
    fn altered_value_is_detected() {
        let data = inputs(30);
        let mut altered = data.clone();
        altered[4].1 += 1_000; // outlier injection on a real source
        let (commitment, tree) = Commitment::honest(2, &altered);
        let legitimate: BTreeSet<u64> = data.iter().map(|(s, _)| *s).collect();
        let checker = SpotChecker::new(30, 13);
        match checker.check(&commitment, &tree, &data, &legitimate) {
            CheckOutcome::MissingInput { source } => assert_eq!(source, data[4].0),
            other => panic!("expected MissingInput (altered value), got {other:?}"),
        }
    }
}
