//! Accountability: a reputation database over verified observations (§4.1.1).
//!
//! The paper's accountability discussion: "When misbehavior is detected,
//! accountability helps identify the offending nodes and justifies
//! corrective measures.  For example, the query can be repeated excluding
//! those nodes (in the short term), or the information can be used as input
//! to a reputation database used for node selection in the future."
//!
//! [`ReputationDb`] is that database.  It records *observations* — the
//! outcome of a spot check, a failed delivery, a confirmed poisoning — per
//! node, ages them out of a sliding window, and answers two questions:
//!
//! * which nodes should be excluded from the next retry of a query
//!   ([`ReputationDb::exclusion_set`]), and
//! * how preferable a node is for future operator placement
//!   ([`ReputationDb::score`], higher is better).
//!
//! Only *verified* evidence should be fed in ("trust but verify", [75]) —
//! spot-check verdicts rather than mere suspicion — to avoid malicious
//! framing of honest competitors; that policy is the caller's
//! responsibility and is documented on [`ReputationDb::record`].

use pier_runtime::{Duration, SimTime};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// One verified observation about a node's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The node did what it was supposed to (e.g. passed a spot check or
    /// delivered a result that later verified).
    Good,
    /// The node misbehaved (failed a spot check, suppressed inputs, poisoned
    /// a result, or was caught free-riding).
    Misbehaved,
    /// The node was unreachable when it should have participated — counted
    /// separately because churn is expected and not malicious by itself.
    Unreachable,
}

#[derive(Debug, Clone, Default)]
struct NodeRecord {
    events: Vec<(SimTime, Observation)>,
}

/// A sliding-window reputation database.
#[derive(Debug, Clone)]
pub struct ReputationDb {
    window: Duration,
    /// Minimum number of observations before a node can be excluded — one
    /// bad report from one (possibly malicious) observer is not enough.
    min_observations: usize,
    /// Misbehaviour fraction at or above which a node is excluded.
    exclusion_threshold: f64,
    records: HashMap<u64, NodeRecord>,
}

impl ReputationDb {
    /// Create a database with the given evidence window, minimum observation
    /// count and misbehaviour-fraction exclusion threshold.
    pub fn new(window: Duration, min_observations: usize, exclusion_threshold: f64) -> Self {
        ReputationDb {
            window,
            min_observations: min_observations.max(1),
            exclusion_threshold: exclusion_threshold.clamp(0.0, 1.0),
            records: HashMap::new(),
        }
    }

    /// A configuration suitable for the experiments: 10-minute window, at
    /// least 3 observations, exclusion at 50 % misbehaviour.
    pub fn standard() -> Self {
        ReputationDb::new(600_000_000, 3, 0.5)
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = now.saturating_sub(self.window);
        for rec in self.records.values_mut() {
            rec.events.retain(|(t, _)| *t >= horizon);
        }
        self.records.retain(|_, rec| !rec.events.is_empty());
    }

    /// Record a *verified* observation about `node`.  Callers must only
    /// report evidence they can substantiate (a failed Merkle proof, a
    /// spot-check mismatch), never raw suspicion, so that the database
    /// cannot be used to frame honest nodes.
    pub fn record(&mut self, node: u64, observation: Observation, now: SimTime) {
        self.prune(now);
        self.records
            .entry(node)
            .or_default()
            .events
            .push((now, observation));
    }

    /// Number of observations currently held for `node`.
    pub fn observation_count(&self, node: u64) -> usize {
        self.records.get(&node).map_or(0, |r| r.events.len())
    }

    /// Fraction of `node`'s observations that are misbehaviour (0 when the
    /// node is unknown).
    pub fn misbehaviour_fraction(&self, node: u64) -> f64 {
        let Some(rec) = self.records.get(&node) else {
            return 0.0;
        };
        if rec.events.is_empty() {
            return 0.0;
        }
        let bad = rec
            .events
            .iter()
            .filter(|(_, o)| *o == Observation::Misbehaved)
            .count();
        bad as f64 / rec.events.len() as f64
    }

    /// Preference score for node selection: 1.0 for an unknown or spotless
    /// node, decreasing with misbehaviour and (more gently) unreachability.
    pub fn score(&self, node: u64) -> f64 {
        let Some(rec) = self.records.get(&node) else {
            return 1.0;
        };
        if rec.events.is_empty() {
            return 1.0;
        }
        let total = rec.events.len() as f64;
        let bad = rec
            .events
            .iter()
            .filter(|(_, o)| *o == Observation::Misbehaved)
            .count() as f64;
        let flaky = rec
            .events
            .iter()
            .filter(|(_, o)| *o == Observation::Unreachable)
            .count() as f64;
        (1.0 - bad / total - 0.25 * flaky / total).max(0.0)
    }

    /// Nodes that should be excluded from the next retry of a query: enough
    /// evidence and a misbehaviour fraction at or above the threshold.
    pub fn exclusion_set(&mut self, now: SimTime) -> BTreeSet<u64> {
        self.prune(now);
        self.records
            .iter()
            .filter(|(_, rec)| rec.events.len() >= self.min_observations)
            .filter(|(node, _)| self.misbehaviour_fraction(**node) >= self.exclusion_threshold)
            .map(|(node, _)| *node)
            .collect()
    }

    /// Rank `candidates` by preference (best first), dropping excluded nodes.
    /// Used for node selection when placing redundant aggregators.
    pub fn rank_candidates(&mut self, candidates: &[u64], now: SimTime) -> Vec<u64> {
        let excluded = self.exclusion_set(now);
        let mut ranked: Vec<u64> = candidates
            .iter()
            .copied()
            .filter(|c| !excluded.contains(c))
            .collect();
        ranked.sort_by(|a, b| {
            self.score(*b)
                .partial_cmp(&self.score(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_nodes_are_trusted_by_default() {
        let db = ReputationDb::standard();
        assert_eq!(db.score(42), 1.0);
        assert_eq!(db.misbehaviour_fraction(42), 0.0);
    }

    #[test]
    fn repeated_misbehaviour_leads_to_exclusion() {
        let mut db = ReputationDb::new(1_000_000_000, 3, 0.5);
        for t in 0..4u64 {
            db.record(7, Observation::Misbehaved, t * 1_000);
        }
        let excluded = db.exclusion_set(10_000);
        assert!(excluded.contains(&7));
    }

    #[test]
    fn a_single_bad_report_is_not_enough() {
        let mut db = ReputationDb::new(1_000_000_000, 3, 0.5);
        db.record(9, Observation::Misbehaved, 0);
        assert!(db.exclusion_set(1_000).is_empty());
    }

    #[test]
    fn good_behaviour_dilutes_misbehaviour() {
        let mut db = ReputationDb::new(1_000_000_000, 3, 0.5);
        db.record(5, Observation::Misbehaved, 0);
        for t in 1..6u64 {
            db.record(5, Observation::Good, t);
        }
        assert!(db.misbehaviour_fraction(5) < 0.5);
        assert!(db.exclusion_set(100).is_empty());
        assert!(db.score(5) > 0.7);
    }

    #[test]
    fn evidence_ages_out_of_the_window() {
        let mut db = ReputationDb::new(1_000, 1, 0.5);
        db.record(3, Observation::Misbehaved, 0);
        assert_eq!(db.observation_count(3), 1);
        // Recording far in the future prunes the old evidence.
        db.record(4, Observation::Good, 10_000);
        assert_eq!(db.observation_count(3), 0);
        assert!(db.exclusion_set(10_000).is_empty());
    }

    #[test]
    fn unreachability_hurts_less_than_misbehaviour() {
        let mut db = ReputationDb::standard();
        for t in 0..4u64 {
            db.record(1, Observation::Unreachable, t);
            db.record(2, Observation::Misbehaved, t);
        }
        assert!(db.score(1) > db.score(2));
        let excluded = db.exclusion_set(10);
        assert!(excluded.contains(&2));
        assert!(!excluded.contains(&1), "churny nodes are not malicious");
    }

    #[test]
    fn rank_candidates_prefers_clean_nodes_and_drops_excluded() {
        let mut db = ReputationDb::new(1_000_000_000, 3, 0.5);
        for t in 0..4u64 {
            db.record(100, Observation::Misbehaved, t); // excluded
        }
        db.record(200, Observation::Unreachable, 5); // slightly dinged
                                                     // 300 is unknown → perfect score.
        let ranked = db.rank_candidates(&[100, 200, 300], 100);
        assert_eq!(ranked, vec![300, 200]);
    }
}
