//! Adversary model and result-fidelity metrics (§4.1.1–§4.1.2).
//!
//! The paper frames result fidelity as the gap between the returned and the
//! "correct" result, deteriorating under node failures, message suppression
//! and data poisoning, and states the study the authors were running:
//!
//! > "we examine the change in simple metrics such as the fraction of data
//! > sources suppressed by the adversary and relative result error"
//!
//! This module is that study's harness.  A fixed membership of aggregators
//! (identified by their overlay identifiers) each holds a local partial
//! value; an [`Adversary`] compromises a fraction of them; the aggregation
//! runs over an [`AggregationTopology`]; and a [`FidelityReport`] records,
//! for each defense strategy, how much of the input survived and how far
//! the computed answer is from the truth.
//!
//! Three aggregation strategies are compared, matching §4.1.2's
//! "Redundancy" discussion:
//!
//! * **exact partial sums over a single tree** — the undefended baseline;
//! * **exact partial sums over `k` salted trees**, combined at the querier
//!   by taking the maximum (sound for a suppression-only adversary because
//!   suppression can only lower a sum of non-negative values);
//! * **duplicate-insensitive sketches over `k` salted trees or a
//!   multi-parent DAG**, combined by sketch merge — the synopsis-diffusion
//!   approach the paper cites, which tolerates both duplication and
//!   arbitrary path failure at the cost of approximation error.

use crate::sketch::SumSketch;
use crate::topology::{AggregationTopology, TopologyKind};
use pier_runtime::Rng64;
use std::collections::BTreeSet;

/// What the compromised nodes do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Malice {
    /// Drop every partial aggregate the node would relay (and its own input).
    Suppress,
    /// Additionally inject `units` of fabricated value into the aggregate
    /// the node forwards (data poisoning).
    Poison {
        /// Fabricated units each compromised node injects.
        units: u64,
    },
}

/// Configuration of an adversary instance.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryConfig {
    /// Fraction of members the adversary controls (0.0–1.0).
    pub compromised_fraction: f64,
    /// Behaviour of compromised members.
    pub malice: Malice,
    /// Seed for the choice of compromised members.
    pub seed: u64,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            compromised_fraction: 0.1,
            malice: Malice::Suppress,
            seed: 0,
        }
    }
}

/// A concrete adversary: the set of compromised members.
#[derive(Debug, Clone)]
pub struct Adversary {
    config: AdversaryConfig,
    compromised: BTreeSet<u64>,
}

impl Adversary {
    /// Compromise `compromised_fraction` of `members`, chosen pseudo-randomly
    /// from the configured seed.  The querier's own node is never part of
    /// `members` here (the paper assumes the client trusts its proxy).
    pub fn new(members: &[u64], config: AdversaryConfig) -> Self {
        let mut rng = Rng64::new(config.seed ^ 0x00AD_5E17);
        let mut pool: Vec<u64> = members.to_vec();
        rng.shuffle(&mut pool);
        let count = ((members.len() as f64) * config.compromised_fraction).round() as usize;
        let compromised = pool.into_iter().take(count.min(members.len())).collect();
        Adversary {
            config,
            compromised,
        }
    }

    /// The compromised member set.
    pub fn compromised(&self) -> &BTreeSet<u64> {
        &self.compromised
    }

    /// Number of compromised members.
    pub fn count(&self) -> usize {
        self.compromised.len()
    }

    /// The configured behaviour.
    pub fn malice(&self) -> Malice {
        self.config.malice
    }
}

/// Fidelity of one aggregation strategy under one adversary.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Human-readable strategy label (e.g. `"single-tree/exact"`).
    pub strategy: String,
    /// The correct answer (sum over all honest members' true values).
    pub truth: f64,
    /// The answer the querier computed.
    pub estimate: f64,
    /// Fraction of honest sources whose contribution failed to reach the
    /// querier on every path.
    pub suppressed_fraction: f64,
    /// |estimate − truth| / truth (0 when the truth is 0).
    pub relative_error: f64,
    /// Total bytes of aggregation traffic shipped up the topology (partial
    /// sums are costed at 16 bytes, sketches at their bitmap size), summed
    /// over every (member, parent) edge used.
    pub bytes_shipped: u64,
}

impl FidelityReport {
    fn new(
        strategy: impl Into<String>,
        truth: f64,
        estimate: f64,
        suppressed: usize,
        honest_sources: usize,
        bytes_shipped: u64,
    ) -> Self {
        let relative_error = if truth == 0.0 {
            estimate.abs()
        } else {
            (estimate - truth).abs() / truth
        };
        FidelityReport {
            strategy: strategy.into(),
            truth,
            estimate,
            suppressed_fraction: if honest_sources == 0 {
                0.0
            } else {
                suppressed as f64 / honest_sources as f64
            },
            relative_error,
            bytes_shipped,
        }
    }
}

/// The sketch width used by the sketch-based strategies.
const SKETCH_MAPS: usize = 64;
/// Wire cost of one exact partial (value + group key), in bytes.
const EXACT_PARTIAL_BYTES: u64 = 16;

/// Evaluate exact-sum aggregation over a set of trees: each honest source's
/// value reaches a tree's root iff it survives that tree's compromised
/// relays; the querier combines the per-tree roots by `max` (sound under
/// suppression).  Poison injected by compromised nodes is added to every
/// tree root they can reach.
fn exact_over_trees(
    label: &str,
    trees: &[AggregationTopology],
    values: &[(u64, u64)],
    adversary: &Adversary,
) -> FidelityReport {
    let compromised = adversary.compromised();
    let truth: f64 = values
        .iter()
        .filter(|(m, _)| !compromised.contains(m))
        .map(|(_, v)| *v as f64)
        .sum();
    let honest_sources = values
        .iter()
        .filter(|(m, _)| !compromised.contains(m))
        .count();
    let mut best = 0.0f64;
    let mut globally_suppressed = honest_sources;
    let mut bytes = 0u64;
    let mut suppressed_sets: Vec<BTreeSet<u64>> = Vec::new();
    for tree in trees {
        let mut total = 0.0;
        let mut suppressed_here = BTreeSet::new();
        for (m, v) in values {
            if compromised.contains(m) {
                continue;
            }
            if tree.survives(*m, compromised) {
                total += *v as f64;
            } else {
                suppressed_here.insert(*m);
            }
        }
        if let Malice::Poison { units } = adversary.malice() {
            // Colluding compromised nodes always deliver their fabricated
            // value to the root (they do not suppress each other).
            total += (adversary.count() as u64 * units) as f64;
        }
        // Traffic: every honest member ships one partial to each parent.
        bytes += tree
            .members()
            .iter()
            .filter(|m| !compromised.contains(m))
            .map(|m| tree.parents_of(*m).len() as u64 * EXACT_PARTIAL_BYTES)
            .sum::<u64>();
        best = best.max(total);
        suppressed_sets.push(suppressed_here);
    }
    // A source counts as suppressed only if it failed on *every* tree.
    if let Some(first) = suppressed_sets.first() {
        let mut intersect = first.clone();
        for s in &suppressed_sets[1..] {
            intersect = intersect.intersection(s).copied().collect();
        }
        globally_suppressed = intersect.len();
    }
    FidelityReport::new(
        label,
        truth,
        best,
        globally_suppressed,
        honest_sources,
        bytes,
    )
}

/// Evaluate sketch-based aggregation over one or more structures: every
/// honest source inserts its value into a [`SumSketch`]; a source's sketch
/// reaches a structure's root iff it survives; the querier merges every
/// surviving sketch from every structure (duplicate-insensitive, so
/// multi-path duplication is harmless).
fn sketch_over(
    label: &str,
    structures: &[AggregationTopology],
    values: &[(u64, u64)],
    adversary: &Adversary,
) -> FidelityReport {
    let compromised = adversary.compromised();
    let truth: f64 = values
        .iter()
        .filter(|(m, _)| !compromised.contains(m))
        .map(|(_, v)| *v as f64)
        .sum();
    let honest_sources = values
        .iter()
        .filter(|(m, _)| !compromised.contains(m))
        .count();
    let mut merged = SumSketch::new(SKETCH_MAPS, 1);
    let mut suppressed_everywhere = 0usize;
    let mut bytes = 0u64;
    for (m, v) in values {
        if compromised.contains(m) {
            continue;
        }
        let mut survived_somewhere = false;
        for s in structures {
            if s.survives(*m, compromised) {
                survived_somewhere = true;
            }
        }
        if survived_somewhere {
            let mut sk = SumSketch::new(SKETCH_MAPS, 1);
            sk.add(*m, *v);
            merged.merge(&sk);
        } else {
            suppressed_everywhere += 1;
        }
    }
    if let Malice::Poison { units } = adversary.malice() {
        for c in compromised {
            let mut sk = SumSketch::new(SKETCH_MAPS, 1);
            sk.add(*c ^ 0xBAD, units);
            merged.merge(&sk);
        }
    }
    for s in structures {
        bytes += s
            .members()
            .iter()
            .filter(|m| !compromised.contains(m))
            .map(|m| (s.parents_of(*m).len() * (SKETCH_MAPS * 8)) as u64)
            .sum::<u64>();
    }
    FidelityReport::new(
        label,
        truth,
        merged.estimate(),
        suppressed_everywhere,
        honest_sources,
        bytes,
    )
}

/// Run the full §4.1.2 redundancy comparison for one membership, one set of
/// per-member values and one adversary: the undefended single tree, `k`
/// redundant trees with exact sums, `k` redundant trees with sketches, and a
/// multi-parent DAG with sketches.
pub fn compare_defenses(
    members: &[u64],
    values: &[(u64, u64)],
    adversary: &Adversary,
    k: usize,
    dag_parents: usize,
    root_key: u64,
) -> Vec<FidelityReport> {
    let single = AggregationTopology::build(TopologyKind::SingleTree, members, root_key);
    let trees = AggregationTopology::build(TopologyKind::RedundantTrees(k), members, root_key);
    let dag =
        AggregationTopology::build(TopologyKind::MultiParentDag(dag_parents), members, root_key);
    vec![
        exact_over_trees("single-tree/exact", &single, values, adversary),
        exact_over_trees(&format!("{k}-trees/exact-max"), &trees, values, adversary),
        sketch_over(&format!("{k}-trees/sketch"), &trees, values, adversary),
        sketch_over(
            &format!("dag-p{dag_parents}/sketch"),
            &dag,
            values,
            adversary,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(x: u64) -> u64 {
        let mut v = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        v ^ (v >> 31)
    }

    fn membership(n: usize) -> Vec<u64> {
        (0..n as u64).map(mix).collect()
    }

    fn uniform_values(members: &[u64], v: u64) -> Vec<(u64, u64)> {
        members.iter().map(|m| (*m, v)).collect()
    }

    #[test]
    fn no_adversary_means_no_error_for_exact_strategies() {
        let members = membership(80);
        let values = uniform_values(&members, 10);
        let adversary = Adversary::new(
            &members,
            AdversaryConfig {
                compromised_fraction: 0.0,
                ..Default::default()
            },
        );
        let reports = compare_defenses(&members, &values, &adversary, 3, 2, 77);
        let exact: Vec<_> = reports
            .iter()
            .filter(|r| r.strategy.contains("exact"))
            .collect();
        assert!(!exact.is_empty());
        for r in exact {
            assert_eq!(r.relative_error, 0.0, "{}: {:?}", r.strategy, r);
            assert_eq!(r.suppressed_fraction, 0.0);
        }
    }

    #[test]
    fn sketches_are_approximate_but_bounded_without_adversary() {
        let members = membership(80);
        let values = uniform_values(&members, 10);
        let adversary = Adversary::new(
            &members,
            AdversaryConfig {
                compromised_fraction: 0.0,
                ..Default::default()
            },
        );
        let reports = compare_defenses(&members, &values, &adversary, 3, 2, 77);
        for r in reports.iter().filter(|r| r.strategy.contains("sketch")) {
            assert!(
                r.relative_error < 0.5,
                "{} error {} too large",
                r.strategy,
                r.relative_error
            );
        }
    }

    #[test]
    fn redundancy_reduces_suppression_compared_to_single_tree() {
        let members = membership(150);
        let values = uniform_values(&members, 5);
        let adversary = Adversary::new(
            &members,
            AdversaryConfig {
                compromised_fraction: 0.2,
                malice: Malice::Suppress,
                seed: 3,
            },
        );
        let reports = compare_defenses(&members, &values, &adversary, 3, 2, 9);
        let single = &reports[0];
        let k_exact = &reports[1];
        assert!(
            k_exact.suppressed_fraction <= single.suppressed_fraction,
            "redundant trees should not suppress more than a single tree: {} vs {}",
            k_exact.suppressed_fraction,
            single.suppressed_fraction
        );
        assert!(
            k_exact.relative_error <= single.relative_error + 1e-9,
            "redundant trees should not be less accurate under suppression"
        );
        // Redundancy costs bandwidth.
        assert!(k_exact.bytes_shipped > single.bytes_shipped);
    }

    #[test]
    fn adversary_size_matches_fraction() {
        let members = membership(200);
        let adversary = Adversary::new(
            &members,
            AdversaryConfig {
                compromised_fraction: 0.25,
                malice: Malice::Suppress,
                seed: 1,
            },
        );
        assert_eq!(adversary.count(), 50);
    }

    #[test]
    fn poisoning_inflates_exact_results() {
        let members = membership(60);
        let values = uniform_values(&members, 10);
        let adversary = Adversary::new(
            &members,
            AdversaryConfig {
                compromised_fraction: 0.1,
                malice: Malice::Poison { units: 1_000 },
                seed: 5,
            },
        );
        let reports = compare_defenses(&members, &values, &adversary, 3, 2, 4);
        let single = &reports[0];
        assert!(
            single.estimate > single.truth,
            "poison should inflate the estimate ({} vs truth {})",
            single.estimate,
            single.truth
        );
        assert!(single.relative_error > 0.5);
    }

    #[test]
    fn fidelity_report_handles_zero_truth() {
        let r = FidelityReport::new("x", 0.0, 3.0, 0, 0, 0);
        assert_eq!(r.relative_error, 3.0);
        assert_eq!(r.suppressed_fraction, 0.0);
    }
}
