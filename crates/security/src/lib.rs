//! # pier-security — defenses for an unfriendly Internet (§4.1)
//!
//! The PIER paper devotes its first "future work" section to the security
//! and robustness challenges of running a query processor "in the wild":
//! result fidelity under suppression and data poisoning, resource management
//! (isolation, free-riding, service flooding, containment), accountability,
//! and the defenses the authors were investigating — **redundancy**,
//! **rate limitation**, and **spot-checking with early commitment**
//! (§4.1.2).  This crate implements those defenses as reusable components
//! and provides the measurement harness the paper describes:
//!
//! > "we examine the change in simple metrics such as the fraction of data
//! > sources suppressed by the adversary and relative result error"
//!
//! * [`sketch`] — duplicate-insensitive synopses (Flajolet–Martin style
//!   count/sum sketches) so the same datum can be counted along several
//!   redundant paths without inflating the answer, following the
//!   duplicate-insensitive summarization work the paper cites ([3, 13, 50]).
//! * [`topology`] — deterministic aggregation-tree construction over a set
//!   of overlay identifiers, including *k* independent (root-salted) trees
//!   and multi-parent DAGs used by the redundancy defense.
//! * [`adversary`] — an adversary model (suppression, poisoning,
//!   partial-dropping) applied to aggregation topologies, and the fidelity
//!   metrics (suppressed-source fraction, relative result error) used to
//!   compare defenses.
//! * [`rate_limit`] — token buckets, per-client resource accounting over a
//!   sliding window with cluster-wide aggregation hooks, and the
//!   reciprocative peer strategy of [21] / [47].
//! * [`spot_check`] — early commitment of aggregation inputs through a
//!   Merkle tree plus probabilistic spot-checking of the committed inputs
//!   (the SIA-style verification of [55]).
//! * [`reputation`] — an accountability ledger recording per-node verified
//!   misbehaviour and producing an exclusion set for query retry / node
//!   selection.
//!
//! Everything here is deterministic and free of external dependencies so
//! that the adversary experiments replay exactly from a seed.

pub mod adversary;
pub mod rate_limit;
pub mod reputation;
pub mod sketch;
pub mod spot_check;
pub mod topology;

pub use adversary::{Adversary, AdversaryConfig, FidelityReport};
pub use rate_limit::{ClientMonitor, Reciprocation, TokenBucket};
pub use reputation::{Observation, ReputationDb};
pub use sketch::{CountSketch, SumSketch};
pub use spot_check::{Commitment, MerkleProof, MerkleTree, SpotChecker};
pub use topology::{AggregationTopology, TopologyKind};
