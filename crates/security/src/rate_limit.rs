//! Rate limitation and resource accounting (§4.1.2 "Rate Limitation").
//!
//! The paper proposes three layers of rate limitation:
//!
//! 1. **Per-client limits** — each PIER node monitors "the total resource
//!    consumption (e.g., CPU cycles, disk space, memory, etc.) of that
//!    client's query operators within a time window"; when a node's local
//!    total exceeds a threshold it asks the rest of the system for the
//!    client's aggregate consumption and throttles the client's operators.
//!    [`ClientMonitor`] implements the window accounting, the local
//!    threshold trigger, the aggregate decision and the resulting throttle
//!    factor; [`TokenBucket`] is the enforcement primitive used by the
//!    sandboxed operators.
//! 2. **Limits on result traffic toward a destination** (containment): also
//!    a [`TokenBucket`], keyed by destination instead of client.
//! 3. **Node-to-node reciprocation** — "node A executes a query injected
//!    via node B only if B has recently executed a query injected via A",
//!    the strategy of Feldman et al. [21] adopted in [47].
//!    [`Reciprocation`] keeps the pairwise balance and answers the
//!    execute-or-refuse question.
//!
//! All state is expressed in the runtime's microsecond [`SimTime`] so the
//! same code runs under the simulator and the physical runtime.

use pier_runtime::{Duration, SimTime};
use std::collections::HashMap;

/// A token bucket: `rate` tokens per second accrue up to `burst`; an
/// operation consuming `n` tokens is admitted only when `n` tokens are
/// available.  Used to sandbox per-client operator resource usage and to cap
/// result traffic toward a single destination.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Create a bucket that refills at `rate_per_sec` and holds at most
    /// `burst` tokens (it starts full).
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        TokenBucket {
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(0.0),
            tokens: burst.max(0.0),
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed_secs = (now - self.last_refill) as f64 / 1_000_000.0;
        self.tokens = (self.tokens + elapsed_secs * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
    }

    /// Tokens currently available.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Try to consume `cost` tokens; returns whether the operation is
    /// admitted.
    pub fn try_consume(&mut self, cost: f64, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Time until `cost` tokens will be available (0 if they already are).
    pub fn time_until(&mut self, cost: f64, now: SimTime) -> Duration {
        self.refill(now);
        if self.tokens >= cost {
            return 0;
        }
        if self.rate_per_sec <= 0.0 {
            return u64::MAX;
        }
        let deficit = cost - self.tokens;
        (deficit / self.rate_per_sec * 1_000_000.0).ceil() as Duration
    }
}

/// Decision returned by [`ClientMonitor::check`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateDecision {
    /// The client is within its local budget.
    Allow,
    /// The local window total crossed the threshold: the node should ask its
    /// peers for the client's aggregate consumption before throttling.
    NeedAggregate {
        /// The local consumption observed in the current window.
        local_consumption: f64,
    },
    /// The aggregate consumption confirmed abuse; the client's operators are
    /// throttled to the returned fraction of normal resources.
    Throttle {
        /// Fraction (0–1] of normal resources the client may use.
        factor: f64,
    },
}

/// Per-client resource accounting over a sliding time window, with the
/// local-threshold → cluster-aggregate → throttle escalation of §4.1.2.
#[derive(Debug, Clone)]
pub struct ClientMonitor {
    window: Duration,
    local_threshold: f64,
    global_threshold: f64,
    /// consumption events: (time, client, amount)
    events: Vec<(SimTime, String, f64)>,
    /// Clients currently throttled, with the factor applied.
    throttled: HashMap<String, f64>,
}

impl ClientMonitor {
    /// Create a monitor: consumption is summed over the trailing `window`;
    /// a local sum above `local_threshold` triggers the aggregate check; an
    /// aggregate above `global_threshold` triggers throttling.
    pub fn new(window: Duration, local_threshold: f64, global_threshold: f64) -> Self {
        ClientMonitor {
            window,
            local_threshold,
            global_threshold,
            events: Vec::new(),
            throttled: HashMap::new(),
        }
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = now.saturating_sub(self.window);
        self.events.retain(|(t, _, _)| *t >= horizon);
    }

    /// Record `amount` units of resource consumption by `client` (CPU
    /// microseconds, bytes of operator state, …).
    pub fn record(&mut self, client: &str, amount: f64, now: SimTime) {
        self.prune(now);
        self.events.push((now, client.to_string(), amount));
    }

    /// The client's consumption within the current window at this node.
    pub fn local_consumption(&mut self, client: &str, now: SimTime) -> f64 {
        self.prune(now);
        self.events
            .iter()
            .filter(|(_, c, _)| c == client)
            .map(|(_, _, a)| *a)
            .sum()
    }

    /// Local admission decision for `client`.
    pub fn check(&mut self, client: &str, now: SimTime) -> RateDecision {
        if let Some(factor) = self.throttled.get(client) {
            return RateDecision::Throttle { factor: *factor };
        }
        let local = self.local_consumption(client, now);
        if local > self.local_threshold {
            RateDecision::NeedAggregate {
                local_consumption: local,
            }
        } else {
            RateDecision::Allow
        }
    }

    /// Feed back the cluster-wide aggregate consumption for `client`
    /// (obtained by running a PIER aggregation query over every node's local
    /// monitor, exactly as §4.1.2 proposes).  If the aggregate crosses the
    /// global threshold the client is throttled proportionally; otherwise
    /// any throttle is lifted.  Returns the resulting decision.
    pub fn apply_aggregate(&mut self, client: &str, aggregate: f64) -> RateDecision {
        if aggregate > self.global_threshold {
            // The further over the threshold, the harsher the throttle.
            let factor = (self.global_threshold / aggregate).clamp(0.05, 1.0);
            self.throttled.insert(client.to_string(), factor);
            RateDecision::Throttle { factor }
        } else {
            self.throttled.remove(client);
            RateDecision::Allow
        }
    }

    /// Remove a client's throttle (e.g. after its window of abuse expires).
    pub fn unthrottle(&mut self, client: &str) {
        self.throttled.remove(client);
    }

    /// Clients currently throttled.
    pub fn throttled_clients(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .throttled
            .iter()
            .map(|(c, f)| (c.clone(), *f))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// The reciprocative peer strategy: node A executes a query injected via
/// node B only if B has recently executed a query injected via A (within a
/// tolerance that lets fresh peers get started).
#[derive(Debug, Clone)]
pub struct Reciprocation {
    /// How many more queries we may execute for a peer than it has executed
    /// for us before we start refusing.
    tolerance: i64,
    /// peer → (executed by us for them, executed by them for us)
    ledger: HashMap<String, (i64, i64)>,
}

impl Reciprocation {
    /// Create a ledger with the given imbalance tolerance (≥ 1 so new peers
    /// can bootstrap the relationship).
    pub fn new(tolerance: i64) -> Self {
        Reciprocation {
            tolerance: tolerance.max(1),
            ledger: HashMap::new(),
        }
    }

    /// Current balance for `peer`: positive means we have done more work for
    /// them than they have for us.
    pub fn balance(&self, peer: &str) -> i64 {
        self.ledger.get(peer).map_or(0, |(us, them)| us - them)
    }

    /// Should we execute a query injected via `peer`?
    pub fn should_execute(&self, peer: &str) -> bool {
        self.balance(peer) < self.tolerance
    }

    /// Record that we executed a query injected via `peer`.
    pub fn record_executed_for(&mut self, peer: &str) {
        self.ledger.entry(peer.to_string()).or_insert((0, 0)).0 += 1;
    }

    /// Record that `peer` executed a query we injected.
    pub fn record_executed_by(&mut self, peer: &str) {
        self.ledger.entry(peer.to_string()).or_insert((0, 0)).1 += 1;
    }

    /// Number of peers with any history.
    pub fn peer_count(&self) -> usize {
        self.ledger.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_admits_until_empty_then_refills() {
        let mut b = TokenBucket::new(10.0, 5.0, 0);
        // Burst of 5 is available immediately.
        for _ in 0..5 {
            assert!(b.try_consume(1.0, 0));
        }
        assert!(!b.try_consume(1.0, 0));
        // After 100 ms, one token (10/s) has accrued.
        assert!(b.try_consume(1.0, 100_000));
        assert!(!b.try_consume(1.0, 100_000));
    }

    #[test]
    fn token_bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1_000.0, 3.0, 0);
        assert!((b.available(10_000_000) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn token_bucket_time_until_reports_wait() {
        let mut b = TokenBucket::new(2.0, 2.0, 0);
        assert!(b.try_consume(2.0, 0));
        let wait = b.time_until(1.0, 0);
        assert_eq!(wait, 500_000, "1 token at 2/s is 0.5 s away");
        assert_eq!(b.time_until(0.0, 0), 0);
        let mut frozen = TokenBucket::new(0.0, 0.0, 0);
        assert_eq!(frozen.time_until(1.0, 0), u64::MAX);
    }

    #[test]
    fn client_monitor_escalates_and_throttles() {
        let mut m = ClientMonitor::new(1_000_000, 100.0, 1_000.0);
        assert_eq!(m.check("alice", 0), RateDecision::Allow);
        m.record("alice", 60.0, 0);
        m.record("alice", 60.0, 10);
        match m.check("alice", 20) {
            RateDecision::NeedAggregate { local_consumption } => {
                assert!((local_consumption - 120.0).abs() < 1e-9);
            }
            other => panic!("expected NeedAggregate, got {other:?}"),
        }
        // Aggregate below the global threshold: no throttle.
        assert_eq!(m.apply_aggregate("alice", 500.0), RateDecision::Allow);
        // Aggregate above: throttle proportionally.
        match m.apply_aggregate("alice", 4_000.0) {
            RateDecision::Throttle { factor } => assert!((factor - 0.25).abs() < 1e-9),
            other => panic!("expected Throttle, got {other:?}"),
        }
        assert_eq!(m.throttled_clients().len(), 1);
        m.unthrottle("alice");
        assert_eq!(m.check("alice", 2_000_000), RateDecision::Allow);
    }

    #[test]
    fn client_monitor_window_expires_old_consumption() {
        let mut m = ClientMonitor::new(1_000_000, 100.0, 1_000.0);
        m.record("bob", 150.0, 0);
        assert!(matches!(
            m.check("bob", 10),
            RateDecision::NeedAggregate { .. }
        ));
        // After the window passes the old consumption no longer counts.
        assert_eq!(m.check("bob", 2_000_000), RateDecision::Allow);
    }

    #[test]
    fn client_monitor_tracks_clients_independently() {
        let mut m = ClientMonitor::new(1_000_000, 100.0, 1_000.0);
        m.record("alice", 150.0, 0);
        m.record("bob", 10.0, 0);
        assert!(matches!(
            m.check("alice", 1),
            RateDecision::NeedAggregate { .. }
        ));
        assert_eq!(m.check("bob", 1), RateDecision::Allow);
    }

    #[test]
    fn reciprocation_balances_work() {
        let mut r = Reciprocation::new(2);
        assert!(r.should_execute("peer-b"));
        r.record_executed_for("peer-b");
        assert!(
            r.should_execute("peer-b"),
            "one unreciprocated query is within tolerance 2"
        );
        r.record_executed_for("peer-b");
        assert!(!r.should_execute("peer-b"), "balance reached the tolerance");
        // The peer reciprocates: we are willing again.
        r.record_executed_by("peer-b");
        assert!(r.should_execute("peer-b"));
        assert_eq!(r.balance("peer-b"), 1);
        assert_eq!(r.peer_count(), 1);
        assert_eq!(r.balance("stranger"), 0);
    }
}
