//! Aggregation topologies used by the redundancy defense.
//!
//! PIER builds its aggregation trees out of the DHT's multi-hop routes
//! toward a root identifier (§3.3.3/§3.3.4): a node's parent is the next
//! hop of its route to the root, so the tree shape is determined by the
//! overlay's routing geometry.  The redundancy study of §4.1.2 asks how
//! different *dissemination and aggregation topologies* limit the influence
//! an adversary can have on the computed result.  This module constructs
//! the candidate topologies deterministically from a set of member
//! identifiers and a root key:
//!
//! * a **single tree** — the baseline PIER aggregation tree,
//! * ***k* independent trees** — the same members arranged under `k`
//!   root keys salted differently, so a node's ancestors differ from tree to
//!   tree and a single compromised aggregator cannot sit on every path, and
//! * a **multi-parent DAG** — every non-root node forwards its partial to
//!   `p` distinct parents (the "rings" construction used by synopsis
//!   diffusion), which only makes sense together with duplicate-insensitive
//!   sketches.
//!
//! Tree construction mimics the DHT geometry: a node's parent is the member
//! whose identifier most closely precedes `id/2^level`-style progressively
//! halved distance to the root, yielding the roughly-logarithmic depth the
//! paper's distribution trees exhibit.

use std::collections::BTreeMap;

/// Which aggregation topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The baseline: one aggregation tree rooted at the query's root key.
    SingleTree,
    /// `k` trees with independently salted roots; each source feeds all of
    /// them and the querier combines the `k` root results.
    RedundantTrees(usize),
    /// A single leveled DAG in which every node forwards to `p` parents.
    MultiParentDag(usize),
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One aggregation structure over a fixed membership: for every member the
/// list of parents its partial aggregate is forwarded to.  The root has no
/// parents.
#[derive(Debug, Clone)]
pub struct AggregationTopology {
    /// The member identifiers, sorted.
    members: Vec<u64>,
    /// The root member of this structure.
    root: u64,
    /// parents[id] = the members this member forwards to.
    parents: BTreeMap<u64, Vec<u64>>,
}

impl AggregationTopology {
    /// Build a single aggregation tree over `members` rooted at the member
    /// closest (in ring distance) to `hash(root_key, salt)`.
    ///
    /// The parent of a node is chosen the way a DHT route would: the member
    /// that halves the remaining ring distance to the root, clamped to the
    /// closest existing member.  This yields logarithmic depth and the
    /// "fan-in grows toward the root" shape of PIER's trees.
    pub fn tree(members: &[u64], root_key: u64, salt: u64) -> Self {
        assert!(!members.is_empty(), "a topology needs at least one member");
        let mut sorted: Vec<u64> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let root_id = mix64(root_key ^ mix64(salt.wrapping_add(1)));
        let root = *sorted
            .iter()
            .min_by_key(|m| ring_distance(**m, root_id))
            .expect("non-empty");
        let mut parents: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &m in &sorted {
            if m == root {
                parents.insert(m, Vec::new());
                continue;
            }
            parents.insert(m, vec![next_hop_toward(&sorted, m, root, salt)]);
        }
        AggregationTopology {
            members: sorted,
            root,
            parents,
        }
    }

    /// Build `k` independent trees (salts `0..k`).
    pub fn redundant_trees(members: &[u64], root_key: u64, k: usize) -> Vec<Self> {
        (0..k.max(1))
            .map(|i| Self::tree(members, root_key, i as u64))
            .collect()
    }

    /// Build a multi-parent DAG in the style of synopsis diffusion's "rings":
    /// members are arranged in levels of doubling size around the root
    /// (level 0 is the root, level 1 the next two members by ring distance,
    /// level 2 the next four, …) and every member forwards its synopsis to
    /// `p` distinct members of the previous level.  Only safe to combine
    /// with duplicate-insensitive sketches, since a synopsis can reach the
    /// root along many paths.
    pub fn multi_parent_dag(members: &[u64], root_key: u64, p: usize) -> Self {
        assert!(!members.is_empty(), "a topology needs at least one member");
        let mut sorted: Vec<u64> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let root_id = mix64(root_key ^ mix64(1));
        let mut by_distance: Vec<u64> = sorted.clone();
        by_distance.sort_by_key(|m| ring_distance(*m, root_id));
        let root = by_distance[0];
        // level(rank) = floor(log2(rank + 1)): sizes 1, 2, 4, 8, …
        let level_of = |rank: usize| (usize::BITS - 1 - (rank + 1).leading_zeros()) as usize;
        let mut parents: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (rank, &m) in by_distance.iter().enumerate() {
            if rank == 0 {
                parents.insert(m, Vec::new());
                continue;
            }
            let level = level_of(rank);
            // The previous ring: ranks [2^(level-1) - 1, 2^level - 1).
            let ring_start = (1usize << (level - 1)) - 1;
            let ring_end = ((1usize << level) - 1).min(by_distance.len());
            let ring = &by_distance[ring_start..ring_end];
            // Deterministically pick min(p, |ring|) *distinct* parents spread
            // across the previous ring.
            let want = p.max(1).min(ring.len());
            let base = (mix64(m) as usize) % ring.len();
            let ps: Vec<u64> = (0..want).map(|j| ring[(base + j) % ring.len()]).collect();
            parents.insert(m, ps);
        }
        AggregationTopology {
            members: sorted,
            root,
            parents,
        }
    }

    /// Build the topology described by `kind`; redundant trees are returned
    /// as several structures.
    pub fn build(kind: TopologyKind, members: &[u64], root_key: u64) -> Vec<Self> {
        match kind {
            TopologyKind::SingleTree => vec![Self::tree(members, root_key, 0)],
            TopologyKind::RedundantTrees(k) => Self::redundant_trees(members, root_key, k),
            TopologyKind::MultiParentDag(p) => vec![Self::multi_parent_dag(members, root_key, p)],
        }
    }

    /// The member acting as this structure's root.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// All members, sorted.
    pub fn members(&self) -> &[u64] {
        &self.members
    }

    /// The parents of `member` (empty for the root, and for unknown members).
    pub fn parents_of(&self, member: u64) -> &[u64] {
        self.parents.get(&member).map_or(&[], Vec::as_slice)
    }

    /// The depth of `member`: number of forwarding hops to reach the root
    /// along the first-parent chain.
    pub fn depth_of(&self, member: u64) -> usize {
        let mut depth = 0;
        let mut current = member;
        let mut guard = self.members.len() + 1;
        while current != self.root && guard > 0 {
            match self.parents_of(current).first() {
                Some(&p) => current = p,
                None => break,
            }
            depth += 1;
            guard -= 1;
        }
        depth
    }

    /// Maximum depth over all members.
    pub fn max_depth(&self) -> usize {
        self.members
            .iter()
            .map(|m| self.depth_of(*m))
            .max()
            .unwrap_or(0)
    }

    /// All ancestors of `member` reachable along any parent chain (does not
    /// include the member itself; includes the root).  Used by the adversary
    /// model to decide whether a source's contribution can be suppressed.
    pub fn ancestors_of(&self, member: u64) -> Vec<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut frontier = vec![member];
        while let Some(m) = frontier.pop() {
            for &p in self.parents_of(m) {
                if seen.insert(p) {
                    frontier.push(p);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// True when, with the `compromised` set of members acting maliciously
    /// (suppressing everything they relay), a contribution originating at
    /// `member` can still reach the root along some all-honest path.
    pub fn survives(&self, member: u64, compromised: &std::collections::BTreeSet<u64>) -> bool {
        if compromised.contains(&member) {
            return false; // the source itself is compromised
        }
        if member == self.root {
            return true;
        }
        // Depth-first search over honest parents.
        let mut stack = vec![member];
        let mut visited = std::collections::BTreeSet::new();
        while let Some(m) = stack.pop() {
            if m == self.root {
                return true;
            }
            if !visited.insert(m) {
                continue;
            }
            for &p in self.parents_of(m) {
                if !compromised.contains(&p) {
                    stack.push(p);
                }
            }
        }
        false
    }
}

/// Clockwise ring distance from `from` to `to` in the 64-bit identifier ring.
fn ring_distance(from: u64, to: u64) -> u64 {
    to.wrapping_sub(from)
}

/// The DHT next hop from `from` toward `root`: the classic Chord greedy
/// step — the member owning `from + 2^k`, where `2^k` is the largest
/// power-of-two step that does not overshoot the root.  Routing every member
/// toward the root this way yields the (roughly) binomial distribution /
/// aggregation trees the paper attributes to Chord-style overlays
/// (§3.3.3 footnote): the root has ~log₂(n) children whose subtrees cover
/// n/2, n/4, … of the membership.  Independent redundant trees differ by
/// their salted root choice (see [`AggregationTopology::tree`]), not by the
/// per-hop rule.
fn next_hop_toward(sorted_members: &[u64], from: u64, root: u64, _salt: u64) -> u64 {
    let distance = ring_distance(from, root);
    if distance == 0 {
        return root;
    }
    // Largest finger 2^k ≤ distance.
    let k = 63 - distance.leading_zeros();
    let target = from.wrapping_add(1u64 << k);
    // successor(target): the first member clockwise at or after the finger
    // target, excluding the node itself.
    let candidate = sorted_members
        .iter()
        .copied()
        .filter(|m| *m != from)
        .min_by_key(|m| ring_distance(target, *m))
        .unwrap_or(root);
    // Enforce forward progress: the hop must strictly reduce distance to the
    // root, otherwise go straight to the root.
    if ring_distance(candidate, root) < distance {
        candidate
    } else {
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn members(n: usize, seed: u64) -> Vec<u64> {
        (0..n as u64).map(|i| mix64(i ^ mix64(seed))).collect()
    }

    #[test]
    fn tree_has_single_root_and_everyone_reaches_it() {
        let m = members(100, 7);
        let t = AggregationTopology::tree(&m, 42, 0);
        let roots: Vec<u64> = m
            .iter()
            .filter(|x| t.parents_of(**x).is_empty())
            .copied()
            .collect();
        assert_eq!(roots, vec![t.root()]);
        for &x in t.members() {
            assert!(
                t.survives(x, &BTreeSet::new()),
                "member {x} cannot reach the root"
            );
        }
    }

    #[test]
    fn tree_depth_is_logarithmic_ish() {
        let m = members(256, 3);
        let t = AggregationTopology::tree(&m, 9, 0);
        // A path-shaped tree would have depth ~255; a DHT-like tree should be
        // well under 4·log2(n) = 32.
        assert!(t.max_depth() <= 32, "depth {} too large", t.max_depth());
    }

    #[test]
    fn redundant_trees_have_distinct_shapes() {
        let m = members(64, 11);
        let trees = AggregationTopology::redundant_trees(&m, 5, 3);
        assert_eq!(trees.len(), 3);
        // At least one member must have a different parent in different trees
        // (otherwise redundancy buys nothing).
        let differs = m.iter().any(|x| {
            let p0 = trees[0].parents_of(*x).to_vec();
            let p1 = trees[1].parents_of(*x).to_vec();
            p0 != p1
        });
        assert!(differs, "salted trees should route differently");
    }

    #[test]
    fn dag_gives_every_non_root_member_multiple_parents_when_possible() {
        let m = members(50, 2);
        let dag = AggregationTopology::multi_parent_dag(&m, 1, 2);
        let multi = m.iter().filter(|x| dag.parents_of(**x).len() >= 2).count();
        // All but the root and the single rank-1 member can have 2 parents.
        assert!(multi >= m.len() - 3, "only {multi} members have 2 parents");
        assert!(dag.parents_of(dag.root()).is_empty());
    }

    #[test]
    fn survives_respects_compromised_relays() {
        let m = members(40, 19);
        let t = AggregationTopology::tree(&m, 4, 0);
        // Compromise every direct parent of some leaf: the leaf must not
        // survive in a single tree.
        let leaf = *m
            .iter()
            .find(|x| **x != t.root() && !t.parents_of(**x).is_empty())
            .unwrap();
        let compromised: BTreeSet<u64> = t.parents_of(leaf).iter().copied().collect();
        if !compromised.contains(&t.root()) {
            assert!(!t.survives(leaf, &compromised));
        }
        // The root always survives an empty compromise set.
        assert!(t.survives(t.root(), &BTreeSet::new()));
    }

    #[test]
    fn ancestors_include_the_root() {
        let m = members(30, 23);
        let t = AggregationTopology::tree(&m, 8, 1);
        for &x in t.members() {
            if x == t.root() {
                continue;
            }
            assert!(
                t.ancestors_of(x).contains(&t.root()),
                "{x} missing root ancestor"
            );
        }
    }

    #[test]
    fn build_dispatches_on_kind() {
        let m = members(20, 31);
        assert_eq!(
            AggregationTopology::build(TopologyKind::SingleTree, &m, 1).len(),
            1
        );
        assert_eq!(
            AggregationTopology::build(TopologyKind::RedundantTrees(4), &m, 1).len(),
            4
        );
        assert_eq!(
            AggregationTopology::build(TopologyKind::MultiParentDag(3), &m, 1).len(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_membership_panics() {
        AggregationTopology::tree(&[], 1, 0);
    }
}
