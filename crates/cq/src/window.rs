//! Time-window arithmetic for continuous queries.
//!
//! A window specification divides the time axis into (possibly overlapping)
//! windows of length `size` starting every `slide` microseconds.  Window `w`
//! covers `[w * slide, w * slide + size)`.  A tumbling window is the special
//! case `slide == size`; a sliding window has `slide < size` and every event
//! falls into `ceil(size / slide)` windows.

use pier_runtime::{Duration, SimTime, WireSize};

/// Identifier of one window instance: window `w` covers
/// `[w * slide, w * slide + size)` on the virtual-time axis.
pub type WindowId = u64;

/// A tumbling or sliding time-window specification (all times in
/// microseconds of virtual time, like every other duration in the system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length.
    pub size: Duration,
    /// Distance between consecutive window starts; `slide == size` tumbles.
    pub slide: Duration,
    /// Extra time after a window's end before it is closed, giving in-flight
    /// tuples and relayed partials time to arrive.
    pub grace: Duration,
}

impl WindowSpec {
    /// A tumbling window of length `size`.
    pub fn tumbling(size: Duration) -> Self {
        WindowSpec {
            size: size.max(1),
            slide: size.max(1),
            grace: 0,
        }
    }

    /// A sliding window of length `size` advancing every `slide`.
    pub fn sliding(size: Duration, slide: Duration) -> Self {
        let size = size.max(1);
        WindowSpec {
            size,
            slide: slide.clamp(1, size),
            grace: 0,
        }
    }

    /// Set the close grace period.
    pub fn with_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }

    /// True when the window tumbles (no overlap).
    pub fn is_tumbling(&self) -> bool {
        self.slide == self.size
    }

    /// Number of windows every event falls into.
    pub fn windows_per_event(&self) -> u64 {
        self.size.div_ceil(self.slide)
    }

    /// `[start, end)` bounds of window `id`.
    pub fn bounds(&self, id: WindowId) -> (SimTime, SimTime) {
        let start = id.saturating_mul(self.slide);
        (start, start.saturating_add(self.size))
    }

    /// The time at which window `id` may be closed (its end plus grace).
    pub fn close_time(&self, id: WindowId) -> SimTime {
        self.bounds(id).1.saturating_add(self.grace)
    }

    /// All windows containing event-time `t`, oldest first.
    pub fn windows_containing(&self, t: SimTime) -> impl Iterator<Item = WindowId> {
        // w * slide <= t < w * slide + size  ⇔  (t - size, t] ∋ w * slide.
        let last = t / self.slide;
        let first = t
            .saturating_sub(self.size.saturating_sub(1))
            .div_ceil(self.slide);
        first..=last
    }

    /// The newest window that is closable at `now` (its close time has
    /// passed), if any.
    pub fn last_closable(&self, now: SimTime) -> Option<WindowId> {
        let horizon = now.saturating_sub(self.size.saturating_add(self.grace));
        if now < self.size.saturating_add(self.grace) {
            return None;
        }
        Some(horizon / self.slide)
    }
}

impl WireSize for WindowSpec {
    fn wire_size(&self) -> usize {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_windows_partition_time() {
        let w = WindowSpec::tumbling(10);
        for t in 0..100u64 {
            let ids: Vec<WindowId> = w.windows_containing(t).collect();
            assert_eq!(ids.len(), 1, "t={t} ids={ids:?}");
            let (s, e) = w.bounds(ids[0]);
            assert!(s <= t && t < e);
        }
    }

    #[test]
    fn sliding_windows_overlap_by_the_expected_factor() {
        let w = WindowSpec::sliding(30, 10);
        assert_eq!(w.windows_per_event(), 3);
        // Once past the ramp-up, every instant is covered by exactly 3 windows.
        for t in 30..200u64 {
            let ids: Vec<WindowId> = w.windows_containing(t).collect();
            assert_eq!(ids.len(), 3, "t={t} ids={ids:?}");
            for id in ids {
                let (s, e) = w.bounds(id);
                assert!(s <= t && t < e, "t={t} not in [{s},{e})");
            }
        }
    }

    #[test]
    fn close_time_includes_grace() {
        let w = WindowSpec::sliding(30, 10).with_grace(5);
        assert_eq!(w.close_time(0), 35);
        assert_eq!(w.close_time(2), 55);
        assert_eq!(w.last_closable(34), None);
        assert_eq!(w.last_closable(35), Some(0));
        assert_eq!(w.last_closable(54), Some(1));
        assert_eq!(w.last_closable(55), Some(2));
    }

    #[test]
    fn degenerate_specs_are_clamped() {
        let w = WindowSpec::sliding(10, 0);
        assert_eq!(w.slide, 1);
        let w = WindowSpec::sliding(10, 99);
        assert!(w.is_tumbling());
        let w = WindowSpec::tumbling(0);
        assert_eq!(w.size, 1);
    }
}
