//! Append-only window-segment log: durable state for continuous queries.
//!
//! All window state in PIER is soft — it dies with the node, and soft-state
//! re-dissemination repairs only the *plan*.  The segment log adds the
//! storage discipline the ROADMAP borrows from pre-built binary shards: a
//! [`WindowStore`](crate::state::WindowStore) periodically appends a snapshot
//! of its open windows as **length-prefixed, checksummed records**, and a
//! restarted node *rehydrates* the store from the log instead of recomputing
//! windows from scratch.
//!
//! The format is deliberately dumb:
//!
//! ```text
//! record := len:u32 LE | fnv1a64(payload):u64 LE | payload
//! ```
//!
//! A crash can tear the tail of the log mid-append; the reader detects a
//! short or checksum-corrupt tail, reports it, and rehydrates only the clean
//! prefix ([`SegmentLog::truncate_torn_tail`] chops the damage off).  Within
//! one payload, group and dedup keys are written in sorted order, so
//! encode → rehydrate → encode is **byte-for-byte** stable (the property the
//! segment proptest pins).
//!
//! Accumulators serialise through [`SegmentCodec`], implemented by the
//! executor's aggregate partials (`pier-core`'s `GroupAgg`) and by anything
//! else that wants durable windows.  Scalar values inside those states use
//! the same tagged little-endian codec as the wire (`pier-core`'s
//! `Value::encode`/`Value::decode`), so durable snapshots and DHT payloads
//! share one byte-level value format.

use crate::window::WindowId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Byte-level serialisation contract for durable accumulator state.
///
/// `decode_state(encode_state(x)) == x` must hold, and `encode_state` must be
/// deterministic (equal states produce equal bytes) for the byte-for-byte
/// round-trip guarantee.
pub trait SegmentCodec: Sized {
    /// Append this accumulator's state to `buf`.
    fn encode_state(&self, buf: &mut Vec<u8>);
    /// Rebuild an accumulator from bytes produced by [`encode_state`].
    /// Returns `None` on malformed input.
    ///
    /// [`encode_state`]: SegmentCodec::encode_state
    fn decode_state(bytes: &[u8]) -> Option<Self>;
}

/// One open window, as stored in a segment record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSegment {
    /// Window instance this snapshot belongs to.
    pub id: WindowId,
    /// Tuples folded into the window at snapshot time.
    pub tuples: u64,
    /// Whether the window had un-emitted changes at snapshot time.
    pub dirty: bool,
    /// Group key → encoded accumulator state, sorted by key.
    pub groups: Vec<(String, Vec<u8>)>,
    /// Window-scoped dedup keys, sorted.
    pub seen: Vec<String>,
}

/// One record of the segment log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentRecord {
    /// Snapshot of one open window (later records supersede earlier ones
    /// for the same window id).
    Window(WindowSegment),
    /// The store's close/retire horizons at snapshot time.
    Watermark {
        closed_through: Option<WindowId>,
        retired_through: Option<WindowId>,
    },
}

const TAG_WINDOW: u8 = 1;
const TAG_WATERMARK: u8 = 2;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let s = self.bytes.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(s)
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }
}

impl SegmentRecord {
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            SegmentRecord::Window(w) => {
                buf.push(TAG_WINDOW);
                put_u64(buf, w.id);
                put_u64(buf, w.tuples);
                buf.push(w.dirty as u8);
                put_u32(buf, w.groups.len() as u32);
                for (key, state) in &w.groups {
                    put_bytes(buf, key.as_bytes());
                    put_bytes(buf, state);
                }
                put_u32(buf, w.seen.len() as u32);
                for key in &w.seen {
                    put_bytes(buf, key.as_bytes());
                }
            }
            SegmentRecord::Watermark {
                closed_through,
                retired_through,
            } => {
                buf.push(TAG_WATERMARK);
                for horizon in [closed_through, retired_through] {
                    buf.push(horizon.is_some() as u8);
                    put_u64(buf, horizon.unwrap_or(0));
                }
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Option<SegmentRecord> {
        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            TAG_WINDOW => {
                let id = r.u64()?;
                let tuples = r.u64()?;
                let dirty = r.u8()? != 0;
                let n_groups = r.u32()? as usize;
                let mut groups = Vec::with_capacity(n_groups.min(4_096));
                for _ in 0..n_groups {
                    let key = r.string()?;
                    let state = r.bytes()?.to_vec();
                    groups.push((key, state));
                }
                let n_seen = r.u32()? as usize;
                let mut seen = Vec::with_capacity(n_seen.min(4_096));
                for _ in 0..n_seen {
                    seen.push(r.string()?);
                }
                SegmentRecord::Window(WindowSegment {
                    id,
                    tuples,
                    dirty,
                    groups,
                    seen,
                })
            }
            TAG_WATERMARK => {
                let mut horizons = [None, None];
                for h in &mut horizons {
                    let present = r.u8()? != 0;
                    let v = r.u64()?;
                    *h = present.then_some(v);
                }
                SegmentRecord::Watermark {
                    closed_through: horizons[0],
                    retired_through: horizons[1],
                }
            }
            _ => return None,
        };
        (r.pos == payload.len()).then_some(rec)
    }
}

/// Result of scanning a segment log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Records recovered from the clean prefix, in append order.
    pub records: Vec<SegmentRecord>,
    /// Byte length of the clean prefix.
    pub valid_len: usize,
    /// True when bytes beyond `valid_len` form a torn or corrupt tail.
    pub torn_tail: bool,
}

/// An append-only log of [`SegmentRecord`]s with per-record checksums and
/// torn-tail detection.  This is the in-memory stand-in for an on-disk
/// segment file: the simulator's "disk" survives a node's crash inside a
/// [`DurableStore`] even though the node's program state is gone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentLog {
    bytes: Vec<u8>,
    records: usize,
}

impl SegmentLog {
    /// An empty log.
    pub fn new() -> Self {
        SegmentLog::default()
    }

    /// Adopt raw bytes (e.g. read back from a file); the record count is
    /// whatever a scan recovers.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let mut log = SegmentLog { bytes, records: 0 };
        log.records = log.scan().records.len();
        log
    }

    /// Append one record: `len | checksum | payload`.
    pub fn append(&mut self, rec: &SegmentRecord) {
        let mut payload = Vec::new();
        rec.encode_payload(&mut payload);
        put_u32(&mut self.bytes, payload.len() as u32);
        put_u64(&mut self.bytes, fnv1a64(&payload));
        self.bytes.extend_from_slice(&payload);
        self.records += 1;
    }

    /// Scan the log: decode every clean record and report whether a torn
    /// tail follows them.
    pub fn scan(&self) -> SegmentScan {
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            let rest = &self.bytes[pos..];
            if rest.is_empty() {
                return SegmentScan {
                    records,
                    valid_len: pos,
                    torn_tail: false,
                };
            }
            let torn = SegmentScan {
                records: Vec::new(),
                valid_len: pos,
                torn_tail: true,
            };
            if rest.len() < 12 {
                return SegmentScan { records, ..torn };
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            if rest.len() < 12 + len {
                return SegmentScan { records, ..torn };
            }
            let payload = &rest[12..12 + len];
            if fnv1a64(payload) != sum {
                return SegmentScan { records, ..torn };
            }
            match SegmentRecord::decode_payload(payload) {
                Some(rec) => records.push(rec),
                None => return SegmentScan { records, ..torn },
            }
            pos += 12 + len;
        }
    }

    /// Chop a torn tail off, keeping only the clean prefix.  Returns the
    /// number of bytes removed (0 when the log was already clean).
    pub fn truncate_torn_tail(&mut self) -> usize {
        let scan = self.scan();
        let removed = self.bytes.len() - scan.valid_len;
        self.bytes.truncate(scan.valid_len);
        self.records = scan.records.len();
        removed
    }

    /// Raw log bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Byte length of the log.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Records appended (or recovered at construction).
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Simulate a crash mid-append by dropping the last `drop_bytes` bytes —
    /// the resulting tail record is torn and must not rehydrate.
    pub fn tear_tail(&mut self, drop_bytes: usize) {
        let keep = self.bytes.len().saturating_sub(drop_bytes);
        self.bytes.truncate(keep);
    }
}

/// A shared "disk" of segment logs keyed by name (one key per query per
/// store role, e.g. `q7.local` / `q7.root`).  Nodes hold cheap clones; the
/// harness keeps one per node ref so the log survives the node's crash and
/// is handed to the restarted program — that is the whole point.
#[derive(Debug, Clone, Default)]
pub struct DurableStore {
    inner: Arc<Mutex<HashMap<String, SegmentLog>>>,
}

impl DurableStore {
    /// An empty store.
    pub fn new() -> Self {
        DurableStore::default()
    }

    /// Run `f` against the log under `key`, creating it empty on first use.
    pub fn with_log<R>(&self, key: &str, f: impl FnOnce(&mut SegmentLog) -> R) -> R {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        f(inner.entry(key.to_string()).or_default())
    }

    /// Clone the log under `key`, if present and non-empty.
    pub fn get(&self, key: &str) -> Option<SegmentLog> {
        let inner = self.inner.lock().expect("durable store poisoned");
        inner.get(key).filter(|l| !l.is_empty()).cloned()
    }

    /// All keys with non-empty logs, sorted.
    pub fn keys(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("durable store poisoned");
        let mut keys: Vec<String> = inner
            .iter()
            .filter(|(_, l)| !l.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Total bytes across all logs (the "disk" footprint).
    pub fn total_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("durable store poisoned");
        inner.values().map(SegmentLog::len).sum()
    }

    /// Drop the log under `key` (e.g. on clean query teardown).
    pub fn remove(&self, key: &str) {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        inner.remove(key);
    }
}

/// What a rehydration recovered (surfaced as the `window.rehydrate`
/// telemetry event and asserted by the chaos bench's warm-restart check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehydrateReport {
    /// Windows restored into the store.
    pub windows: usize,
    /// Groups restored across those windows.
    pub groups: usize,
    /// Tuples those windows had absorbed before the crash.
    pub tuples: u64,
    /// Clean records scanned from the log.
    pub records: usize,
    /// Window snapshots skipped because the log says they were already
    /// closed or retired (re-adding them would double-count downstream).
    pub skipped: usize,
    /// True when a torn tail was detected (and ignored).
    pub torn_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(id: WindowId, groups: &[(&str, &[u8])]) -> SegmentRecord {
        SegmentRecord::Window(WindowSegment {
            id,
            tuples: groups.len() as u64,
            dirty: true,
            groups: groups
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_vec()))
                .collect(),
            seen: vec!["d1".to_string()],
        })
    }

    #[test]
    fn append_scan_round_trip() {
        let mut log = SegmentLog::new();
        let recs = vec![
            window(3, &[("a", b"xyz"), ("b", b"")]),
            SegmentRecord::Watermark {
                closed_through: Some(2),
                retired_through: None,
            },
        ];
        for r in &recs {
            log.append(r);
        }
        let scan = log.scan();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(log.record_count(), 2);
    }

    #[test]
    fn torn_tail_detected_and_truncated() {
        let mut log = SegmentLog::new();
        log.append(&window(1, &[("a", b"12345678")]));
        let clean_len = log.len();
        log.append(&window(2, &[("b", b"abcdefgh")]));
        log.tear_tail(5);
        let scan = log.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1, "only the clean prefix rehydrates");
        assert_eq!(scan.valid_len, clean_len);
        let removed = log.truncate_torn_tail();
        assert!(removed > 0);
        assert!(!log.scan().torn_tail);
        assert_eq!(log.len(), clean_len);
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let mut log = SegmentLog::new();
        log.append(&window(1, &[("a", b"payload")]));
        let mut bytes = log.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let corrupt = SegmentLog::from_bytes(bytes);
        let scan = corrupt.scan();
        assert!(scan.torn_tail);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn from_bytes_recovers_record_count() {
        let mut log = SegmentLog::new();
        log.append(&window(1, &[]));
        log.append(&window(2, &[]));
        let copy = SegmentLog::from_bytes(log.as_bytes().to_vec());
        assert_eq!(copy.record_count(), 2);
        assert_eq!(copy, log);
    }

    #[test]
    fn durable_store_survives_and_lists() {
        let disk = DurableStore::new();
        disk.with_log("q1.local", |l| l.append(&window(1, &[("a", b"s")])));
        let handle = disk.clone();
        assert_eq!(handle.keys(), vec!["q1.local".to_string()]);
        assert!(handle.get("q1.local").is_some());
        assert!(handle.get("q9.local").is_none());
        assert!(handle.total_bytes() > 0);
        disk.remove("q1.local");
        assert!(handle.get("q1.local").is_none());
    }
}
