//! # pier-cq — the continuous-query subsystem
//!
//! PIER's flagship workload, network monitoring (Figure 2), is a *standing*
//! query over an endless stream of packet and flow tuples.  This crate
//! provides the machinery that turns the one-shot executor of `pier-core`
//! into a long-running monitoring engine:
//!
//! * [`window`] — tumbling and sliding time windows: window identifier
//!   arithmetic, bounds, close times and the [`window::WindowSpec`] that
//!   travels inside query plans.
//! * [`state`] — the per-node [`state::WindowStore`]: window-scoped grouped
//!   state with duplicate elimination, explicit work/state budgets (load
//!   shedding instead of unbounded growth), order-insensitive merging of
//!   partial window state, and eviction of expired windows.
//! * [`delta`] — delta-output semantics: per-window snapshot results or
//!   insert/retract streams computed against the previous emission of the
//!   same window ([`delta::DeltaTracker`]).
//! * [`shared`] — multi-query **share-group** window state: one
//!   local/root [`state::WindowStore`] pair serving N constant-varied
//!   member queries, each member's per-window answer derived from the
//!   shared accumulators at flush through its own [`delta::DeltaTracker`]
//!   (the state half of the `pier-mqo` subsystem).
//! * [`lifecycle`] — the soft-state continuous-query lifecycle: leases that
//!   must be renewed by periodic re-dissemination (so a query dies everywhere
//!   once its owner stops renewing, and reaches nodes that joined after it
//!   was first disseminated), plus per-query budgets, jittered-exponential
//!   renewal backoff ([`lifecycle::RenewalBackoff`]) and the
//!   restarted-vs-gone lease distinction ([`lifecycle::LeaseStatus`]).
//! * [`segment`] — the durable half of recovery: an append-only
//!   [`segment::SegmentLog`] of length-prefixed, checksummed window
//!   snapshots with torn-tail detection, and the shared
//!   [`segment::DurableStore`] "disk" a restarted node rehydrates warm
//!   windows from ([`state::WindowStore::rehydrate_from`]).
//!
//! The crate is deliberately *below* the query processor: everything here is
//! generic over the accumulator type (`pier-core` plugs its mergeable
//! `AggState` partial aggregates in) so the same windowing engine can back
//! other workloads.  Only `pier-runtime` types (durations, wire sizing) are
//! used.
//!
//! ## Invariants
//!
//! * **Soft-state leases**: a standing query exists at a node only while
//!   its [`Lease`] is live; leases extend solely through re-dissemination
//!   by the query's owner ([`lifecycle`]).  An owner that stops renewing —
//!   or a node partitioned away from it — lets the lease lapse, and the
//!   node uninstalls the query unilaterally.  There is no teardown
//!   protocol; forgetting *is* the protocol.
//! * **Order-insensitive merging**: window accumulators
//!   ([`WindowAccumulator::merge`]) must be commutative and associative so
//!   partials combining along arbitrary overlay routes (and re-ordered by
//!   churn) converge to the same per-window result (property-tested).
//! * **Bounded state**: a [`WindowStore`] never exceeds its [`CqBudget`] —
//!   over-budget pushes shed load and expired windows are evicted, so a
//!   node's CQ footprint is bounded regardless of stream rate or window
//!   count.
//! * **Refinement, not finality**: window emission is *retained and
//!   refined* — late partials keep merging into already-emitted windows and
//!   re-emit (as fresh snapshots or insert/retract [`Delta`]s) until the
//!   retention horizon retires the window.

pub mod delta;
pub mod lifecycle;
pub mod segment;
pub mod shared;
pub mod state;
pub mod window;

pub use delta::{Delta, DeltaMode, DeltaTracker};
pub use lifecycle::{CqBudget, Lease, LeaseStatus, RenewalBackoff};
pub use segment::{
    DurableStore, RehydrateReport, SegmentCodec, SegmentLog, SegmentRecord, SegmentScan,
    WindowSegment,
};
pub use shared::{MemberEmission, SharedWindowState};
pub use state::{WindowAccumulator, WindowStats, WindowStore};
pub use window::{WindowId, WindowSpec};
