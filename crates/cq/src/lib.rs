//! # pier-cq — the continuous-query subsystem
//!
//! PIER's flagship workload, network monitoring (Figure 2), is a *standing*
//! query over an endless stream of packet and flow tuples.  This crate
//! provides the machinery that turns the one-shot executor of `pier-core`
//! into a long-running monitoring engine:
//!
//! * [`window`] — tumbling and sliding time windows: window identifier
//!   arithmetic, bounds, close times and the [`window::WindowSpec`] that
//!   travels inside query plans.
//! * [`state`] — the per-node [`state::WindowStore`]: window-scoped grouped
//!   state with duplicate elimination, explicit work/state budgets (load
//!   shedding instead of unbounded growth), order-insensitive merging of
//!   partial window state, and eviction of expired windows.
//! * [`delta`] — delta-output semantics: per-window snapshot results or
//!   insert/retract streams computed against the previous emission of the
//!   same window ([`delta::DeltaTracker`]).
//! * [`lifecycle`] — the soft-state continuous-query lifecycle: leases that
//!   must be renewed by periodic re-dissemination (so a query dies everywhere
//!   once its owner stops renewing, and reaches nodes that joined after it
//!   was first disseminated), plus per-query budgets.
//!
//! The crate is deliberately *below* the query processor: everything here is
//! generic over the accumulator type (`pier-core` plugs its mergeable
//! `AggState` partial aggregates in) so the same windowing engine can back
//! other workloads.  Only `pier-runtime` types (durations, wire sizing) are
//! used.

pub mod delta;
pub mod lifecycle;
pub mod state;
pub mod window;

pub use delta::{Delta, DeltaMode, DeltaTracker};
pub use lifecycle::{CqBudget, Lease};
pub use state::{WindowAccumulator, WindowStats, WindowStore};
pub use window::{WindowId, WindowSpec};
