//! The soft-state lifecycle of a continuous query.
//!
//! A standing query must not outlive its owner: PIER keeps *all* distributed
//! state soft (§3.2.3), and continuous queries follow the same discipline.
//! The query's proxy periodically **re-disseminates** the plan; every node
//! holding the query treats each arrival as a lease renewal.  A node that
//! misses renewals (partitioned away, or the owner went away) silently
//! uninstalls the query when the lease expires.  Re-dissemination doubles as
//! churn repair: nodes that joined — or restarted — after the original
//! dissemination receive the plan on the next renewal round and join the
//! computation.
//!
//! [`CqBudget`] is the per-query work/state bound every node enforces
//! locally (PIQL-style bounded-work contracts): a continuous query may be
//! long-lived, but its footprint on any node is capped.

use pier_runtime::{Duration, Rng64, SimTime, WireSize};

/// Per-node, per-query work and state bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqBudget {
    /// Maximum simultaneously open windows (oldest evicts beyond this).
    pub max_open_windows: u32,
    /// Maximum groups held per window (further groups are shed).
    pub max_groups_per_window: u32,
    /// Maximum tuples folded into one window at this node (work bound).
    pub max_tuples_per_window: u64,
}

impl Default for CqBudget {
    fn default() -> Self {
        CqBudget {
            max_open_windows: 64,
            max_groups_per_window: 4_096,
            max_tuples_per_window: 1_000_000,
        }
    }
}

impl WireSize for CqBudget {
    fn wire_size(&self) -> usize {
        16
    }
}

/// A node's lease on one continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// When the lease expires if not renewed.
    pub expires_at: SimTime,
    /// How much each renewal extends the lease.
    pub duration: Duration,
    /// Renewals observed (diagnostics).
    pub renewals: u32,
}

impl Lease {
    /// A fresh lease granted at `now`.
    pub fn granted(now: SimTime, duration: Duration) -> Self {
        Lease {
            expires_at: now.saturating_add(duration),
            duration,
            renewals: 0,
        }
    }

    /// Extend the lease from `now` (a renewal arrived).
    pub fn renew(&mut self, now: SimTime) {
        self.expires_at = self.expires_at.max(now.saturating_add(self.duration));
        self.renewals += 1;
    }

    /// True once the lease has lapsed.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }

    /// Classify the lease at `now`, distinguishing a peer that is
    /// *restarted-and-rehydrating* from one that is *gone*.  With durable
    /// window segments, a node that crashes and restarts can rejoin with
    /// warm state — tearing its query down at the instant the lease lapses
    /// would throw that state away.  `rehydrate_grace` is the extra window
    /// after expiry during which the holder keeps the query's state parked
    /// (status [`LeaseStatus::Rehydrating`]) waiting for a renewal from the
    /// restarted owner; only after it passes is the query
    /// [`LeaseStatus::Gone`] and swept.  A zero grace reproduces the
    /// original hard-expiry behaviour.
    pub fn status(&self, now: SimTime, rehydrate_grace: Duration) -> LeaseStatus {
        if now < self.expires_at {
            LeaseStatus::Active
        } else if now < self.expires_at.saturating_add(rehydrate_grace) {
            LeaseStatus::Rehydrating
        } else {
            LeaseStatus::Gone
        }
    }
}

/// Where a lease stands in its life, including the restart grace window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseStatus {
    /// The lease is live.
    Active,
    /// The lease lapsed recently; the owner may be a restarted node still
    /// rehydrating durable state, so keep the query parked.
    Rehydrating,
    /// The lease lapsed beyond the grace window: the owner is gone, sweep.
    Gone,
}

/// Jittered exponential backoff for lease renewal / re-dissemination.
///
/// A fixed renewal interval synchronises: after a partition heals, every
/// proxy whose renewals were failing re-disseminates at the same instant and
/// the burst congests exactly the links that just recovered.  This schedule
/// instead draws each delay uniformly from `[d/2, d)` ("equal jitter") where
/// `d = min(base << attempt, cap)`: renewals that keep failing spread out
/// exponentially, and a success resets the schedule to the base interval.
///
/// The first no-progress round is **grace**, not failure: a healthy windowed
/// query emits on its own `EVERY` cadence, and a renewal tick landing just
/// before an emission tick routinely sees "no new results" for one round.
/// Backing off on that phase misalignment would throttle re-dissemination —
/// the very mechanism that repairs churned-in nodes — so the delay only
/// starts doubling on the *second* consecutive miss.  All randomness comes
/// from the caller's [`Rng64`], so runs replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenewalBackoff {
    base: Duration,
    cap: Duration,
    misses: u32,
}

impl RenewalBackoff {
    /// A schedule starting at `base` and never exceeding `cap` per step.
    pub fn new(base: Duration, cap: Duration) -> Self {
        RenewalBackoff {
            base: base.max(1),
            cap: cap.max(base.max(1)),
            misses: 0,
        }
    }

    /// Escalations applied since the last reset (0 while in grace).
    pub fn attempt(&self) -> u32 {
        self.misses.saturating_sub(1)
    }

    /// Note a no-progress renewal round.  The first is forgiven (grace);
    /// from the second consecutive miss on, the next delay doubles, up to
    /// the cap.
    pub fn escalate(&mut self) {
        self.misses = self.misses.saturating_add(1).min(33);
    }

    /// Note a successful renewal: the schedule returns to the base interval.
    pub fn reset(&mut self) {
        self.misses = 0;
    }

    /// Draw the next delay: uniform in `[d/2, d)` for the current ceiling
    /// `d = min(base << attempt, cap)`.
    pub fn next_delay(&self, rng: &mut Rng64) -> Duration {
        let factor = 1u64.checked_shl(self.attempt()).unwrap_or(u64::MAX);
        let ceiling = self.base.saturating_mul(factor).min(self.cap).max(2);
        let half = ceiling / 2;
        half + rng.next_below(ceiling - half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expires_without_renewal() {
        let lease = Lease::granted(100, 50);
        assert!(!lease.expired(149));
        assert!(lease.expired(150));
    }

    #[test]
    fn renewal_extends_from_now() {
        let mut lease = Lease::granted(0, 50);
        lease.renew(40);
        assert_eq!(lease.expires_at, 90);
        assert_eq!(lease.renewals, 1);
        // A stale renewal (clock skew) never shortens the lease.
        lease.renew(10);
        assert_eq!(lease.expires_at, 90);
    }

    #[test]
    fn status_distinguishes_rehydrating_from_gone() {
        let lease = Lease::granted(0, 100);
        assert_eq!(lease.status(99, 50), LeaseStatus::Active);
        assert_eq!(lease.status(100, 50), LeaseStatus::Rehydrating);
        assert_eq!(lease.status(149, 50), LeaseStatus::Rehydrating);
        assert_eq!(lease.status(150, 50), LeaseStatus::Gone);
        // Zero grace reproduces hard expiry.
        assert_eq!(lease.status(100, 0), LeaseStatus::Gone);
    }

    #[test]
    fn backoff_grows_jittered_and_resets() {
        let mut rng = Rng64::new(7);
        let mut b = RenewalBackoff::new(1_000, 16_000);
        let d0 = b.next_delay(&mut rng);
        assert!((500..1_000).contains(&d0));
        // The first miss is grace: still the base interval.
        b.escalate();
        assert_eq!(b.attempt(), 0);
        let grace = b.next_delay(&mut rng);
        assert!((500..1_000).contains(&grace));
        // The second consecutive miss starts doubling.
        b.escalate();
        b.escalate();
        let d2 = b.next_delay(&mut rng);
        assert!((2_000..4_000).contains(&d2));
        for _ in 0..10 {
            b.escalate();
        }
        let capped = b.next_delay(&mut rng);
        assert!((8_000..16_000).contains(&capped), "cap bounds the ceiling");
        b.reset();
        let back = b.next_delay(&mut rng);
        assert!((500..1_000).contains(&back));
    }

    #[test]
    fn backoff_desynchronises_equal_schedules() {
        // Two proxies with the same schedule but different rng streams must
        // not renew at the same instant — the whole point of the jitter.
        let mut r1 = Rng64::new(1);
        let mut r2 = Rng64::new(2);
        let b = RenewalBackoff::new(1_000_000, 8_000_000);
        let delays1: Vec<Duration> = (0..8).map(|_| b.next_delay(&mut r1)).collect();
        let delays2: Vec<Duration> = (0..8).map(|_| b.next_delay(&mut r2)).collect();
        assert_ne!(delays1, delays2);
        // And the same stream replays identically.
        let mut r1b = Rng64::new(1);
        let replay: Vec<Duration> = (0..8).map(|_| b.next_delay(&mut r1b)).collect();
        assert_eq!(delays1, replay);
    }

    #[test]
    fn default_budget_is_finite() {
        let b = CqBudget::default();
        assert!(b.max_open_windows > 0);
        assert!(b.max_groups_per_window > 0);
        assert!(b.max_tuples_per_window > 0);
    }
}
