//! The soft-state lifecycle of a continuous query.
//!
//! A standing query must not outlive its owner: PIER keeps *all* distributed
//! state soft (§3.2.3), and continuous queries follow the same discipline.
//! The query's proxy periodically **re-disseminates** the plan; every node
//! holding the query treats each arrival as a lease renewal.  A node that
//! misses renewals (partitioned away, or the owner went away) silently
//! uninstalls the query when the lease expires.  Re-dissemination doubles as
//! churn repair: nodes that joined — or restarted — after the original
//! dissemination receive the plan on the next renewal round and join the
//! computation.
//!
//! [`CqBudget`] is the per-query work/state bound every node enforces
//! locally (PIQL-style bounded-work contracts): a continuous query may be
//! long-lived, but its footprint on any node is capped.

use pier_runtime::{Duration, SimTime, WireSize};

/// Per-node, per-query work and state bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqBudget {
    /// Maximum simultaneously open windows (oldest evicts beyond this).
    pub max_open_windows: u32,
    /// Maximum groups held per window (further groups are shed).
    pub max_groups_per_window: u32,
    /// Maximum tuples folded into one window at this node (work bound).
    pub max_tuples_per_window: u64,
}

impl Default for CqBudget {
    fn default() -> Self {
        CqBudget {
            max_open_windows: 64,
            max_groups_per_window: 4_096,
            max_tuples_per_window: 1_000_000,
        }
    }
}

impl WireSize for CqBudget {
    fn wire_size(&self) -> usize {
        16
    }
}

/// A node's lease on one continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// When the lease expires if not renewed.
    pub expires_at: SimTime,
    /// How much each renewal extends the lease.
    pub duration: Duration,
    /// Renewals observed (diagnostics).
    pub renewals: u32,
}

impl Lease {
    /// A fresh lease granted at `now`.
    pub fn granted(now: SimTime, duration: Duration) -> Self {
        Lease {
            expires_at: now.saturating_add(duration),
            duration,
            renewals: 0,
        }
    }

    /// Extend the lease from `now` (a renewal arrived).
    pub fn renew(&mut self, now: SimTime) {
        self.expires_at = self.expires_at.max(now.saturating_add(self.duration));
        self.renewals += 1;
    }

    /// True once the lease has lapsed.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expires_without_renewal() {
        let lease = Lease::granted(100, 50);
        assert!(!lease.expired(149));
        assert!(lease.expired(150));
    }

    #[test]
    fn renewal_extends_from_now() {
        let mut lease = Lease::granted(0, 50);
        lease.renew(40);
        assert_eq!(lease.expires_at, 90);
        assert_eq!(lease.renewals, 1);
        // A stale renewal (clock skew) never shortens the lease.
        lease.renew(10);
        assert_eq!(lease.expires_at, 90);
    }

    #[test]
    fn default_budget_is_finite() {
        let b = CqBudget::default();
        assert!(b.max_open_windows > 0);
        assert!(b.max_groups_per_window > 0);
        assert!(b.max_tuples_per_window > 0);
    }
}
