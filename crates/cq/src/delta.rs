//! Delta-output semantics for per-window results.
//!
//! A continuous query's client can consume results two ways (§3.3.2 calls
//! both "continuous queries" and leaves the choice to the application):
//!
//! * **Snapshot** — every window emission replaces the previous one; the
//!   client sees the freshest per-window answer and can simply overwrite.
//! * **Deltas** — the engine emits an explicit insert/retract stream: when a
//!   window's answer is refined (late partials arriving after the first
//!   emission), the superseded rows are retracted before the new rows are
//!   inserted, so a downstream materialised view stays exact.
//!
//! The [`DeltaTracker`] remembers the last emission per window and turns a
//! new emission into the minimal delta.  Its memory is bounded: tracked
//! windows are dropped once `retire` is called for them (the query engine
//! retires a window when its refinement horizon passes).

use crate::window::WindowId;
use std::collections::BTreeMap;

/// How per-window results are streamed to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaMode {
    /// Each emission is a full snapshot of the window's answer.
    #[default]
    Snapshot,
    /// Emissions are insert/retract streams against prior emissions.
    Deltas,
}

/// One element of a delta stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta<R> {
    /// A row newly part of the window's answer.
    Insert(R),
    /// A previously emitted row no longer part of the window's answer.
    Retract(R),
}

impl<R> Delta<R> {
    /// The row inside.
    pub fn row(&self) -> &R {
        match self {
            Delta::Insert(r) | Delta::Retract(r) => r,
        }
    }

    /// True for retractions.
    pub fn is_retract(&self) -> bool {
        matches!(self, Delta::Retract(_))
    }
}

/// Turns successive emissions of the same window into delta streams.
#[derive(Debug)]
pub struct DeltaTracker<R> {
    mode: DeltaMode,
    last: BTreeMap<WindowId, Vec<R>>,
}

impl<R: Clone + PartialEq> DeltaTracker<R> {
    /// A tracker operating in `mode`.
    pub fn new(mode: DeltaMode) -> Self {
        DeltaTracker {
            mode,
            last: BTreeMap::new(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> DeltaMode {
        self.mode
    }

    /// Number of windows currently tracked (bounded-memory assertion hook).
    pub fn tracked_windows(&self) -> usize {
        self.last.len()
    }

    /// Record that window `id` now evaluates to `rows` and return what to
    /// send: in snapshot mode, all rows as inserts (the client overwrites);
    /// in delta mode, retractions for superseded rows then inserts for new
    /// ones.  An unchanged emission produces nothing.
    pub fn emit(&mut self, id: WindowId, rows: Vec<R>) -> Vec<Delta<R>> {
        match self.mode {
            DeltaMode::Snapshot => {
                let changed = self.last.get(&id) != Some(&rows);
                self.last.insert(id, rows.clone());
                if changed {
                    rows.into_iter().map(Delta::Insert).collect()
                } else {
                    Vec::new()
                }
            }
            DeltaMode::Deltas => {
                let prev = self.last.get(&id).cloned().unwrap_or_default();
                let mut out = Vec::new();
                for old in &prev {
                    if !rows.contains(old) {
                        out.push(Delta::Retract(old.clone()));
                    }
                }
                for new in &rows {
                    if !prev.contains(new) {
                        out.push(Delta::Insert(new.clone()));
                    }
                }
                self.last.insert(id, rows);
                out
            }
        }
    }

    /// Forget every window at or below `through` (their refinement horizon
    /// has passed; no further emissions can occur).
    pub fn retire(&mut self, through: WindowId) {
        self.last = self.last.split_off(&(through + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mode_reemits_only_on_change() {
        let mut t: DeltaTracker<i64> = DeltaTracker::new(DeltaMode::Snapshot);
        assert_eq!(t.emit(0, vec![1, 2]).len(), 2);
        assert!(t.emit(0, vec![1, 2]).is_empty(), "unchanged → silent");
        assert_eq!(t.emit(0, vec![1, 3]).len(), 2);
    }

    #[test]
    fn delta_mode_retracts_superseded_rows() {
        let mut t: DeltaTracker<&str> = DeltaTracker::new(DeltaMode::Deltas);
        assert_eq!(
            t.emit(7, vec!["a", "b"]),
            vec![Delta::Insert("a"), Delta::Insert("b")]
        );
        let refined = t.emit(7, vec!["a", "c"]);
        assert_eq!(refined, vec![Delta::Retract("b"), Delta::Insert("c")]);
        assert!(t.emit(7, vec!["a", "c"]).is_empty());
    }

    #[test]
    fn retire_bounds_memory() {
        let mut t: DeltaTracker<u64> = DeltaTracker::new(DeltaMode::Deltas);
        for w in 0..1_000u64 {
            t.emit(w, vec![w]);
        }
        assert_eq!(t.tracked_windows(), 1_000);
        t.retire(989);
        assert_eq!(t.tracked_windows(), 10);
        // A retired window's re-emission is treated as fresh (inserts only).
        assert_eq!(t.emit(5, vec![5]), vec![Delta::Insert(5)]);
    }

    #[test]
    fn delta_accessors() {
        let d = Delta::Retract(41);
        assert!(d.is_retract());
        assert_eq!(*d.row(), 41);
        assert!(!Delta::Insert(1).is_retract());
    }
}
