//! Per-node window state: grouped accumulators with budgets and eviction.
//!
//! A [`WindowStore`] holds, for every *open* window, a map from group key to
//! an accumulator plus an optional window-scoped duplicate-elimination set.
//! Closing a window **drains** it: the caller receives the accumulated
//! groups and the store forgets the window, so state never outlives the
//! windows it belongs to.  Partial state relayed from other nodes merges
//! into the same structure order-insensitively (the accumulator contract
//! requires commutative, associative `merge`).
//!
//! Unbounded state is the cardinal sin of long-running queries on shared
//! nodes, so every store enforces a [`CqBudget`]: tuples beyond the
//! per-window work budget and groups beyond the per-window state budget are
//! *shed* (dropped and counted) rather than stored, and the number of
//! simultaneously open windows is capped by evicting the oldest.
//!
//! Group and dedup keys are borrowed canonical strings produced by the
//! executor's resolved-column fast path (`pier_core::tuple::ColumnResolver`
//! over interned schemas); the store only copies a key when it actually
//! creates state for it, so the per-tuple path allocates nothing for
//! already-seen groups and duplicates.

use crate::lifecycle::CqBudget;
use crate::segment::{RehydrateReport, SegmentCodec, SegmentLog, SegmentRecord, WindowSegment};
use crate::window::{WindowId, WindowSpec};
use pier_runtime::SimTime;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Debug;

/// Mergeable per-group accumulator state (the contract `pier-core`'s
/// aggregate partials satisfy): `merge` must be commutative and associative
/// so relayed partials can arrive in any order.
pub trait WindowAccumulator: Debug {
    /// Fold another partial of the same shape into this one.
    fn merge(&mut self, other: &Self);
}

/// State of one open window.
#[derive(Debug)]
struct OpenWindow<A> {
    /// Group key → accumulator.
    groups: HashMap<String, A>,
    /// Window-scoped duplicate-elimination keys.
    seen: HashSet<String>,
    /// Tuples folded into this window at this node.
    tuples: u64,
    /// Changed since the last [`WindowStore::emit_due`] snapshot.
    dirty: bool,
}

impl<A> Default for OpenWindow<A> {
    fn default() -> Self {
        OpenWindow {
            groups: HashMap::new(),
            seen: HashSet::new(),
            tuples: 0,
            dirty: false,
        }
    }
}

/// Counters describing a store's activity (exposed for tests, budgeting
/// decisions and the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Tuples accepted into some window.
    pub accepted: u64,
    /// Tuples dropped by the per-window work budget.
    pub shed_tuples: u64,
    /// Groups refused by the per-window state budget.
    pub shed_groups: u64,
    /// Tuples suppressed by window-scoped duplicate elimination.
    pub duplicates: u64,
    /// Windows evicted to respect the open-window cap.
    pub evicted_windows: u64,
    /// Windows closed (drained) normally.
    pub closed_windows: u64,
    /// Tuples rejected because their window was already closed (late data).
    pub late_tuples: u64,
}

/// Window-scoped grouped state for one continuous query at one node.
#[derive(Debug)]
pub struct WindowStore<A> {
    spec: WindowSpec,
    budget: CqBudget,
    /// Open windows, ordered so the oldest evicts first.
    windows: BTreeMap<WindowId, OpenWindow<A>>,
    /// Everything at or below this id has been closed; late tuples for those
    /// windows are dropped (and counted) instead of resurrecting state.
    closed_through: Option<WindowId>,
    /// Everything at or below this id has been *retired*: even refinements
    /// ([`WindowStore::accept_refinement`]) are refused, so memory stays
    /// bounded no matter how late a partial straggles in.
    retired_through: Option<WindowId>,
    stats: WindowStats,
}

impl<A: WindowAccumulator> WindowStore<A> {
    /// An empty store for `spec` under `budget`.
    pub fn new(spec: WindowSpec, budget: CqBudget) -> Self {
        WindowStore {
            spec,
            budget,
            windows: BTreeMap::new(),
            closed_through: None,
            retired_through: None,
            stats: WindowStats::default(),
        }
    }

    /// The window specification.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Activity counters.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Total groups across all open windows (the node's state footprint).
    pub fn total_groups(&self) -> usize {
        self.windows.values().map(|w| w.groups.len()).sum()
    }

    /// Approximate resident bytes of the open-window state: group keys,
    /// accumulators (sized by the caller-supplied estimator), the
    /// window-scoped dedup set, plus a fixed per-entry container overhead.
    /// This is the measured counterpart of the static analyzer's
    /// worst-case state-bytes bound (gauge `cq.state_bytes`).
    pub fn approx_state_bytes(&self, acc_bytes: &dyn Fn(&A) -> usize) -> usize {
        const ENTRY_OVERHEAD: usize = 48; // hash bucket + String header
        self.windows
            .values()
            .map(|w| {
                let groups: usize = w
                    .groups
                    .iter()
                    .map(|(k, a)| k.len() + acc_bytes(a) + ENTRY_OVERHEAD)
                    .sum();
                let seen: usize = w.seen.iter().map(|k| k.len() + ENTRY_OVERHEAD).sum();
                groups + seen + std::mem::size_of::<OpenWindow<A>>()
            })
            .sum()
    }

    /// Fold one tuple with event time `event_time` into every window that
    /// covers it.  `dedup_key` (when given) suppresses duplicates *within
    /// each window*; `group_key` selects the accumulator; `init` creates a
    /// fresh accumulator and `fold` updates it.
    pub fn push(
        &mut self,
        event_time: SimTime,
        group_key: &str,
        dedup_key: Option<&str>,
        init: impl Fn() -> A,
        mut fold: impl FnMut(&mut A),
    ) {
        let ids: Vec<WindowId> = self.spec.windows_containing(event_time).collect();
        for id in ids {
            if self.closed_through.is_some_and(|c| id <= c) {
                self.stats.late_tuples += 1;
                continue;
            }
            self.ensure_window(id);
            let Some(win) = self.windows.get_mut(&id) else {
                continue; // evicted by the cap (id was the oldest)
            };
            if let Some(dk) = dedup_key {
                // Membership test first: the common duplicate case must not
                // pay for an owned copy of the key.
                if win.seen.contains(dk) {
                    self.stats.duplicates += 1;
                    continue;
                }
                win.seen.insert(dk.to_string());
            }
            if win.tuples >= self.budget.max_tuples_per_window {
                self.stats.shed_tuples += 1;
                continue;
            }
            let at_capacity = win.groups.len() >= self.budget.max_groups_per_window as usize;
            match win.groups.get_mut(group_key) {
                Some(acc) => {
                    fold(acc);
                    win.tuples += 1;
                    win.dirty = true;
                    self.stats.accepted += 1;
                }
                None if at_capacity => self.stats.shed_groups += 1,
                None => {
                    let mut acc = init();
                    fold(&mut acc);
                    win.groups.insert(group_key.to_string(), acc);
                    win.tuples += 1;
                    win.dirty = true;
                    self.stats.accepted += 1;
                }
            }
        }
    }

    /// Merge a relayed partial accumulator for (`id`, `group_key`) into the
    /// store (the in-network combine step).  Order-insensitive by the
    /// accumulator contract.  Returns `false` when the window was already
    /// closed here (the partial is late) or was refused by the budget.
    pub fn merge_partial(&mut self, id: WindowId, group_key: &str, partial: A) -> bool {
        if self.closed_through.is_some_and(|c| id <= c) {
            self.stats.late_tuples += 1;
            return false;
        }
        self.ensure_window(id);
        let Some(win) = self.windows.get_mut(&id) else {
            return false;
        };
        let at_capacity = win.groups.len() >= self.budget.max_groups_per_window as usize;
        match win.groups.get_mut(group_key) {
            Some(acc) => {
                acc.merge(&partial);
                win.dirty = true;
                true
            }
            None if at_capacity => {
                self.stats.shed_groups += 1;
                false
            }
            None => {
                win.groups.insert(group_key.to_string(), partial);
                win.dirty = true;
                true
            }
        }
    }

    /// Re-open acceptance for a window that was drained but received late
    /// refinements (used by relay nodes that must forward refinements up the
    /// tree).  The caller takes responsibility for not double-counting.
    pub fn accept_refinement(&mut self, id: WindowId, group_key: &str, partial: A) -> bool {
        if self.retired_through.is_some_and(|r| id <= r) {
            self.stats.late_tuples += 1;
            return false;
        }
        if let Some(c) = self.closed_through {
            if id <= c {
                // Deliberately allow: refinements merge into a fresh window
                // entry that the next close drains again.
                self.ensure_window_unchecked(id);
                let Some(win) = self.windows.get_mut(&id) else {
                    return false;
                };
                match win.groups.get_mut(group_key) {
                    Some(acc) => acc.merge(&partial),
                    None => {
                        win.groups.insert(group_key.to_string(), partial);
                    }
                }
                win.dirty = true;
                return true;
            }
        }
        self.merge_partial(id, group_key, partial)
    }

    /// Close (drain) every window whose close time has passed at `now`,
    /// oldest first.  Returns `(window_id, groups)` pairs; the store forgets
    /// the drained windows.
    pub fn close_due(&mut self, now: SimTime) -> Vec<(WindowId, Vec<(String, A)>)> {
        let Some(last) = self.spec.last_closable(now) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let due: Vec<WindowId> = self.windows.range(..=last).map(|(id, _)| *id).collect();
        for id in due {
            if let Some(win) = self.windows.remove(&id) {
                if !win.groups.is_empty() {
                    // Drain in key order: group order feeds message order,
                    // and equal-seed runs must replay byte-for-byte.
                    let mut groups: Vec<(String, A)> = win.groups.into_iter().collect();
                    groups.sort_by(|a, b| a.0.cmp(&b.0));
                    out.push((id, groups));
                }
                self.stats.closed_windows += 1;
            }
        }
        // Advance the late-data horizon even for windows that never opened.
        self.closed_through = Some(self.closed_through.map_or(last, |c| c.max(last)));
        out
    }

    /// Snapshot every due window that changed since its last snapshot,
    /// **retaining** the state so late partials can still merge and trigger
    /// a refined re-emission.  This is the root-side counterpart of
    /// [`WindowStore::close_due`] (which drains — right for nodes that
    /// forward partials and must not re-send).  Pair with
    /// [`WindowStore::retire_before`] to bound memory.
    pub fn emit_due(&mut self, now: SimTime) -> Vec<(WindowId, Vec<(String, A)>)>
    where
        A: Clone,
    {
        let Some(last) = self.spec.last_closable(now) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (&id, win) in self.windows.range_mut(..=last) {
            if win.dirty && !win.groups.is_empty() {
                win.dirty = false;
                // Snapshot in key order (see close_due): deterministic
                // emission order regardless of hash seeding.
                let mut groups: Vec<(String, A)> = win
                    .groups
                    .iter()
                    .map(|(k, a)| (k.clone(), a.clone()))
                    .collect();
                groups.sort_by(|a, b| a.0.cmp(&b.0));
                out.push((id, groups));
            }
        }
        out
    }

    /// Drop every window strictly below `horizon` and refuse future state
    /// for them (the refinement horizon has passed).  Bounds the memory of
    /// an emit-and-retain store.
    pub fn retire_before(&mut self, horizon: WindowId) {
        if horizon == 0 {
            return;
        }
        self.windows = self.windows.split_off(&horizon);
        let through = horizon - 1;
        self.closed_through = Some(self.closed_through.map_or(through, |c| c.max(through)));
        self.retired_through = Some(self.retired_through.map_or(through, |c| c.max(through)));
    }

    /// Append a snapshot of every open window (plus the close/retire
    /// horizons) to `log`.  Groups and dedup keys are written in sorted
    /// order, so equal states always produce equal bytes.
    pub fn write_segments(&self, log: &mut SegmentLog)
    where
        A: SegmentCodec,
    {
        for (&id, win) in &self.windows {
            let mut groups: Vec<(String, Vec<u8>)> = win
                .groups
                .iter()
                .map(|(k, a)| {
                    let mut state = Vec::new();
                    a.encode_state(&mut state);
                    (k.clone(), state)
                })
                .collect();
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            let mut seen: Vec<String> = win.seen.iter().cloned().collect();
            seen.sort();
            log.append(&SegmentRecord::Window(WindowSegment {
                id,
                tuples: win.tuples,
                dirty: win.dirty,
                groups,
                seen,
            }));
        }
        log.append(&SegmentRecord::Watermark {
            closed_through: self.closed_through,
            retired_through: self.retired_through,
        });
    }

    /// Rebuild open-window state from a segment log (warm restart).  Later
    /// snapshots of a window supersede earlier ones; snapshots of windows
    /// the log's own watermark says were closed or retired are skipped —
    /// re-opening a drained window would double-count downstream.  A torn
    /// tail is ignored (only the clean prefix rehydrates).
    pub fn rehydrate_from(&mut self, log: &SegmentLog) -> RehydrateReport
    where
        A: SegmentCodec,
    {
        let scan = log.scan();
        let mut report = RehydrateReport {
            records: scan.records.len(),
            torn_tail: scan.torn_tail,
            ..RehydrateReport::default()
        };
        let mut restored: BTreeMap<WindowId, WindowSegment> = BTreeMap::new();
        for rec in scan.records {
            match rec {
                SegmentRecord::Window(seg) => {
                    restored.insert(seg.id, seg);
                }
                SegmentRecord::Watermark {
                    closed_through,
                    retired_through,
                } => {
                    if let Some(c) = closed_through {
                        self.closed_through = Some(self.closed_through.map_or(c, |cur| cur.max(c)));
                    }
                    if let Some(r) = retired_through {
                        self.retired_through =
                            Some(self.retired_through.map_or(r, |cur| cur.max(r)));
                    }
                }
            }
        }
        for (id, seg) in restored {
            let closed = self.closed_through.is_some_and(|c| id <= c);
            let retired = self.retired_through.is_some_and(|r| id <= r);
            if closed || retired {
                report.skipped += 1;
                continue;
            }
            let mut win = OpenWindow {
                groups: HashMap::new(),
                seen: HashSet::new(),
                tuples: seg.tuples,
                dirty: seg.dirty,
            };
            for (key, state) in seg.groups {
                match A::decode_state(&state) {
                    Some(acc) => {
                        win.groups.insert(key, acc);
                    }
                    None => {
                        report.skipped += 1;
                    }
                }
            }
            win.seen.extend(seg.seen);
            report.windows += 1;
            report.groups += win.groups.len();
            report.tuples += win.tuples;
            self.windows.insert(id, win);
        }
        report
    }

    fn ensure_window(&mut self, id: WindowId) {
        if self.closed_through.is_some_and(|c| id <= c) {
            return;
        }
        self.ensure_window_unchecked(id);
    }

    fn ensure_window_unchecked(&mut self, id: WindowId) {
        if self.windows.contains_key(&id) {
            return;
        }
        while self.windows.len() >= self.budget.max_open_windows as usize {
            // Evict the oldest window to stay within the cap; if the new
            // window *is* the oldest, refuse it instead.
            let oldest = *self.windows.keys().next().expect("non-empty");
            if oldest > id {
                return;
            }
            self.windows.remove(&oldest);
            self.stats.evicted_windows += 1;
        }
        self.windows.insert(id, OpenWindow::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowSpec;

    /// A toy mergeable count.
    #[derive(Debug, Clone, PartialEq)]
    struct Count(u64);

    impl WindowAccumulator for Count {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    fn store(spec: WindowSpec, budget: CqBudget) -> WindowStore<Count> {
        WindowStore::new(spec, budget)
    }

    #[test]
    fn push_and_close_counts_per_window() {
        let mut s = store(WindowSpec::tumbling(10), CqBudget::default());
        for t in 0..25u64 {
            s.push(t, "g", None, || Count(0), |c| c.0 += 1);
        }
        // At t=25 only windows 0 ([0,10)) and 1 ([10,20)) are closable.
        let closed = s.close_due(25);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].0, 0);
        assert_eq!(closed[0].1[0].1, Count(10));
        assert_eq!(closed[1].1[0].1, Count(10));
        // Window 2 (t=20..25 so far) still open.
        assert_eq!(s.open_windows(), 1);
    }

    #[test]
    fn dedup_is_window_scoped() {
        let mut s = store(WindowSpec::tumbling(10), CqBudget::default());
        // Same dedup key in two different windows: counted once per window.
        for t in [1u64, 2, 3, 11, 12] {
            s.push(t, "g", Some("dup"), || Count(0), |c| c.0 += 1);
        }
        let closed = s.close_due(100);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].1[0].1, Count(1));
        assert_eq!(closed[1].1[0].1, Count(1));
        assert_eq!(s.stats().duplicates, 3);
    }

    #[test]
    fn budgets_shed_instead_of_growing() {
        let budget = CqBudget {
            max_open_windows: 2,
            max_groups_per_window: 3,
            max_tuples_per_window: 5,
        };
        let mut s = store(WindowSpec::tumbling(10), budget);
        // 10 distinct groups in window 0: only 3 stored.
        for g in 0..10 {
            s.push(1, &format!("g{g}"), None, || Count(0), |c| c.0 += 1);
        }
        assert_eq!(s.total_groups(), 3);
        assert_eq!(s.stats().shed_groups, 7);
        // Work budget: max 5 tuples per window (3 already accepted).
        for _ in 0..10 {
            s.push(2, "g0", None, || Count(0), |c| c.0 += 1);
        }
        assert_eq!(s.stats().shed_tuples, 8);
        // Open-window cap: touching windows 0,1,2 evicts the oldest.
        s.push(11, "g", None, || Count(0), |c| c.0 += 1);
        s.push(21, "g", None, || Count(0), |c| c.0 += 1);
        assert_eq!(s.open_windows(), 2);
        assert_eq!(s.stats().evicted_windows, 1);
    }

    #[test]
    fn merge_partial_is_order_insensitive() {
        let spec = WindowSpec::sliding(20, 10);
        let parts = [
            (3u64, "a", Count(5)),
            (3, "b", Count(2)),
            (3, "a", Count(7)),
            (4, "a", Count(1)),
        ];
        let mut fwd = store(spec, CqBudget::default());
        let mut rev = store(spec, CqBudget::default());
        for (id, g, c) in &parts {
            fwd.merge_partial(*id, g, c.clone());
        }
        for (id, g, c) in parts.iter().rev() {
            rev.merge_partial(*id, g, c.clone());
        }
        let norm = |mut v: Vec<(WindowId, Vec<(String, Count)>)>| {
            for (_, groups) in &mut v {
                groups.sort_by(|a, b| a.0.cmp(&b.0));
            }
            v
        };
        assert_eq!(norm(fwd.close_due(1_000)), norm(rev.close_due(1_000)));
    }

    #[test]
    fn late_data_after_close_is_dropped_and_counted() {
        let mut s = store(WindowSpec::tumbling(10), CqBudget::default());
        s.push(5, "g", None, || Count(0), |c| c.0 += 1);
        assert_eq!(s.close_due(50).len(), 1);
        s.push(5, "g", None, || Count(0), |c| c.0 += 1);
        assert_eq!(s.open_windows(), 0, "late tuple must not reopen state");
        assert_eq!(s.stats().late_tuples, 1);
    }

    impl crate::segment::SegmentCodec for Count {
        fn encode_state(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode_state(bytes: &[u8]) -> Option<Self> {
            Some(Count(u64::from_le_bytes(bytes.try_into().ok()?)))
        }
    }

    #[test]
    fn segments_round_trip_windows_byte_for_byte() {
        let mut s = store(WindowSpec::sliding(20, 10), CqBudget::default());
        for t in 0..35u64 {
            s.push(
                t,
                &format!("g{}", t % 3),
                Some(&format!("d{t}")),
                || Count(0),
                |c| {
                    c.0 += 1;
                },
            );
        }
        s.close_due(25); // advance closed_through so the watermark is real
        let mut log = crate::segment::SegmentLog::new();
        s.write_segments(&mut log);

        let mut warm = store(WindowSpec::sliding(20, 10), CqBudget::default());
        let report = warm.rehydrate_from(&log);
        assert!(!report.torn_tail);
        assert!(report.windows > 0 && report.groups > 0);
        assert_eq!(warm.open_windows(), s.open_windows());
        assert_eq!(warm.total_groups(), s.total_groups());

        // Byte-for-byte: re-encoding the rehydrated store matches exactly.
        let mut relog = crate::segment::SegmentLog::new();
        warm.write_segments(&mut relog);
        assert_eq!(relog.as_bytes(), log.as_bytes());

        // The rehydrated store behaves identically from here on.
        assert_eq!(
            {
                let mut v = warm.close_due(1_000);
                v.iter_mut()
                    .for_each(|(_, g)| g.sort_by(|a, b| a.0.cmp(&b.0)));
                v
            },
            {
                let mut v = s.close_due(1_000);
                v.iter_mut()
                    .for_each(|(_, g)| g.sort_by(|a, b| a.0.cmp(&b.0)));
                v
            }
        );
    }

    #[test]
    fn rehydrate_skips_closed_windows_and_torn_tails() {
        let mut s = store(WindowSpec::tumbling(10), CqBudget::default());
        s.push(5, "g", None, || Count(0), |c| c.0 += 1);
        s.push(15, "g", None, || Count(0), |c| c.0 += 1);
        let mut log = crate::segment::SegmentLog::new();
        s.write_segments(&mut log); // snapshot with both windows open
        s.close_due(25); // both now closed
        s.write_segments(&mut log); // second snapshot: watermark closed_through=1

        let mut warm = store(WindowSpec::tumbling(10), CqBudget::default());
        let report = warm.rehydrate_from(&log);
        assert_eq!(report.windows, 0, "all snapshotted windows were closed");
        assert_eq!(report.skipped, 2);
        assert_eq!(warm.open_windows(), 0);

        // A torn tail hides the second watermark: the first snapshot's
        // windows rehydrate, the damage is reported.
        log.tear_tail(7);
        let mut warm2 = store(WindowSpec::tumbling(10), CqBudget::default());
        let report2 = warm2.rehydrate_from(&log);
        assert!(report2.torn_tail);
        assert!(report2.windows > 0);
    }

    #[test]
    fn thousand_windows_leave_no_residue() {
        // The memory-bound property: stream through 1k tumbling windows,
        // closing as we go; open state stays tiny and closed state is gone.
        let mut s = store(WindowSpec::tumbling(10), CqBudget::default());
        let mut closed = 0usize;
        for t in 0..10_000u64 {
            s.push(t, &format!("g{}", t % 4), None, || Count(0), |c| c.0 += 1);
            if t % 100 == 0 {
                closed += s.close_due(t).len();
            }
        }
        closed += s.close_due(20_000).len();
        assert_eq!(closed, 1_000);
        assert_eq!(s.open_windows(), 0);
        assert_eq!(s.total_groups(), 0);
    }
}
