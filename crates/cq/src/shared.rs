//! Shared window state for multi-query (share-group) execution.
//!
//! PIER's target of *thousands* of simultaneous continuous queries is only
//! reachable if near-identical queries — the network-monitoring case where
//! many users install the same windowed aggregate with different selection
//! constants — stop paying per-query state and per-query partial streams.
//! A [`SharedWindowState`] is the window engine of one **share group**: it
//! keeps exactly one local [`WindowStore`] and one root-side [`WindowStore`]
//! for the whole group (instead of one pair per member query), and derives
//! each member's per-window answer *at flush time* from the shared
//! accumulators.
//!
//! The derivation contract is the caller's: sharing is sound when every
//! member's residual predicate references only the group's GROUP BY columns,
//! because then a predicate is constant within each group — a member's
//! answer is exactly the subset of shared groups its predicate accepts, with
//! identical accumulator values (`pier-mqo` enforces this eligibility during
//! plan normalization).  This module stays generic over the accumulator `A`
//! and the emitted row type `R`, like the rest of `pier-cq`; the caller
//! supplies the per-member derivation as a closure at emission time.
//!
//! Per member the state kept here is one [`DeltaTracker`] (snapshot/delta
//! output against that member's previous emissions) plus counters — O(1) in
//! the stream, so the marginal cost of the (N+1)-th constant-varied query is
//! a tracker and a predicate, not a window store.

use crate::delta::{Delta, DeltaMode, DeltaTracker};
use crate::lifecycle::CqBudget;
use crate::state::{WindowAccumulator, WindowStats, WindowStore};
use crate::window::{WindowId, WindowSpec};
use pier_runtime::SimTime;
use std::collections::BTreeMap;

/// Per-member output state within a share group.
#[derive(Debug)]
struct MemberSink<R> {
    tracker: DeltaTracker<R>,
    windows_emitted: u64,
}

/// One per-member emission produced by [`SharedWindowState::emit_due`].
#[derive(Debug)]
pub struct MemberEmission<R> {
    /// The member query this emission belongs to.
    pub member: u64,
    /// The emitted window.
    pub window: WindowId,
    /// The member's delta stream for this (re-)emission.
    pub deltas: Vec<Delta<R>>,
}

/// The window state of one share group: a single local/root
/// [`WindowStore`] pair serving every member query, with per-member
/// [`DeltaTracker`]s deriving member-specific snapshots or insert/retract
/// streams at flush.
#[derive(Debug)]
pub struct SharedWindowState<A, R> {
    window: WindowSpec,
    /// This node's share of the stream, drained toward the root each slide.
    local: WindowStore<A>,
    /// Partials combined at (or relayed toward) the group's window root;
    /// closes one slide after `local` so relayed partials can arrive.
    root: WindowStore<A>,
    members: BTreeMap<u64, MemberSink<R>>,
}

impl<A: WindowAccumulator + Clone, R: Clone + PartialEq> SharedWindowState<A, R> {
    /// Fresh state for a group windowing by `window` under `budget`.
    pub fn new(window: WindowSpec, budget: CqBudget) -> Self {
        SharedWindowState {
            window,
            local: WindowStore::new(window, budget),
            root: WindowStore::new(window.with_grace(window.grace + window.slide), budget),
            members: BTreeMap::new(),
        }
    }

    /// The group's window specification.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// Register a member query's output stream.  Returns `false` when the
    /// member was already registered (a lease renewal, not a new member).
    pub fn add_member(&mut self, member: u64, mode: DeltaMode) -> bool {
        if self.members.contains_key(&member) {
            return false;
        }
        self.members.insert(
            member,
            MemberSink {
                tracker: DeltaTracker::new(mode),
                windows_emitted: 0,
            },
        );
        true
    }

    /// Drop a member's output stream.  Returns `true` when the member was
    /// registered.
    pub fn remove_member(&mut self, member: u64) -> bool {
        self.members.remove(&member).is_some()
    }

    /// Number of member queries sharing this state.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// True when no member remains (the group can be retired).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member ids, ascending.
    pub fn members(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.keys().copied()
    }

    /// Windows emitted to `member` so far.
    pub fn windows_emitted(&self, member: u64) -> u64 {
        self.members.get(&member).map_or(0, |m| m.windows_emitted)
    }

    /// The shared local store (the absorb entry point: the caller folds the
    /// union of the members' selected rows into it, once per row).
    pub fn local_mut(&mut self) -> &mut WindowStore<A> {
        &mut self.local
    }

    /// Merge a relayed partial into the root-side store (arrival at, or
    /// relay through, the group's window root).
    pub fn absorb_partial(&mut self, id: WindowId, group_key: &str, partial: A) -> bool {
        self.root.accept_refinement(id, group_key, partial)
    }

    /// Non-root tick: drain every due window from both stores for shipment
    /// toward the group's root — **one** partial stream per group, however
    /// many members it serves.
    pub fn drain_closed(&mut self, now: SimTime) -> Vec<(WindowId, Vec<(String, A)>)> {
        let mut out = self.local.close_due(now);
        out.extend(self.root.close_due(now));
        out
    }

    /// Root tick, step 1: fold this node's own due windows into the
    /// retained root state.
    pub fn roll_up_local(&mut self, now: SimTime) {
        for (wid, groups) in self.local.close_due(now) {
            for (key, acc) in groups {
                self.root.accept_refinement(wid, &key, acc);
            }
        }
    }

    /// Root tick, step 2: snapshot every due window that changed (state is
    /// retained so late partials keep refining) and derive **each member's**
    /// rows from the shared groups via `derive(member, window, groups)`.
    /// Each member's [`DeltaTracker`] turns the derived rows into that
    /// member's snapshot or insert/retract stream; unchanged answers emit
    /// nothing.  Windows past the refinement horizon are retired from the
    /// shared store and from every tracker, bounding memory.
    pub fn emit_due(
        &mut self,
        now: SimTime,
        mut derive: impl FnMut(u64, WindowId, &[(String, A)]) -> Vec<R>,
    ) -> Vec<MemberEmission<R>> {
        let mut out = Vec::new();
        let mut emitted_max = None;
        for (wid, groups) in self.root.emit_due(now) {
            for (member, sink) in &mut self.members {
                let rows = derive(*member, wid, &groups);
                let deltas = sink.tracker.emit(wid, rows);
                if !deltas.is_empty() {
                    sink.windows_emitted += 1;
                    out.push(MemberEmission {
                        member: *member,
                        window: wid,
                        deltas,
                    });
                }
            }
            emitted_max = Some(emitted_max.unwrap_or(0u64).max(wid));
        }
        if let Some(newest) = emitted_max {
            let retain = self.retention_windows();
            if newest > retain {
                self.root.retire_before(newest - retain);
                for sink in self.members.values_mut() {
                    sink.tracker.retire(newest - retain - 1);
                }
            }
        }
        out
    }

    /// Windows kept for late refinement past their first emission.
    pub fn retention_windows(&self) -> u64 {
        self.window.windows_per_event() + 4
    }

    /// Open windows across both shared stores.
    pub fn open_windows(&self) -> usize {
        self.local.open_windows() + self.root.open_windows()
    }

    /// Groups held across both shared stores (the group's state footprint —
    /// crucially independent of the member count).
    pub fn total_groups(&self) -> usize {
        self.local.total_groups() + self.root.total_groups()
    }

    /// Activity counters of the two shared stores `(local, root)`.
    pub fn stats(&self) -> (WindowStats, WindowStats) {
        (self.local.stats(), self.root.stats())
    }

    /// Windows currently remembered across all member trackers.
    pub fn tracked_emissions(&self) -> usize {
        self.members
            .values()
            .map(|m| m.tracker.tracked_windows())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy mergeable count.
    #[derive(Debug, Clone, PartialEq)]
    struct Count(u64);

    impl WindowAccumulator for Count {
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    fn shared() -> SharedWindowState<Count, (String, u64)> {
        SharedWindowState::new(WindowSpec::tumbling(10), CqBudget::default())
    }

    /// Derivation used by the tests: member `m` accepts only groups whose
    /// key starts with `g{m}` — a stand-in for "predicate over the group
    /// columns".
    fn derive_prefix(
        member: u64,
        _wid: WindowId,
        groups: &[(String, Count)],
    ) -> Vec<(String, u64)> {
        let prefix = format!("g{member}");
        let mut rows: Vec<(String, u64)> = groups
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, c)| (k.clone(), c.0))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn one_store_serves_every_member_with_its_own_subset() {
        let mut s = shared();
        s.add_member(1, DeltaMode::Snapshot);
        s.add_member(2, DeltaMode::Snapshot);
        // The union stream: groups g1 and g2, 3 and 5 tuples in window 0.
        for _ in 0..3 {
            s.local_mut().push(1, "g1", None, || Count(0), |c| c.0 += 1);
        }
        for _ in 0..5 {
            s.local_mut().push(2, "g2", None, || Count(0), |c| c.0 += 1);
        }
        s.roll_up_local(50);
        let emissions = s.emit_due(50, derive_prefix);
        assert_eq!(emissions.len(), 2);
        for e in &emissions {
            assert_eq!(e.window, 0);
            assert_eq!(e.deltas.len(), 1);
            let expect = if e.member == 1 { 3 } else { 5 };
            match &e.deltas[0] {
                Delta::Insert((k, n)) => {
                    assert_eq!(k, &format!("g{}", e.member));
                    assert_eq!(*n, expect);
                }
                other => panic!("unexpected delta {other:?}"),
            }
        }
        // The state footprint is one store's worth, not one per member.
        assert_eq!(s.total_groups(), 2);
        assert_eq!(s.windows_emitted(1), 1);
        assert_eq!(s.windows_emitted(2), 1);
    }

    #[test]
    fn refinement_reemits_only_to_affected_members_and_deltas_retract() {
        let mut s: SharedWindowState<Count, (String, u64)> = shared();
        s.add_member(1, DeltaMode::Deltas);
        s.add_member(2, DeltaMode::Deltas);
        s.absorb_partial(0, "g1a", Count(4));
        s.absorb_partial(0, "g2a", Count(7));
        assert_eq!(s.emit_due(60, derive_prefix).len(), 2);
        // A late partial refines only member 1's group: member 2's tracker
        // stays silent, member 1 sees retract+insert.
        s.absorb_partial(0, "g1a", Count(1));
        let refined = s.emit_due(70, derive_prefix);
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].member, 1);
        assert_eq!(
            refined[0].deltas,
            vec![
                Delta::Retract(("g1a".to_string(), 4)),
                Delta::Insert(("g1a".to_string(), 5)),
            ]
        );
    }

    #[test]
    fn drain_closed_produces_one_partial_stream_for_the_group() {
        let mut s = shared();
        s.add_member(1, DeltaMode::Snapshot);
        s.add_member(2, DeltaMode::Snapshot);
        s.local_mut().push(3, "g1", None, || Count(0), |c| c.0 += 1);
        s.local_mut().push(4, "g2", None, || Count(0), |c| c.0 += 1);
        let drained = s.drain_closed(100);
        // One window, two groups — shipped once for the whole group, not
        // once per member.
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.len(), 2);
    }

    #[test]
    fn membership_changes_and_retirement_bound_state() {
        let mut s = shared();
        assert!(s.add_member(7, DeltaMode::Snapshot));
        assert!(!s.add_member(7, DeltaMode::Snapshot), "re-add is a renewal");
        // Stream through many windows; retirement keeps both the shared
        // store and the tracker bounded.
        for w in 0..200u64 {
            s.absorb_partial(w, "g7", Count(1));
            s.emit_due(w * 10 + 25, derive_prefix);
        }
        let retain = s.retention_windows() as usize;
        assert!(s.root.open_windows() <= retain + 2);
        assert!(s.tracked_emissions() <= retain + 2);
        assert!(s.remove_member(7));
        assert!(!s.remove_member(7));
        assert!(s.is_empty());
        assert_eq!(s.member_count(), 0);
        assert_eq!(s.tracked_emissions(), 0, "no sink outlives its member");
    }
}
