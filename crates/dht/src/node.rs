//! A standalone DHT node program.
//!
//! [`DhtNode`] wraps an [`Overlay`] in the runtime's [`Program`] interface so
//! the overlay can be exercised on its own — under the discrete-event
//! simulator or the physical runtime — without the query processor on top.
//! The query processor's own node program (`pier-core::PierNode`) embeds the
//! overlay the same way but consumes the events itself instead of emitting
//! them as client output.

use crate::messages::DhtMessage;
use crate::wrapper::{Overlay, OverlayConfig, OverlayEffect, OverlayEvent, OverlayTimer};
use crate::NodeRef;
use pier_runtime::{NodeAddr, Program, ProgramContext, SimTime, WireSize};
use std::fmt::Debug;

/// A node that runs only the overlay (no query processor).  Every overlay
/// event it observes is both recorded locally and emitted as client output,
/// which makes assertions in tests and benchmarks straightforward.
#[derive(Debug, Clone)]
pub struct DhtNode<V> {
    overlay: Overlay<V>,
    bootstrap: Option<NodeAddr>,
    /// Every event observed by this node, in order.
    pub events: Vec<OverlayEvent<V>>,
    /// When true (the default) upcalls are automatically resumed with
    /// `continue_routing = true`, i.e. the node behaves as a plain router.
    pub auto_continue_upcalls: bool,
}

impl<V: Clone + Debug + WireSize> DhtNode<V> {
    /// A node whose routing tables are precomputed from the full ring.
    pub fn with_static_ring(me: NodeRef, all: &[NodeRef], config: OverlayConfig) -> Self {
        DhtNode {
            overlay: Overlay::with_static_ring(me, all, config),
            bootstrap: None,
            events: Vec::new(),
            auto_continue_upcalls: true,
        }
    }

    /// A node that joins an existing ring through `bootstrap` when started.
    pub fn joining(me: NodeRef, bootstrap: Option<NodeAddr>, config: OverlayConfig) -> Self {
        DhtNode {
            overlay: Overlay::new(me, config),
            bootstrap,
            events: Vec::new(),
            auto_continue_upcalls: true,
        }
    }

    /// Access the wrapped overlay (e.g. to issue a `put` via
    /// `Simulator::invoke`).
    pub fn overlay(&self) -> &Overlay<V> {
        &self.overlay
    }

    /// Mutable access to the wrapped overlay.
    pub fn overlay_mut(&mut self) -> &mut Overlay<V> {
        &mut self.overlay
    }

    /// Apply a batch of overlay effects against the runtime context,
    /// resolving upcalls according to `auto_continue_upcalls`.
    pub fn apply(&mut self, ctx: &mut ProgramContext<Self>, effects: Vec<OverlayEffect<V>>) {
        let mut worklist = effects;
        while !worklist.is_empty() {
            let mut next = Vec::new();
            for effect in worklist {
                match effect {
                    OverlayEffect::Send { to, msg } => ctx.send(to, msg),
                    OverlayEffect::SetTimer { delay, timer } => ctx.set_timer(delay, timer),
                    OverlayEffect::Event(event) => {
                        if let OverlayEvent::Upcall { token, .. } = &event {
                            if self.auto_continue_upcalls {
                                next.extend(self.overlay.resume_upcall(*token, true, ctx.now()));
                            }
                        }
                        self.events.push(event.clone());
                        ctx.output(event);
                    }
                }
            }
            worklist = next;
        }
    }

    /// Convenience used by tests: number of `NewData` events observed.
    pub fn new_data_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, OverlayEvent::NewData { .. }))
            .count()
    }

    /// Convenience used by tests: payloads of `Broadcast` events observed.
    pub fn broadcasts(&self) -> Vec<&V> {
        self.events
            .iter()
            .filter_map(|e| match e {
                OverlayEvent::Broadcast { payload } => Some(payload),
                _ => None,
            })
            .collect()
    }

    /// Convenience used by tests: `(request_id, objects)` of every
    /// `GetResult` observed.
    pub fn get_results(&self) -> Vec<(u64, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                OverlayEvent::GetResult {
                    request_id,
                    objects,
                    ..
                } => Some((*request_id, objects.len())),
                _ => None,
            })
            .collect()
    }
}

impl<V: Clone + Debug + WireSize> Program for DhtNode<V> {
    type Msg = DhtMessage<V>;
    type Timer = OverlayTimer;
    type Out = OverlayEvent<V>;

    fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
        let now: SimTime = ctx.now();
        let effects = self.overlay.start(self.bootstrap, now);
        self.apply(ctx, effects);
    }

    fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
        let now = ctx.now();
        let effects = self.overlay.on_message(from, msg, now);
        self.apply(ctx, effects);
    }

    fn on_timer(&mut self, ctx: &mut ProgramContext<Self>, timer: Self::Timer) {
        let now = ctx.now();
        let effects = self.overlay.on_timer(timer, now);
        self.apply(ctx, effects);
    }
}

/// Build the [`NodeRef`]s for a ring of `n` nodes whose identifiers are
/// deterministically derived from a seed.  Node addresses are assigned in
/// order `0..n`, matching the order in which the caller adds them to a
/// runtime.
pub fn make_ring_refs(n: usize, seed: u64) -> Vec<NodeRef> {
    let mut rng = pier_runtime::Rng64::new(seed ^ 0xD1F7_5EED);
    (0..n)
        .map(|i| NodeRef {
            id: crate::Id(rng.next_u64()),
            addr: NodeAddr(i as u32),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naming::ObjectName;
    use pier_runtime::{SimConfig, Simulator};

    type Node = DhtNode<String>;

    fn static_cluster(n: usize, seed: u64) -> (Simulator<Node>, Vec<NodeRef>) {
        let refs = make_ring_refs(n, seed);
        let mut sim: Simulator<Node> = Simulator::new(SimConfig::lan(seed));
        for r in &refs {
            sim.add_node(Node::with_static_ring(*r, &refs, OverlayConfig::default()));
        }
        // Let start-up timers get scheduled.
        sim.run_until(1_000);
        (sim, refs)
    }

    #[test]
    fn put_then_get_across_a_16_node_ring() {
        let (mut sim, refs) = static_cluster(16, 7);
        let publisher = refs[3].addr;
        let reader = refs[11].addr;
        sim.invoke(publisher, |node, ctx| {
            let now = ctx.now();
            let effects = node.overlay_mut().put(
                ObjectName::new("files", "keyword=rust", 42),
                "song.mp3".to_string(),
                60_000_000,
                now,
            );
            node.apply(ctx, effects);
        });
        sim.run_for(2_000_000);
        sim.invoke(reader, |node, ctx| {
            let now = ctx.now();
            let (_rid, effects) = node.overlay_mut().get("files", "keyword=rust", now);
            node.apply(ctx, effects);
        });
        sim.run_for(2_000_000);
        let results = sim.node(reader).unwrap().get_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, 1, "one object must come back");
    }

    #[test]
    fn routed_send_arrives_and_fires_new_data() {
        let (mut sim, refs) = static_cluster(16, 9);
        let sender = refs[0].addr;
        let name = ObjectName::new("results", "query-17", 1);
        let target = name.routing_id();
        // Find the owner so we can assert where the data landed.
        let owner = refs
            .iter()
            .find(|r| {
                sim.node(r.addr)
                    .unwrap()
                    .overlay()
                    .router()
                    .is_responsible(target)
            })
            .copied()
            .unwrap();
        sim.invoke(sender, |node, ctx| {
            let now = ctx.now();
            let effects =
                node.overlay_mut()
                    .send(name.clone(), "answer-tuple".to_string(), 60_000_000, now);
            node.apply(ctx, effects);
        });
        sim.run_for(2_000_000);
        let owner_node = sim.node(owner.addr).unwrap();
        assert_eq!(owner_node.new_data_count(), 1);
        assert_eq!(
            owner_node
                .overlay()
                .objects()
                .get("results", "query-17", sim.now())
                .len(),
            1
        );
    }

    #[test]
    fn broadcast_reaches_every_node_via_the_tree() {
        let (mut sim, refs) = static_cluster(24, 21);
        // Let every node announce itself to its tree parent.
        sim.run_for(12_000_000);
        let origin = refs[5].addr;
        sim.invoke(origin, |node, ctx| {
            let now = ctx.now();
            let effects = node.overlay_mut().broadcast("opgraph-1".to_string(), now);
            node.apply(ctx, effects);
        });
        sim.run_for(5_000_000);
        let reached = refs
            .iter()
            .filter(|r| {
                sim.node(r.addr)
                    .unwrap()
                    .broadcasts()
                    .iter()
                    .any(|p| p.as_str() == "opgraph-1")
            })
            .count();
        assert_eq!(reached, 24, "broadcast must reach every node");
    }

    #[test]
    fn dynamic_join_converges_and_serves_lookups() {
        let seed = 33;
        let refs = make_ring_refs(12, seed);
        let mut sim: Simulator<Node> = Simulator::new(SimConfig::lan(seed));
        // Node 0 starts alone; everyone else bootstraps through it.
        for (i, r) in refs.iter().enumerate() {
            let bootstrap = if i == 0 { None } else { Some(refs[0].addr) };
            sim.add_node_at(
                Node::joining(*r, bootstrap, OverlayConfig::default()),
                (i as u64) * 200_000,
            );
        }
        // Give the ring time to stabilize (stabilize interval is 1 s).
        sim.run_for(40_000_000);
        // Every node's successor pointer must point at the next id clockwise.
        let mut sorted = refs.clone();
        sorted.sort_by_key(|r| r.id.0);
        for (i, r) in sorted.iter().enumerate() {
            let expected = sorted[(i + 1) % sorted.len()].id;
            let succ = sim
                .node(r.addr)
                .unwrap()
                .overlay()
                .router()
                .successor()
                .expect("every node must have a successor")
                .id;
            assert_eq!(succ, expected, "node {} successor", r.addr);
        }
        // A put issued at one node is readable from another.
        sim.invoke(refs[4].addr, |node, ctx| {
            let now = ctx.now();
            let effects = node.overlay_mut().put(
                ObjectName::new("t", "k", 1),
                "v".to_string(),
                120_000_000,
                now,
            );
            node.apply(ctx, effects);
        });
        sim.run_for(3_000_000);
        sim.invoke(refs[9].addr, |node, ctx| {
            let now = ctx.now();
            let (_rid, effects) = node.overlay_mut().get("t", "k", now);
            node.apply(ctx, effects);
        });
        sim.run_for(3_000_000);
        let results = sim.node(refs[9].addr).unwrap().get_results();
        assert!(
            results.iter().any(|(_, n)| *n == 1),
            "get must find the object after dynamic join, got {results:?}"
        );
    }

    #[test]
    fn soft_state_disappears_when_publisher_stops_renewing() {
        let (mut sim, refs) = static_cluster(8, 55);
        let name = ObjectName::new("ephemeral", "k", 9);
        let target = name.routing_id();
        let owner = refs
            .iter()
            .find(|r| {
                sim.node(r.addr)
                    .unwrap()
                    .overlay()
                    .router()
                    .is_responsible(target)
            })
            .copied()
            .unwrap();
        sim.invoke(refs[2].addr, |node, ctx| {
            let now = ctx.now();
            let effects = node
                .overlay_mut()
                .put(name.clone(), "temp".to_string(), 4_000_000, now);
            node.apply(ctx, effects);
        });
        sim.run_for(2_000_000);
        assert_eq!(
            sim.node(owner.addr)
                .unwrap()
                .overlay()
                .objects()
                .get("ephemeral", "k", sim.now())
                .len(),
            1
        );
        // No renewal: after the lifetime plus one expiry sweep it is gone.
        sim.run_for(10_000_000);
        assert_eq!(
            sim.node(owner.addr)
                .unwrap()
                .overlay()
                .objects()
                .get("ephemeral", "k", sim.now())
                .len(),
            0,
            "object must have been garbage collected"
        );
    }

    #[test]
    fn lookups_survive_node_failures_after_stabilization() {
        let (mut sim, refs) = static_cluster(20, 77);
        // Fail a quarter of the ring.
        for r in refs.iter().take(5) {
            sim.fail_node_at(r.addr, 1_000_000);
        }
        // Give stabilization time to route around the failures (liveness
        // timeout is 30 s).
        sim.run_for(80_000_000);
        // A surviving node can still resolve a lookup for an arbitrary id.
        let issuer = refs[10].addr;
        sim.invoke(issuer, |node, ctx| {
            let now = ctx.now();
            let (_rid, effects) = node.overlay_mut().lookup(crate::Id(0xDEAD_BEEF), now);
            node.apply(ctx, effects);
        });
        sim.run_for(10_000_000);
        let done = sim.node(issuer).unwrap().events.iter().any(|e| {
            matches!(e, OverlayEvent::LookupDone { owner, .. }
                if refs.iter().take(5).all(|dead| dead.addr != owner.addr))
        });
        assert!(done, "lookup must complete and resolve to a live node");
    }
}
