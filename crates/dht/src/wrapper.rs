//! The overlay wrapper — the Table-2 API of the paper.
//!
//! The overlay network is composed of three modules (Figure 5): the
//! [`Router`], the [`ObjectManager`], and this *wrapper*, which choreographs
//! the two to implement the inter-node operations `get`, `put`, `send` and
//! `renew`, and the intra-node operations `localScan`, `newData` and
//! `upcall`.  The query processor only ever talks to the wrapper.
//!
//! Operation message flows follow Figure 6 of the paper:
//!
//! * **put / renew** — a routed *lookup* resolves the identifier-to-address
//!   mapping, then the object (or renewal request) is forwarded directly to
//!   the destination.
//! * **send** — the object itself is routed hop-by-hop to the destination in
//!   a single call; every intermediate node is offered an *upcall* and may
//!   drop or alter the message (this is what hierarchical aggregation and
//!   hierarchical joins build on).
//! * **get** — a lookup followed by a direct request and a response carrying
//!   the matching objects.
//!
//! The wrapper additionally maintains the **distribution tree** used for
//! query broadcast (§3.3.3): every node periodically routes a `TreeJoin`
//! announcement toward a well-known root identifier; the first hop records
//! the sender as a child and drops the message.  Broadcasting forwards a
//! payload to the root and then down the recorded children, and the tree is
//! soft state, adapting to membership changes.

use crate::id::{hash_str, Id};
use crate::messages::DhtMessage;
use crate::naming::ObjectName;
use crate::object_manager::{ObjectManager, StoredObject};
use crate::router::{NodeRef, Router, RouterConfig, RouterEffect};
use pier_runtime::{Duration, NodeAddr, SimTime, WireSize};
use pier_telemetry::Telemetry;
use pier_trace::TraceContext;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;

/// One entry of a grouped put: object name, value, and its soft-state TTL.
type PutEntry<V> = (ObjectName, V, Duration);

/// A put parked at this node awaiting the application's upcall verdict:
/// routing target, object, TTL, hops so far, and the trace context (if the
/// owning query is sampled) to restore when routing resumes.
type PendingUpcall<V> = (Id, ObjectName, V, Duration, u32, Option<TraceContext>);

/// Well-known name of the query-dissemination tree root; its hash is the
/// root identifier hard-coded into every PIER node (§3.3.3).
pub const TREE_ROOT_NAME: &str = "pier::distribution-tree";

/// Tuning knobs for the overlay wrapper.
#[derive(Debug, Clone, Copy)]
pub struct OverlayConfig {
    /// Router configuration.
    pub router: RouterConfig,
    /// Interval between Chord stabilization rounds, microseconds.
    pub stabilize_interval: Duration,
    /// Interval between finger-table refreshes, microseconds.
    pub fix_fingers_interval: Duration,
    /// Interval between soft-state expiry sweeps, microseconds.
    pub expire_interval: Duration,
    /// Maximum soft-state lifetime the node will grant, microseconds.
    pub max_lifetime: Duration,
    /// Interval between distribution-tree re-join announcements.
    pub tree_refresh_interval: Duration,
    /// Lifetime granted to a recorded tree child before it must re-join.
    pub tree_child_lifetime: Duration,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            router: RouterConfig::default(),
            stabilize_interval: 1_000_000,
            fix_fingers_interval: 2_000_000,
            expire_interval: 5_000_000,
            max_lifetime: 600_000_000,
            tree_refresh_interval: 10_000_000,
            tree_child_lifetime: 30_000_000,
        }
    }
}

/// Periodic maintenance timers the host must schedule on the wrapper's
/// behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayTimer {
    /// Chord stabilization round.
    Stabilize,
    /// Finger-table refresh.
    FixFingers,
    /// Soft-state expiry sweep.
    Expire,
    /// Distribution-tree re-join announcement.
    TreeRefresh,
}

/// Notifications delivered to the application (the query processor).  These
/// are the wrapper's `handleGet`, `handleNewData`, `handleUpcall` and
/// `handleLScan` callbacks, plus tree-broadcast delivery.
#[derive(Debug, Clone)]
pub enum OverlayEvent<V> {
    /// Result of a previously issued [`Overlay::get`].
    GetResult {
        /// Token returned by `get`.
        request_id: u64,
        /// Namespace queried.
        namespace: String,
        /// Key queried.
        key: String,
        /// Matching objects.
        objects: Vec<StoredObject<V>>,
    },
    /// Result of a previously issued [`Overlay::renew`].
    RenewResult {
        /// Token returned by `renew`.
        request_id: u64,
        /// Whether the object was present and its lifetime extended.
        success: bool,
    },
    /// A new object arrived at this node (via `put` or `send`).
    NewData {
        /// The stored object.
        object: StoredObject<V>,
        /// Trace context carried by the transfer, when the originating
        /// query is sampled.
        trace: Option<TraceContext>,
    },
    /// A routed object is passing through this node; the application must
    /// call [`Overlay::resume_upcall`] with the token to continue or drop it.
    Upcall {
        /// Token to pass to `resume_upcall`.
        token: u64,
        /// The node the message arrived from.
        from: NodeAddr,
        /// The in-flight object (name + value + remaining lifetime).
        object: StoredObject<V>,
        /// Trace context carried by the routed message, when sampled.
        trace: Option<TraceContext>,
    },
    /// A payload broadcast over the distribution tree reached this node.
    Broadcast {
        /// The broadcast payload.
        payload: V,
    },
    /// Result of a raw [`Overlay::lookup`].
    LookupDone {
        /// Token returned by `lookup`.
        request_id: u64,
        /// Node responsible for the identifier.
        owner: NodeRef,
        /// Overlay hops the lookup took.
        hops: u32,
    },
}

/// Effects the wrapper asks its host program to perform.
#[derive(Debug, Clone)]
pub enum OverlayEffect<V> {
    /// Transmit a message to another node.
    Send {
        /// Destination address.
        to: NodeAddr,
        /// Message to transmit.
        msg: DhtMessage<V>,
    },
    /// Schedule a maintenance timer.
    SetTimer {
        /// Delay from now, microseconds.
        delay: Duration,
        /// Which timer.
        timer: OverlayTimer,
    },
    /// Deliver a notification to the application.
    Event(OverlayEvent<V>),
}

#[derive(Debug, Clone)]
enum PendingOp<V> {
    Get {
        namespace: String,
        key: String,
        trace: Option<TraceContext>,
    },
    Put {
        name: ObjectName,
        value: V,
        lifetime: Duration,
        trace: Option<TraceContext>,
    },
    Renew {
        name: ObjectName,
        lifetime: Duration,
    },
    RawLookup {
        target: Id,
    },
}

/// One owner-cache entry: the resolved owner, when the resolution was
/// learned (TTL anchor) and when it last served a batched put (LRU anchor).
#[derive(Debug, Clone, Copy)]
struct CachedOwner {
    owner: NodeRef,
    cached_at: SimTime,
    last_used: SimTime,
}

/// The overlay wrapper: one instance per node.
#[derive(Debug, Clone)]
pub struct Overlay<V> {
    me: NodeRef,
    config: OverlayConfig,
    router: Router,
    objects: ObjectManager<V>,
    /// In-flight operations awaiting a lookup, stamped with the router's
    /// membership epoch at issue time — a resolution that completes after a
    /// membership change is used for the operation itself (the classic
    /// Figure-6 race, tolerated by soft state) but is NOT admitted into the
    /// owner cache, so a pre-churn answer cannot re-poison a just-cleared
    /// cache — and with the issue time, which prices the lookup-latency
    /// histogram when the resolution lands.
    pending: HashMap<u64, (u64, SimTime, PendingOp<V>)>,
    pending_upcalls: HashMap<u64, PendingUpcall<V>>,
    /// Trace context armed by [`Overlay::set_trace`] and consumed by the
    /// next `get`/`put`/`put_batch`/`send` issued on this wrapper; it rides
    /// the resulting wire messages so the receiving node can attach its
    /// work to the sampled query's span tree.  `None` (the steady state
    /// when tracing is off) adds no wire bytes and no behaviour.
    pending_trace: Option<TraceContext>,
    next_request_id: u64,
    next_upcall_token: u64,
    tree_root: Id,
    /// Ordered: the broadcast fan-out below follows iteration order, which
    /// must not depend on hash seeding (equal-seed runs replay
    /// byte-for-byte).
    tree_children: BTreeMap<NodeAddr, SimTime>,
    /// Identifier→owner resolutions learned from completed lookups, each
    /// stamped with its fill time and valid only within
    /// `owner_cache_epoch` (the router's membership epoch at fill time).
    /// Extends [`Overlay::put_batch`] coalescing beyond the successor list
    /// on large rings.  Three bounds keep it honest: any *locally visible*
    /// membership change — a neighbor joining, leaving, or being presumed
    /// dead — clears the cache wholesale via the epoch; a per-entry TTL
    /// (the router's liveness timeout) bounds how long a resolution can be
    /// trusted when membership changes *outside* the local neighbor view
    /// (a remote join taking over the arc never bumps our epoch; after the
    /// TTL the entry falls back to a fresh lookup); and an LRU capacity
    /// bound ([`Overlay::OWNER_CACHE_MAX`]) keeps a long-lived node on a
    /// huge churn-free ring from accumulating one entry per identifier it
    /// ever resolved — the least-recently-used resolution is evicted, so
    /// the hot destinations of a steady rehash stream stay warm.
    owner_cache: HashMap<Id, CachedOwner>,
    owner_cache_epoch: u64,
    /// Telemetry handle (empty unless the host attaches one): lookup
    /// hop/latency histograms, owner-cache hit/miss/invalidation counters
    /// and put-batch coalescing counters, all under the `dht.*` prefix.
    tel: Telemetry,
}

impl<V: Clone + Debug + WireSize> Overlay<V> {
    /// Create an overlay instance for a node that will join dynamically.
    pub fn new(me: NodeRef, config: OverlayConfig) -> Self {
        let max_lifetime = config.max_lifetime;
        Overlay {
            me,
            config,
            router: Router::new(me, config.router),
            objects: ObjectManager::new(max_lifetime),
            pending: HashMap::new(),
            pending_upcalls: HashMap::new(),
            pending_trace: None,
            next_request_id: 0,
            next_upcall_token: 0,
            tree_root: hash_str(TREE_ROOT_NAME),
            tree_children: BTreeMap::new(),
            owner_cache: HashMap::new(),
            owner_cache_epoch: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry hub (the node's) to this overlay instance.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Arm a trace context for the **next** operation issued on this
    /// wrapper (`get`/`put`/`put_batch`/`send`); it travels on the wire
    /// with that operation and is cleared once consumed.  Callers pass
    /// `Some` only for queries the proxy sampled, so an untraced run never
    /// reaches this with a payload.
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.pending_trace = trace;
    }

    /// Create an overlay whose routing state is pre-converged from full
    /// knowledge of the ring (used by experiments and tests to skip the join
    /// phase).
    pub fn with_static_ring(me: NodeRef, all: &[NodeRef], config: OverlayConfig) -> Self {
        let mut overlay = Overlay::new(me, config);
        overlay.router = Router::with_static_ring(me, all, config.router);
        overlay
    }

    /// This node's ring identity.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// Read access to the router (diagnostics, experiments).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Read access to the local soft-state store.
    pub fn objects(&self) -> &ObjectManager<V> {
        &self.objects
    }

    /// Addresses currently recorded as children in the distribution tree.
    pub fn tree_children(&self) -> Vec<NodeAddr> {
        self.tree_children.keys().copied().collect()
    }

    /// Whether this node is currently the root of the distribution tree.
    pub fn is_tree_root(&self) -> bool {
        self.router.is_responsible(self.tree_root)
    }

    fn next_request_id(&mut self) -> u64 {
        self.next_request_id += 1;
        self.next_request_id
    }

    /// Boot the overlay: start the routing join (if a bootstrap address is
    /// given) and schedule all periodic maintenance timers.
    pub fn start(&mut self, bootstrap: Option<NodeAddr>, _now: SimTime) -> Vec<OverlayEffect<V>> {
        let mut effects: Vec<OverlayEffect<V>> = self
            .router
            .bootstrap(bootstrap)
            .into_iter()
            .map(routing_effect)
            .collect();
        effects.push(OverlayEffect::SetTimer {
            delay: self.config.stabilize_interval,
            timer: OverlayTimer::Stabilize,
        });
        effects.push(OverlayEffect::SetTimer {
            delay: self.config.fix_fingers_interval,
            timer: OverlayTimer::FixFingers,
        });
        effects.push(OverlayEffect::SetTimer {
            delay: self.config.expire_interval,
            timer: OverlayTimer::Expire,
        });
        effects.push(OverlayEffect::SetTimer {
            delay: self.config.tree_refresh_interval / 2,
            timer: OverlayTimer::TreeRefresh,
        });
        effects
    }

    // ----- Inter-node operations (Table 2) --------------------------------

    /// `get(namespace, key)`: fetch every object stored under the
    /// (namespace, key) pair.  The result arrives later as
    /// [`OverlayEvent::GetResult`] carrying the returned request id.
    pub fn get(
        &mut self,
        namespace: &str,
        key: &str,
        now: SimTime,
    ) -> (u64, Vec<OverlayEffect<V>>) {
        let trace = self.pending_trace.take();
        let request_id = self.next_request_id();
        let id = crate::id::routing_id(namespace, key);
        if self.router.is_responsible(id) {
            let objects = self.objects.get(namespace, key, now);
            return (
                request_id,
                vec![OverlayEffect::Event(OverlayEvent::GetResult {
                    request_id,
                    namespace: namespace.to_string(),
                    key: key.to_string(),
                    objects,
                })],
            );
        }
        self.pending.insert(
            request_id,
            (
                self.router.membership_epoch(),
                now,
                PendingOp::Get {
                    namespace: namespace.to_string(),
                    key: key.to_string(),
                    trace,
                },
            ),
        );
        let effects = self.router.lookup(id, request_id, now);
        (request_id, self.absorb_router_effects(effects, now))
    }

    /// `put(namespace, key, suffix, object, lifetime)`: store an object at
    /// the node responsible for its routing identifier.
    pub fn put(
        &mut self,
        name: ObjectName,
        value: V,
        lifetime: Duration,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let trace = self.pending_trace.take();
        let id = name.routing_id();
        if self.router.is_responsible(id) {
            return self.store_local_traced(name, value, lifetime, trace, now);
        }
        let request_id = self.next_request_id();
        self.pending.insert(
            request_id,
            (
                self.router.membership_epoch(),
                now,
                PendingOp::Put {
                    name,
                    value,
                    lifetime,
                    trace,
                },
            ),
        );
        let effects = self.router.lookup(id, request_id, now);
        self.absorb_router_effects(effects, now)
    }

    /// Drop every cached owner resolution when the router's membership view
    /// has changed since the cache was filled.  Called before any cache read
    /// or write, so a node that left (or was presumed dead and evicted)
    /// never serves another grouped transfer out of stale state.
    fn validate_owner_cache(&mut self) {
        let epoch = self.router.membership_epoch();
        if epoch != self.owner_cache_epoch {
            if !self.owner_cache.is_empty() {
                let dropped = self.owner_cache.len();
                self.tel.inc("dht.owner_cache.invalidations");
                self.tel.event("owner_cache_invalidate", || {
                    vec![
                        ("epoch", epoch.to_string()),
                        ("dropped", dropped.to_string()),
                    ]
                });
            }
            self.owner_cache.clear();
            self.owner_cache_epoch = epoch;
        }
    }

    /// The owner of `id` as far as this node can tell without a routed
    /// lookup: authoritative local routing state first
    /// ([`Router::known_owner`]), then the lookup-fed owner cache (valid
    /// for the current membership epoch, younger than the liveness-timeout
    /// TTL, and only while the cached node is not presumed dead).  A hit
    /// refreshes the entry's LRU stamp.
    fn resolved_owner(&mut self, id: Id, now: SimTime) -> Option<NodeRef> {
        if let Some(owner) = self.router.known_owner(id, now) {
            return Some(owner);
        }
        self.validate_owner_cache();
        let ttl = self.config.router.liveness_timeout;
        let Some(entry) = self.owner_cache.get_mut(&id) else {
            self.tel.inc("dht.owner_cache.misses");
            return None;
        };
        let (owner, cached_at) = (entry.owner, entry.cached_at);
        if now.saturating_sub(cached_at) > ttl || self.router.presumed_dead(owner.addr, now) {
            self.owner_cache.remove(&id);
            self.tel.inc("dht.owner_cache.expired");
            self.tel.inc("dht.owner_cache.misses");
            return None;
        }
        entry.last_used = now;
        self.tel.inc("dht.owner_cache.hits");
        Some(owner)
    }

    /// Hard cap on cached owner resolutions.  Reaching it first purges
    /// TTL-expired entries; if the cache is still full, the
    /// **least-recently-used** entry is evicted, so the hot destinations of
    /// a steady rehash stream survive while one-off resolutions rotate out.
    /// Without the cap, a long-lived node on a churn-free ring (epoch never
    /// bumps) would accumulate one entry per distinct identifier ever
    /// resolved.
    const OWNER_CACHE_MAX: usize = 1024;

    /// Record a lookup-resolved owner for reuse by later batched puts.
    /// Never grows the cache past [`Overlay::OWNER_CACHE_MAX`].
    fn cache_owner(&mut self, id: Id, owner: NodeRef, now: SimTime) {
        self.validate_owner_cache();
        if self.owner_cache.len() >= Self::OWNER_CACHE_MAX && !self.owner_cache.contains_key(&id) {
            let ttl = self.config.router.liveness_timeout;
            self.owner_cache
                .retain(|_, e| now.saturating_sub(e.cached_at) <= ttl);
            while self.owner_cache.len() >= Self::OWNER_CACHE_MAX {
                // O(capacity) scan, paid only when the bound is hit with no
                // expired entries to shed — rare under real churn, cheap at
                // this capacity.
                let lru = self
                    .owner_cache
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("cache at capacity is non-empty");
                self.owner_cache.remove(&lru);
                self.tel.inc("dht.owner_cache.lru_evictions");
            }
        }
        self.owner_cache.insert(
            id,
            CachedOwner {
                owner,
                cached_at: now,
                last_used: now,
            },
        );
    }

    /// A batched `put`: entries whose owner is determinable without a
    /// routed lookup — from local routing state ([`Router::known_owner`]) or
    /// from the membership-epoch-scoped owner cache fed by completed
    /// lookups — are grouped into one [`DhtMessage::PutBatch`] per
    /// destination node (locally-owned entries are stored directly); the
    /// rest fall back to the classic per-entry lookup-then-transfer flow of
    /// Figure 6 (and prime the cache for the next flush).  Every entry keeps
    /// its own name and lifetime, so storage and expiry behave exactly as
    /// separate puts — only message framing is shared.
    pub fn put_batch(
        &mut self,
        entries: Vec<(ObjectName, V, Duration)>,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let trace = self.pending_trace.take();
        let mut effects = Vec::new();
        let mut grouped: HashMap<NodeAddr, Vec<PutEntry<V>>> = HashMap::new();
        let mut unresolved = Vec::new();
        let mut local = 0u64;
        let total = entries.len() as u64;
        for (name, value, lifetime) in entries {
            let id = name.routing_id();
            match self.resolved_owner(id, now) {
                Some(owner) if owner.addr == self.me.addr => {
                    local += 1;
                    effects.extend(self.store_local_traced(name, value, lifetime, trace, now));
                }
                Some(owner) => grouped
                    .entry(owner.addr)
                    .or_default()
                    .push((name, value, lifetime)),
                None => unresolved.push((name, value, lifetime)),
            }
        }
        let mut coalesced = 0u64;
        let mut singles = 0u64;
        // Send in destination order: message order must not depend on hash
        // seeding (equal-seed runs replay byte-for-byte).
        let mut grouped: Vec<(NodeAddr, Vec<PutEntry<V>>)> = grouped.into_iter().collect();
        grouped.sort_by_key(|(to, _)| to.index());
        for (to, batch) in grouped {
            if batch.len() == 1 {
                // No point framing a batch around a single object.
                singles += 1;
                let (name, value, lifetime) = batch.into_iter().next().expect("len checked");
                effects.push(OverlayEffect::Send {
                    to,
                    msg: DhtMessage::PutRequest {
                        name,
                        value,
                        lifetime,
                        trace,
                    },
                });
            } else {
                coalesced += batch.len() as u64;
                self.tel
                    .observe_count("dht.put_batch.group_size", batch.len() as f64);
                effects.push(OverlayEffect::Send {
                    to,
                    msg: DhtMessage::PutBatch {
                        entries: batch,
                        trace,
                    },
                });
            }
        }
        // Coalescing ratio = dht.put_batch.coalesced / dht.put_batch.entries.
        self.tel.inc("dht.put_batch.flushes");
        self.tel.add("dht.put_batch.entries", total);
        self.tel.add("dht.put_batch.local", local);
        self.tel.add("dht.put_batch.coalesced", coalesced);
        self.tel.add("dht.put_batch.singles", singles);
        self.tel
            .add("dht.put_batch.unresolved", unresolved.len() as u64);
        for (name, value, lifetime) in unresolved {
            // Re-arm the batch's context for each per-entry fallback: `put`
            // consumes the armed trace on every call.
            self.pending_trace = trace;
            effects.extend(self.put(name, value, lifetime, now));
        }
        effects
    }

    /// `renew(namespace, key, suffix, lifetime)`: extend an object's
    /// lifetime.  Succeeds only if the object is already stored at the
    /// destination; the outcome arrives as [`OverlayEvent::RenewResult`].
    pub fn renew(
        &mut self,
        name: ObjectName,
        lifetime: Duration,
        now: SimTime,
    ) -> (u64, Vec<OverlayEffect<V>>) {
        let request_id = self.next_request_id();
        let id = name.routing_id();
        if self.router.is_responsible(id) {
            let success = self.objects.renew(&name, lifetime, now);
            return (
                request_id,
                vec![OverlayEffect::Event(OverlayEvent::RenewResult {
                    request_id,
                    success,
                })],
            );
        }
        self.pending.insert(
            request_id,
            (
                self.router.membership_epoch(),
                now,
                PendingOp::Renew { name, lifetime },
            ),
        );
        let effects = self.router.lookup(id, request_id, now);
        (request_id, self.absorb_router_effects(effects, now))
    }

    /// `send(namespace, key, suffix, object, lifetime)`: route the object
    /// hop-by-hop to the responsible node, offering an upcall at every
    /// intermediate hop.
    pub fn send(
        &mut self,
        name: ObjectName,
        value: V,
        lifetime: Duration,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let target = name.routing_id();
        self.send_routed(target, name, value, lifetime, now)
    }

    /// Route an object toward an explicit identifier (used by hierarchical
    /// aggregation, where the query names the aggregation-tree root).
    pub fn send_routed(
        &mut self,
        target: Id,
        name: ObjectName,
        value: V,
        lifetime: Duration,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let trace = self.pending_trace.take();
        match self.router.next_hop(target, now) {
            None => self.store_local_traced(name, value, lifetime, trace, now),
            Some(next) => vec![OverlayEffect::Send {
                to: next.addr,
                msg: DhtMessage::Routed {
                    target,
                    name,
                    value,
                    lifetime,
                    hops: 1,
                    trace,
                },
            }],
        }
    }

    /// Resolve the node responsible for an arbitrary identifier.  The answer
    /// arrives as [`OverlayEvent::LookupDone`].
    pub fn lookup(&mut self, target: Id, now: SimTime) -> (u64, Vec<OverlayEffect<V>>) {
        let request_id = self.next_request_id();
        self.pending.insert(
            request_id,
            (
                self.router.membership_epoch(),
                now,
                PendingOp::RawLookup { target },
            ),
        );
        let effects = self.router.lookup(target, request_id, now);
        (request_id, self.absorb_router_effects(effects, now))
    }

    // ----- Intra-node operations ------------------------------------------

    /// `localScan(namespace)`: every live object of a namespace stored here.
    pub fn local_scan(&self, namespace: &str, now: SimTime) -> Vec<StoredObject<V>> {
        self.objects.scan_namespace(namespace, now)
    }

    /// Store an object directly in the local store (used both when this node
    /// is itself responsible for the object and for operator state, which the
    /// query processor keeps in the DHT's local storage layer, §3.3.6).
    pub fn store_local(
        &mut self,
        name: ObjectName,
        value: V,
        lifetime: Duration,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let trace = self.pending_trace.take();
        self.store_local_traced(name, value, lifetime, trace, now)
    }

    /// [`Overlay::store_local`] with an explicit trace context, used on
    /// receive paths where the context arrived on the wire rather than from
    /// [`Overlay::set_trace`].
    fn store_local_traced(
        &mut self,
        name: ObjectName,
        value: V,
        lifetime: Duration,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let expires_at = self.objects.put(name.clone(), value.clone(), lifetime, now);
        vec![OverlayEffect::Event(OverlayEvent::NewData {
            object: StoredObject {
                name,
                value,
                expires_at,
            },
            trace,
        })]
    }

    /// Continue or drop a routed message previously surfaced through
    /// [`OverlayEvent::Upcall`].
    pub fn resume_upcall(
        &mut self,
        token: u64,
        continue_routing: bool,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let Some((target, name, value, lifetime, hops, trace)) =
            self.pending_upcalls.remove(&token)
        else {
            return Vec::new();
        };
        if !continue_routing {
            return Vec::new();
        }
        match self.router.next_hop(target, now) {
            None => self.store_local_traced(name, value, lifetime, trace, now),
            Some(next) => vec![OverlayEffect::Send {
                to: next.addr,
                msg: DhtMessage::Routed {
                    target,
                    name,
                    value,
                    lifetime,
                    hops: hops + 1,
                    trace,
                },
            }],
        }
    }

    // ----- Distribution tree ----------------------------------------------

    /// Announce this node to its distribution-tree parent (the first hop on
    /// the route toward the tree root).  Called periodically because the tree
    /// is soft state.
    pub fn join_tree(&mut self, now: SimTime) -> Vec<OverlayEffect<V>> {
        match self.router.next_hop(self.tree_root, now) {
            None => Vec::new(), // we are the root
            Some(parent) => vec![OverlayEffect::Send {
                to: parent.addr,
                msg: DhtMessage::TreeJoin {
                    child: self.me.addr,
                    root: self.tree_root,
                },
            }],
        }
    }

    /// Broadcast a payload to every node via the distribution tree.  The
    /// payload is routed up to the root and then pushed down the recorded
    /// children; every node (including this one) receives it as
    /// [`OverlayEvent::Broadcast`].
    pub fn broadcast(&mut self, payload: V, now: SimTime) -> Vec<OverlayEffect<V>> {
        if self.router.is_responsible(self.tree_root) {
            return self.deliver_broadcast(payload, 0, now);
        }
        match self.router.next_hop(self.tree_root, now) {
            None => self.deliver_broadcast(payload, 0, now),
            Some(next) => vec![OverlayEffect::Send {
                to: next.addr,
                msg: DhtMessage::TreeBroadcastUp {
                    root: self.tree_root,
                    payload,
                },
            }],
        }
    }

    fn deliver_broadcast(&mut self, payload: V, depth: u32, now: SimTime) -> Vec<OverlayEffect<V>> {
        let mut effects = vec![OverlayEffect::Event(OverlayEvent::Broadcast {
            payload: payload.clone(),
        })];
        if depth > 64 {
            // Defensive bound; a correct tree is far shallower.
            return effects;
        }
        self.tree_children.retain(|_, expiry| *expiry >= now);
        for child in self.tree_children.keys() {
            effects.push(OverlayEffect::Send {
                to: *child,
                msg: DhtMessage::TreeBroadcastDown {
                    root: self.tree_root,
                    payload: payload.clone(),
                    depth: depth + 1,
                },
            });
        }
        effects
    }

    // ----- Message and timer handling --------------------------------------

    /// Handle an incoming overlay message.
    pub fn on_message(
        &mut self,
        from: NodeAddr,
        msg: DhtMessage<V>,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        match msg {
            DhtMessage::Routing(m) => {
                let effects = self.router.on_message(from, m, now);
                self.absorb_router_effects(effects, now)
            }
            DhtMessage::GetRequest {
                namespace,
                key,
                reply_to,
                request_id,
                trace: _,
            } => {
                let objects = self.objects.get(&namespace, &key, now);
                vec![OverlayEffect::Send {
                    to: reply_to,
                    msg: DhtMessage::GetResponse {
                        request_id,
                        namespace,
                        key,
                        objects,
                    },
                }]
            }
            DhtMessage::GetResponse {
                request_id,
                namespace,
                key,
                objects,
            } => vec![OverlayEffect::Event(OverlayEvent::GetResult {
                request_id,
                namespace,
                key,
                objects,
            })],
            DhtMessage::PutRequest {
                name,
                value,
                lifetime,
                trace,
            } => self.store_local_traced(name, value, lifetime, trace, now),
            DhtMessage::PutBatch { entries, trace } => {
                let mut effects = Vec::new();
                for (name, value, lifetime) in entries {
                    if self.router.is_responsible(name.routing_id()) {
                        effects.extend(self.store_local_traced(name, value, lifetime, trace, now));
                    } else {
                        // A membership change raced the coalesced transfer
                        // (e.g. a joiner took over part of this arc after
                        // the sender resolved us as the owner): re-enter the
                        // classic lookup-then-transfer flow instead of
                        // storing the entry out of place, where no correctly
                        // routed get would ever find it.
                        self.pending_trace = trace;
                        effects.extend(self.put(name, value, lifetime, now));
                    }
                }
                effects
            }
            DhtMessage::RenewRequest {
                name,
                lifetime,
                reply_to,
                request_id,
            } => {
                let success = self.objects.renew(&name, lifetime, now);
                vec![OverlayEffect::Send {
                    to: reply_to,
                    msg: DhtMessage::RenewResponse {
                        request_id,
                        success,
                    },
                }]
            }
            DhtMessage::RenewResponse {
                request_id,
                success,
            } => vec![OverlayEffect::Event(OverlayEvent::RenewResult {
                request_id,
                success,
            })],
            DhtMessage::Routed {
                target,
                name,
                value,
                lifetime,
                hops,
                trace,
            } => {
                if self.router.is_responsible(target) {
                    self.store_local_traced(name, value, lifetime, trace, now)
                } else {
                    // Offer the application an upcall before forwarding.
                    self.next_upcall_token += 1;
                    let token = self.next_upcall_token;
                    self.pending_upcalls.insert(
                        token,
                        (target, name.clone(), value.clone(), lifetime, hops, trace),
                    );
                    vec![OverlayEffect::Event(OverlayEvent::Upcall {
                        token,
                        from,
                        object: StoredObject {
                            name,
                            value,
                            expires_at: now + lifetime,
                        },
                        trace,
                    })]
                }
            }
            DhtMessage::TreeJoin { child, .. } => {
                self.tree_children
                    .insert(child, now + self.config.tree_child_lifetime);
                Vec::new()
            }
            DhtMessage::TreeBroadcastUp { root, payload } => {
                if self.router.is_responsible(root) {
                    self.deliver_broadcast(payload, 0, now)
                } else {
                    match self.router.next_hop(root, now) {
                        None => self.deliver_broadcast(payload, 0, now),
                        Some(next) => vec![OverlayEffect::Send {
                            to: next.addr,
                            msg: DhtMessage::TreeBroadcastUp { root, payload },
                        }],
                    }
                }
            }
            DhtMessage::TreeBroadcastDown { payload, depth, .. } => {
                self.deliver_broadcast(payload, depth, now)
            }
        }
    }

    /// Handle a maintenance timer; the returned effects include re-arming the
    /// same timer.
    pub fn on_timer(&mut self, timer: OverlayTimer, now: SimTime) -> Vec<OverlayEffect<V>> {
        let mut effects = match timer {
            OverlayTimer::Stabilize => {
                let e = self.router.on_stabilize(now);
                self.absorb_router_effects(e, now)
            }
            OverlayTimer::FixFingers => {
                let e = self.router.on_fix_fingers(now);
                self.absorb_router_effects(e, now)
            }
            OverlayTimer::Expire => {
                self.objects.expire(now);
                self.tree_children.retain(|_, expiry| *expiry >= now);
                Vec::new()
            }
            OverlayTimer::TreeRefresh => self.join_tree(now),
        };
        let delay = match timer {
            OverlayTimer::Stabilize => self.config.stabilize_interval,
            OverlayTimer::FixFingers => self.config.fix_fingers_interval,
            OverlayTimer::Expire => self.config.expire_interval,
            OverlayTimer::TreeRefresh => self.config.tree_refresh_interval,
        };
        effects.push(OverlayEffect::SetTimer { delay, timer });
        effects
    }

    fn absorb_router_effects(
        &mut self,
        effects: Vec<RouterEffect>,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let mut out = Vec::new();
        for effect in effects {
            match effect {
                RouterEffect::Send { to, msg } => out.push(OverlayEffect::Send {
                    to,
                    msg: DhtMessage::Routing(msg),
                }),
                RouterEffect::LookupDone {
                    request_id,
                    owner,
                    hops,
                } => out.extend(self.finish_lookup(request_id, owner, hops, now)),
            }
        }
        out
    }

    fn finish_lookup(
        &mut self,
        request_id: u64,
        owner: NodeRef,
        hops: u32,
        now: SimTime,
    ) -> Vec<OverlayEffect<V>> {
        let Some((issued_epoch, issued_at, op)) = self.pending.remove(&request_id) else {
            return Vec::new();
        };
        self.tel.inc("dht.lookups");
        self.tel.observe_count("dht.lookup_hops", hops as f64);
        self.tel.observe_latency(
            "dht.lookup_latency_us",
            now.saturating_sub(issued_at) as f64,
        );
        // Remember the resolution so later batched puts can group entries
        // for this identifier's arc without re-paying the lookup round —
        // but only when no membership change happened while the lookup was
        // in flight; a pre-churn answer must not re-poison the cache the
        // epoch bump just cleared.
        if issued_epoch == self.router.membership_epoch() && owner.addr != self.me.addr {
            let target = match &op {
                PendingOp::Get { namespace, key, .. } => crate::id::routing_id(namespace, key),
                PendingOp::Put { name, .. } | PendingOp::Renew { name, .. } => name.routing_id(),
                PendingOp::RawLookup { target } => *target,
            };
            self.cache_owner(target, owner, now);
        }
        match op {
            PendingOp::Get {
                namespace,
                key,
                trace,
            } => {
                if owner.addr == self.me.addr {
                    let objects = self.objects.get(&namespace, &key, now);
                    vec![OverlayEffect::Event(OverlayEvent::GetResult {
                        request_id,
                        namespace,
                        key,
                        objects,
                    })]
                } else {
                    vec![OverlayEffect::Send {
                        to: owner.addr,
                        msg: DhtMessage::GetRequest {
                            namespace,
                            key,
                            reply_to: self.me.addr,
                            request_id,
                            trace,
                        },
                    }]
                }
            }
            PendingOp::Put {
                name,
                value,
                lifetime,
                trace,
            } => {
                if owner.addr == self.me.addr {
                    self.store_local_traced(name, value, lifetime, trace, now)
                } else {
                    vec![OverlayEffect::Send {
                        to: owner.addr,
                        msg: DhtMessage::PutRequest {
                            name,
                            value,
                            lifetime,
                            trace,
                        },
                    }]
                }
            }
            PendingOp::Renew { name, lifetime } => {
                if owner.addr == self.me.addr {
                    let success = self.objects.renew(&name, lifetime, now);
                    vec![OverlayEffect::Event(OverlayEvent::RenewResult {
                        request_id,
                        success,
                    })]
                } else {
                    vec![OverlayEffect::Send {
                        to: owner.addr,
                        msg: DhtMessage::RenewRequest {
                            name,
                            lifetime,
                            reply_to: self.me.addr,
                            request_id,
                        },
                    }]
                }
            }
            PendingOp::RawLookup { .. } => vec![OverlayEffect::Event(OverlayEvent::LookupDone {
                request_id,
                owner,
                hops,
            })],
        }
    }
}

fn routing_effect<V>(effect: RouterEffect) -> OverlayEffect<V> {
    match effect {
        RouterEffect::Send { to, msg } => OverlayEffect::Send {
            to,
            msg: DhtMessage::Routing(msg),
        },
        RouterEffect::LookupDone { .. } => {
            unreachable!("bootstrap never completes a lookup synchronously")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::routing_id;

    fn two_node_ring() -> (Overlay<String>, Overlay<String>, Vec<NodeRef>) {
        let refs = vec![
            NodeRef {
                id: Id(100),
                addr: NodeAddr(0),
            },
            NodeRef {
                id: Id(u64::MAX / 2),
                addr: NodeAddr(1),
            },
        ];
        let a = Overlay::with_static_ring(refs[0], &refs, OverlayConfig::default());
        let b = Overlay::with_static_ring(refs[1], &refs, OverlayConfig::default());
        (a, b, refs)
    }

    fn sends<V: Clone>(effects: &[OverlayEffect<V>]) -> Vec<(NodeAddr, DhtMessage<V>)> {
        effects
            .iter()
            .filter_map(|e| match e {
                OverlayEffect::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    fn events<V: Clone>(effects: &[OverlayEffect<V>]) -> Vec<OverlayEvent<V>> {
        effects
            .iter()
            .filter_map(|e| match e {
                OverlayEffect::Event(ev) => Some(ev.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn local_put_and_get_short_circuit() {
        let (mut a, _b, _) = two_node_ring();
        // Find a key that node a owns.
        let mut key = String::new();
        for i in 0..10_000 {
            let candidate = format!("k{i}");
            if a.router().is_responsible(routing_id("t", &candidate)) {
                key = candidate;
                break;
            }
        }
        assert!(!key.is_empty(), "no locally owned key found");
        let effects = a.put(
            ObjectName::new("t", key.clone(), 1),
            "v".into(),
            1_000_000,
            0,
        );
        assert!(matches!(
            events(&effects).as_slice(),
            [OverlayEvent::NewData { .. }]
        ));
        let (rid, effects) = a.get("t", &key, 10);
        match &events(&effects)[..] {
            [OverlayEvent::GetResult {
                request_id,
                objects,
                ..
            }] => {
                assert_eq!(*request_id, rid);
                assert_eq!(objects.len(), 1);
                assert_eq!(objects[0].value, "v");
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn remote_put_goes_through_lookup_then_direct_transfer() {
        let (mut a, mut b, _) = two_node_ring();
        // Find a key that node b owns.
        let mut key = String::new();
        for i in 0..10_000 {
            let candidate = format!("k{i}");
            if b.router().is_responsible(routing_id("t", &candidate)) {
                key = candidate;
                break;
            }
        }
        let effects = a.put(
            ObjectName::new("t", key.clone(), 7),
            "val".into(),
            1_000_000,
            0,
        );
        // In a two-node ring the lookup resolves locally (b is a's successor),
        // so the effect is a direct PutRequest to b.
        let msgs = sends(&effects);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, NodeAddr(1));
        let put_effects = b.on_message(NodeAddr(0), msgs[0].1.clone(), 5);
        assert!(matches!(
            events(&put_effects).as_slice(),
            [OverlayEvent::NewData { .. }]
        ));
        assert_eq!(b.objects().get("t", &key, 10).len(), 1);

        // And a's get for the same key round-trips through b.
        let (rid, effects) = a.get("t", &key, 20);
        let msgs = sends(&effects);
        assert_eq!(msgs.len(), 1, "expected a GetRequest to b");
        let resp = b.on_message(NodeAddr(0), msgs[0].1.clone(), 25);
        let resp_msgs = sends(&resp);
        assert_eq!(resp_msgs.len(), 1);
        let final_effects = a.on_message(NodeAddr(1), resp_msgs[0].1.clone(), 30);
        match &events(&final_effects)[..] {
            [OverlayEvent::GetResult {
                request_id,
                objects,
                ..
            }] => {
                assert_eq!(*request_id, rid);
                assert_eq!(objects.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn put_batch_groups_same_owner_entries_into_one_message() {
        let (mut a, mut b, _) = two_node_ring();
        // Partition a pile of keys by owner as the router sees them.
        let mut a_keys = Vec::new();
        let mut b_keys = Vec::new();
        for i in 0..40 {
            let key = format!("k{i}");
            if a.router().is_responsible(routing_id("t", &key)) {
                a_keys.push(key);
            } else {
                b_keys.push(key);
            }
        }
        assert!(a_keys.len() >= 2, "need locally owned keys");
        assert!(b_keys.len() >= 2, "need remotely owned keys");
        let entries: Vec<(ObjectName, String, u64)> = a_keys
            .iter()
            .chain(&b_keys)
            .enumerate()
            .map(|(i, k)| {
                (
                    ObjectName::new("t", k.clone(), i as u64),
                    format!("v{i}"),
                    1_000_000,
                )
            })
            .collect();
        let total = entries.len();
        let effects = a.put_batch(entries, 0);
        // Local entries stored immediately (one NewData each)…
        assert_eq!(events(&effects).len(), a_keys.len());
        // …and every remote entry travels in a single coalesced message (in
        // a two-node ring the successor arc covers the whole remainder).
        let msgs = sends(&effects);
        assert_eq!(msgs.len(), 1, "all remote entries share one PutBatch");
        assert!(
            matches!(&msgs[0].1, DhtMessage::PutBatch { entries, .. } if entries.len() == b_keys.len())
        );
        // The receiver unpacks into per-object storage with per-object
        // lifetimes, exactly as separate puts would have produced.
        let recv_effects = b.on_message(NodeAddr(0), msgs[0].1.clone(), 5);
        assert_eq!(events(&recv_effects).len(), b_keys.len());
        let stored: usize = b_keys
            .iter()
            .map(|k| b.objects().get("t", k, 10).len())
            .sum();
        assert_eq!(stored, b_keys.len());
        assert_eq!(a.objects().len() + b.objects().len(), total);
        // The coalesced transfer's dictionary framing undercuts the bytes
        // the same entries would cost as separate PutRequests (the shared
        // namespace travels once).
        let separate: usize = match &msgs[0].1 {
            DhtMessage::PutBatch { entries, .. } => entries
                .iter()
                .map(|(name, value, lifetime)| {
                    DhtMessage::PutRequest {
                        name: name.clone(),
                        value: value.clone(),
                        lifetime: *lifetime,
                        trace: None,
                    }
                    .wire_size()
                })
                .sum(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(msgs[0].1.wire_size() < separate);
    }

    #[test]
    fn put_batch_never_coalesces_toward_a_departed_node() {
        // Three nodes; node 1 owns the middle arc, then leaves (its probes
        // go unanswered until stabilization evicts it).  A batch flushed
        // after the eviction must not group a single entry toward it.
        let refs = vec![
            NodeRef {
                id: Id(100),
                addr: NodeAddr(0),
            },
            NodeRef {
                id: Id(u64::MAX / 3),
                addr: NodeAddr(1),
            },
            NodeRef {
                id: Id(2 * (u64::MAX / 3)),
                addr: NodeAddr(2),
            },
        ];
        let mut a: Overlay<String> =
            Overlay::with_static_ring(refs[0], &refs, OverlayConfig::default());
        let keys: Vec<String> = (0..200)
            .map(|i| format!("k{i}"))
            .filter(|k| {
                let id = routing_id("t", k);
                id.in_interval(refs[0].id, refs[1].id)
            })
            .take(6)
            .collect();
        assert!(keys.len() >= 4, "need keys in the departed node's arc");
        let entries = |suffix: u64| -> Vec<(ObjectName, String, u64)> {
            keys.iter()
                .enumerate()
                .map(|(i, k)| {
                    (
                        ObjectName::new("t", k.clone(), suffix + i as u64),
                        "v".to_string(),
                        1_000_000,
                    )
                })
                .collect()
        };
        // Before the churn the whole pile coalesces toward node 1.
        let effects = a.put_batch(entries(0), 0);
        assert!(sends(&effects).iter().all(|(to, _)| *to == NodeAddr(1)));
        assert!(sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, DhtMessage::PutBatch { .. })));
        // Node 1 departs: its stabilization probe goes unanswered past the
        // liveness timeout; node 2 keeps answering and stays trusted.
        a.on_timer(OverlayTimer::Stabilize, 0);
        a.on_message(
            NodeAddr(2),
            DhtMessage::Routing(crate::router::RouterMessage::Notify { from: refs[2] }),
            1_000,
        );
        let epoch_before = a.router().membership_epoch();
        a.on_timer(OverlayTimer::Stabilize, 60_000_000);
        assert!(
            a.router().membership_epoch() > epoch_before,
            "eviction must bump the membership epoch"
        );
        // The same arc now resolves to node 2 (the next live successor);
        // nothing — batched or otherwise — travels to the departed node.
        let effects = a.put_batch(entries(100), 60_000_001);
        let msgs = sends(&effects);
        assert!(!msgs.is_empty());
        assert!(
            msgs.iter().all(|(to, _)| *to != NodeAddr(1)),
            "no transfer may target the departed node: {msgs:?}"
        );
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == NodeAddr(2) && matches!(m, DhtMessage::PutBatch { .. })));
    }

    #[test]
    fn owner_cache_extends_coalescing_and_invalidates_on_membership_change() {
        // Six nodes, successor list truncated to 1: arcs beyond the direct
        // successor are not locally determinable, so batched puts for them
        // need either a lookup round or the lookup-fed owner cache.
        let n = 6u64;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                id: Id(100 + i * (u64::MAX / n)),
                addr: NodeAddr(i as u32),
            })
            .collect();
        let config = OverlayConfig {
            router: RouterConfig {
                successor_list_len: 1,
                ..RouterConfig::default()
            },
            ..OverlayConfig::default()
        };
        let mut overlays: Vec<Overlay<String>> = refs
            .iter()
            .map(|r| Overlay::with_static_ring(*r, &refs, config))
            .collect();
        // Pick a target arc at least two hops from node 0.
        let target = refs[3];
        let keys: Vec<String> = (0..400)
            .map(|i| format!("k{i}"))
            .filter(|k| routing_id("t", k).in_interval(refs[2].id, refs[3].id))
            .take(5)
            .collect();
        assert!(keys.len() >= 5, "need keys in the far arc");
        // A single classic put resolves the owner via a routed lookup…
        let mut queue: Vec<(NodeAddr, NodeAddr, DhtMessage<String>)> = overlays[0]
            .put(
                ObjectName::new("t", keys[0].clone(), 1),
                "v".into(),
                1_000_000,
                0,
            )
            .into_iter()
            .filter_map(|e| match e {
                OverlayEffect::Send { to, msg } => Some((NodeAddr(0), to, msg)),
                _ => None,
            })
            .collect();
        let mut put_request_seen = false;
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 64, "lookup did not converge");
            if matches!(msg, DhtMessage::PutRequest { .. }) {
                assert_eq!(to, target.addr);
                put_request_seen = true;
                continue;
            }
            for e in overlays[to.index()].on_message(from, msg, 0) {
                if let OverlayEffect::Send { to: next, msg } = e {
                    queue.push((to, next, msg));
                }
            }
        }
        assert!(put_request_seen, "the classic put must reach the owner");
        // …which primes the cache only for that exact identifier; batched
        // puts for *other* keys of the arc still lack a local resolution, so
        // they fall back to lookups whose replies fill the cache.
        let entries: Vec<(ObjectName, String, u64)> = keys[1..]
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    ObjectName::new("t", k.clone(), 10 + i as u64),
                    "v".to_string(),
                    1_000_000,
                )
            })
            .collect();
        let effects = overlays[0].put_batch(entries.clone(), 10);
        let mut queue: Vec<(NodeAddr, NodeAddr, DhtMessage<String>)> = sends(&effects)
            .into_iter()
            .map(|(to, msg)| (NodeAddr(0), to, msg))
            .collect();
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 256, "batch fallback lookups did not converge");
            if matches!(
                msg,
                DhtMessage::PutRequest { .. } | DhtMessage::PutBatch { .. }
            ) {
                assert_eq!(to, target.addr);
                continue;
            }
            for e in overlays[to.index()].on_message(from, msg, 10) {
                if let OverlayEffect::Send { to: next, msg } = e {
                    queue.push((to, next, msg));
                }
            }
        }
        assert!(
            !overlays[0].owner_cache.is_empty(),
            "completed lookups must feed the owner cache"
        );
        // With the cache warm, a fresh batch for the same arc coalesces into
        // ONE PutBatch straight to the owner — no lookup round at all.
        let warm: Vec<(ObjectName, String, u64)> = keys[1..]
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    ObjectName::new("t", k.clone(), 50 + i as u64),
                    "v".to_string(),
                    1_000_000,
                )
            })
            .collect();
        let effects = overlays[0].put_batch(warm.clone(), 20);
        let msgs = sends(&effects);
        assert_eq!(
            msgs.len(),
            1,
            "one coalesced transfer, no lookups: {msgs:?}"
        );
        assert_eq!(msgs[0].0, target.addr);
        assert!(matches!(&msgs[0].1, DhtMessage::PutBatch { entries, .. } if entries.len() == 4));
        // A membership change (a new predecessor announces itself) bumps the
        // router's epoch and clears the cache: the next batch must not trust
        // the stale resolution.
        let newcomer = NodeRef {
            id: Id(99),
            addr: NodeAddr(42),
        };
        overlays[0].on_message(
            newcomer.addr,
            DhtMessage::Routing(crate::router::RouterMessage::Notify { from: newcomer }),
            30,
        );
        let effects = overlays[0].put_batch(warm, 30);
        assert!(
            overlays[0].owner_cache.is_empty(),
            "membership change must clear the owner cache"
        );
        assert!(
            sends(&effects)
                .iter()
                .all(|(_, m)| !matches!(m, DhtMessage::PutBatch { .. })),
            "no coalesced transfer may ride a stale resolution"
        );
    }

    #[test]
    fn put_batch_receiver_forwards_entries_it_does_not_own() {
        // A coalesced transfer landing at a node that is not (or no longer)
        // responsible for its entries — e.g. the sender's cached owner went
        // stale after a join — must re-enter the routed put flow, never
        // store the objects where no correctly routed get would find them.
        let refs = vec![
            NodeRef {
                id: Id(100),
                addr: NodeAddr(0),
            },
            NodeRef {
                id: Id(u64::MAX / 3),
                addr: NodeAddr(1),
            },
            NodeRef {
                id: Id(2 * (u64::MAX / 3)),
                addr: NodeAddr(2),
            },
        ];
        let mut b: Overlay<String> =
            Overlay::with_static_ring(refs[1], &refs, OverlayConfig::default());
        // Keys owned by node 2, misdirected to node 1 in one PutBatch.
        let entries: Vec<(ObjectName, String, u64)> = (0..200)
            .map(|i| format!("k{i}"))
            .filter(|k| routing_id("t", k).in_interval(refs[1].id, refs[2].id))
            .take(3)
            .enumerate()
            .map(|(i, k)| {
                (
                    ObjectName::new("t", k, i as u64),
                    "v".to_string(),
                    1_000_000,
                )
            })
            .collect();
        assert_eq!(entries.len(), 3);
        let misdirected = DhtMessage::PutBatch {
            entries: entries.clone(),
            trace: None,
        };
        let effects = b.on_message(NodeAddr(0), misdirected, 0);
        assert!(
            events(&effects).is_empty(),
            "nothing may be stored out of place"
        );
        assert_eq!(b.objects().len(), 0);
        // Every entry is forwarded toward the true owner instead (node 2 is
        // b's successor, so the re-entered put resolves it directly).
        let msgs = sends(&effects);
        assert_eq!(msgs.len(), entries.len());
        assert!(msgs
            .iter()
            .all(|(to, m)| *to == NodeAddr(2) && matches!(m, DhtMessage::PutRequest { .. })));
    }

    #[test]
    fn owner_cache_entries_expire_and_in_flight_lookups_cannot_repoison() {
        // Same truncated-successor-list setup as the test above: far arcs
        // resolve only through the lookup-fed owner cache.
        let n = 6u64;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                id: Id(100 + i * (u64::MAX / n)),
                addr: NodeAddr(i as u32),
            })
            .collect();
        let config = OverlayConfig {
            router: RouterConfig {
                successor_list_len: 1,
                ..RouterConfig::default()
            },
            ..OverlayConfig::default()
        };
        let mut overlays: Vec<Overlay<String>> = refs
            .iter()
            .map(|r| Overlay::with_static_ring(*r, &refs, config))
            .collect();
        let target = refs[3];
        let keys: Vec<String> = (0..400)
            .map(|i| format!("k{i}"))
            .filter(|k| routing_id("t", k).in_interval(refs[2].id, refs[3].id))
            .take(3)
            .collect();
        assert!(keys.len() >= 3, "need keys in the far arc");
        let entries = |suffix: u64, now_keys: &[String]| -> Vec<(ObjectName, String, u64)> {
            now_keys
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    (
                        ObjectName::new("t", k.clone(), suffix + i as u64),
                        "v".to_string(),
                        1_000_000,
                    )
                })
                .collect()
        };
        // Warm the cache: the fallback lookups of a first batch complete.
        let effects = overlays[0].put_batch(entries(0, &keys), 0);
        let mut queue: Vec<(NodeAddr, NodeAddr, DhtMessage<String>)> = sends(&effects)
            .into_iter()
            .map(|(to, msg)| (NodeAddr(0), to, msg))
            .collect();
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 256, "warming lookups did not converge");
            if matches!(msg, DhtMessage::PutRequest { .. }) {
                continue;
            }
            for e in overlays[to.index()].on_message(from, msg, 0) {
                if let OverlayEffect::Send { to: next, msg } = e {
                    queue.push((to, next, msg));
                }
            }
        }
        assert!(!overlays[0].owner_cache.is_empty());
        // Within the TTL the batch coalesces…
        let ttl = RouterConfig::default().liveness_timeout;
        let msgs = sends(&overlays[0].put_batch(entries(10, &keys), ttl));
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].1, DhtMessage::PutBatch { .. }));
        assert_eq!(msgs[0].0, target.addr);
        // …past it the entry is no longer trusted: membership may have
        // changed outside our neighbor view (a remote join never bumps our
        // epoch), so the batch falls back to fresh lookups.
        let msgs = sends(&overlays[0].put_batch(entries(20, &keys), 2 * ttl + 1));
        assert!(
            msgs.iter()
                .all(|(_, m)| matches!(m, DhtMessage::Routing(_))),
            "expired cache entries must force a lookup round: {msgs:?}"
        );
        assert!(
            overlays[0].owner_cache.is_empty(),
            "expired entries evicted"
        );
        // In-flight poisoning: a put issues its lookup, THEN the membership
        // changes, THEN the pre-churn reply arrives.  The reply still
        // completes the put (the classic Figure-6 race) but must not enter
        // the cache the epoch bump just cleared.
        let t = 2 * ttl + 2;
        let effects = overlays[0].put(
            ObjectName::new("t", keys[0].clone(), 99),
            "v".into(),
            1_000_000,
            t,
        );
        let mut queue: Vec<(NodeAddr, NodeAddr, DhtMessage<String>)> = sends(&effects)
            .into_iter()
            .map(|(to, msg)| (NodeAddr(0), to, msg))
            .collect();
        let mut replies: Vec<(NodeAddr, DhtMessage<String>)> = Vec::new();
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 64, "lookup did not converge");
            if to == NodeAddr(0) {
                replies.push((from, msg)); // hold the reply back
                continue;
            }
            for e in overlays[to.index()].on_message(from, msg, t) {
                if let OverlayEffect::Send { to: next, msg } = e {
                    queue.push((to, next, msg));
                }
            }
        }
        assert!(!replies.is_empty(), "the lookup must produce a reply");
        let newcomer = NodeRef {
            id: Id(99),
            addr: NodeAddr(42),
        };
        overlays[0].on_message(
            newcomer.addr,
            DhtMessage::Routing(crate::router::RouterMessage::Notify { from: newcomer }),
            t,
        );
        for (from, msg) in replies {
            overlays[0].on_message(from, msg, t);
        }
        assert!(
            overlays[0].owner_cache.is_empty(),
            "a pre-churn lookup reply must not re-poison the cleared cache"
        );
    }

    #[test]
    fn owner_cache_is_lru_bounded_on_a_large_ring() {
        // A ring whose truncated successor lists leave a far arc that only
        // the lookup-fed cache can resolve — the shape under which the cache
        // is actually exercised — then hammer it with far more distinct
        // identifiers than the capacity bound.
        let n = 6u64;
        let step = u64::MAX / n;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                id: Id(100 + i * step),
                addr: NodeAddr(i as u32),
            })
            .collect();
        let config = OverlayConfig {
            router: RouterConfig {
                successor_list_len: 1,
                ..RouterConfig::default()
            },
            ..OverlayConfig::default()
        };
        let mut overlay: Overlay<String> = Overlay::with_static_ring(refs[0], &refs, config);
        let target = refs[3];
        // Identifiers strictly inside the far arc (refs[2], refs[3]): node 0
        // has no authoritative routing state for them.
        let far = |i: u64| Id(100 + 2 * step + 1 + (i % (step - 2)));
        let max = Overlay::<String>::OWNER_CACHE_MAX;
        for i in 0..(3 * max as u64) {
            overlay.cache_owner(far(i), target, 0);
            assert!(
                overlay.owner_cache.len() <= max,
                "cache exceeded its bound at insert {i}: {}",
                overlay.owner_cache.len()
            );
        }
        assert_eq!(overlay.owner_cache.len(), max);
        // A recently-used entry survives LRU churn: touch one resolution,
        // then push a full capacity's worth of fresh inserts through.  Every
        // timestamp stays within the TTL, so the bound below is enforced
        // purely by least-recently-used eviction — and the touched entry is
        // never the victim.
        let hot = far(3 * max as u64);
        overlay.cache_owner(hot, target, 1);
        assert_eq!(
            overlay.resolved_owner(hot, 2).map(|o| o.addr),
            Some(target.addr)
        );
        for i in 0..(max as u64 - 1) {
            overlay.cache_owner(far(10_000_000 + i), target, 2);
            assert!(overlay.owner_cache.len() <= max);
        }
        assert!(
            overlay.owner_cache.contains_key(&hot),
            "the most-recently-used entry must survive LRU eviction"
        );
        assert_eq!(overlay.owner_cache.len(), max);
    }

    #[test]
    fn renew_requires_existing_object() {
        let (mut a, _b, _) = two_node_ring();
        let mut key = String::new();
        for i in 0..10_000 {
            let candidate = format!("k{i}");
            if a.router().is_responsible(routing_id("t", &candidate)) {
                key = candidate;
                break;
            }
        }
        let name = ObjectName::new("t", key.clone(), 1);
        // Renew before put fails.
        let (_, effects) = a.renew(name.clone(), 1_000, 0);
        assert!(matches!(
            events(&effects).as_slice(),
            [OverlayEvent::RenewResult { success: false, .. }]
        ));
        a.put(name.clone(), "v".into(), 1_000_000, 0);
        let (_, effects) = a.renew(name, 2_000_000, 100);
        assert!(matches!(
            events(&effects).as_slice(),
            [OverlayEvent::RenewResult { success: true, .. }]
        ));
    }

    #[test]
    fn routed_send_offers_upcall_and_can_be_dropped() {
        // Three nodes so a send can pass through an intermediate hop.
        let refs = vec![
            NodeRef {
                id: Id(0),
                addr: NodeAddr(0),
            },
            NodeRef {
                id: Id(u64::MAX / 3),
                addr: NodeAddr(1),
            },
            NodeRef {
                id: Id(2 * (u64::MAX / 3)),
                addr: NodeAddr(2),
            },
        ];
        let mut overlays: Vec<Overlay<String>> = refs
            .iter()
            .map(|r| Overlay::with_static_ring(*r, &refs, OverlayConfig::default()))
            .collect();
        // Pick a name owned by node 2 and send it from node 0; with only
        // three nodes the message may go direct, so also verify the upcall
        // path explicitly by delivering a Routed message to a non-owner.
        let name = ObjectName::new("agg", "root", 1);
        let target = name.routing_id();
        let owner = refs
            .iter()
            .position(|r| overlays[r.addr.index()].router().is_responsible(target))
            .unwrap();
        let non_owner = (owner + 1) % 3;
        let routed: DhtMessage<String> = DhtMessage::Routed {
            target,
            name: name.clone(),
            value: "partial".into(),
            lifetime: 1_000_000,
            hops: 1,
            trace: None,
        };
        let effects = overlays[non_owner].on_message(NodeAddr(9), routed, 0);
        let evs = events(&effects);
        let token = match &evs[..] {
            [OverlayEvent::Upcall { token, object, .. }] => {
                assert_eq!(object.value, "partial");
                *token
            }
            other => panic!("expected an upcall, got {other:?}"),
        };
        // Dropping the message produces no further effects.
        let dropped = overlays[non_owner].resume_upcall(token, false, 1);
        assert!(dropped.is_empty());
        // Re-deliver and continue: the message is forwarded onward.
        let routed: DhtMessage<String> = DhtMessage::Routed {
            target,
            name,
            value: "partial".into(),
            lifetime: 1_000_000,
            hops: 1,
            trace: None,
        };
        let effects = overlays[non_owner].on_message(NodeAddr(9), routed, 2);
        let token = match &events(&effects)[..] {
            [OverlayEvent::Upcall { token, .. }] => *token,
            other => panic!("expected an upcall, got {other:?}"),
        };
        let forwarded = overlays[non_owner].resume_upcall(token, true, 3);
        assert_eq!(sends(&forwarded).len(), 1);
    }

    #[test]
    fn tree_join_recorded_and_broadcast_reaches_children() {
        let (mut a, mut b, refs) = two_node_ring();
        let root_owner_is_a = a.is_tree_root();
        let (root, child, root_addr, child_addr) = if root_owner_is_a {
            (&mut a, &mut b, refs[0].addr, refs[1].addr)
        } else {
            (&mut b, &mut a, refs[1].addr, refs[0].addr)
        };
        // Child joins the tree: with two nodes, its parent is the root.
        let join = child.join_tree(0);
        let msgs = sends(&join);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, root_addr);
        root.on_message(child_addr, msgs[0].1.clone(), 0);
        assert_eq!(root.tree_children(), vec![child_addr]);

        // Broadcasting from the root delivers locally and to the child.
        let effects = root.broadcast("query-plan".to_string(), 1);
        let evs = events(&effects);
        assert!(
            matches!(&evs[..], [OverlayEvent::Broadcast { payload }] if payload == "query-plan")
        );
        let down = sends(&effects);
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].0, child_addr);
        let child_effects = child.on_message(root_addr, down[0].1.clone(), 2);
        assert!(matches!(
            events(&child_effects).as_slice(),
            [OverlayEvent::Broadcast { .. }]
        ));
    }

    #[test]
    fn timers_rearm_themselves() {
        let (mut a, _b, _) = two_node_ring();
        for timer in [
            OverlayTimer::Stabilize,
            OverlayTimer::FixFingers,
            OverlayTimer::Expire,
            OverlayTimer::TreeRefresh,
        ] {
            let effects = a.on_timer(timer, 1_000);
            assert!(
                effects
                    .iter()
                    .any(|e| matches!(e, OverlayEffect::SetTimer { timer: t, .. } if *t == timer)),
                "{timer:?} must reschedule itself"
            );
        }
    }

    #[test]
    fn expire_timer_sweeps_soft_state() {
        let (mut a, _b, _) = two_node_ring();
        let mut key = String::new();
        for i in 0..10_000 {
            let candidate = format!("k{i}");
            if a.router().is_responsible(routing_id("t", &candidate)) {
                key = candidate;
                break;
            }
        }
        a.put(ObjectName::new("t", key.clone(), 1), "v".into(), 1_000, 0);
        assert_eq!(a.objects().len(), 1);
        a.on_timer(OverlayTimer::Expire, 10_000);
        assert_eq!(a.objects().len(), 0, "expired object must be swept");
    }
}
