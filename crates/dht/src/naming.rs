//! Object naming (§3.2.1 of the paper).
//!
//! Every object stored in the DHT is named by three parts:
//!
//! * a **namespace** — used by the query processor for table names and names
//!   of partial result sets,
//! * a **partitioning key** — generated from one or more relational
//!   attributes (the hashing attributes), which together with the namespace
//!   determines the object's *routing identifier*, and
//! * a **suffix** — a random "uniquifier" that distinguishes objects sharing
//!   the same routing identifier.

use crate::id::{routing_id, Id};
use pier_runtime::WireSize;

/// The partitioning-key component of an object name.
///
/// Keys are canonical strings derived from attribute values; deriving them
/// from strings keeps the DHT independent of the query processor's value
/// representation (the DHT never interprets keys).
pub type PartitionKey = String;

/// A fully qualified object name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName {
    /// Table name or partial-result-set name.
    pub namespace: String,
    /// Canonical string form of the hashing attribute(s).
    pub key: PartitionKey,
    /// Random uniquifier distinguishing objects with equal (namespace, key).
    pub suffix: u64,
}

impl ObjectName {
    /// Construct a name.
    pub fn new(namespace: impl Into<String>, key: impl Into<String>, suffix: u64) -> Self {
        ObjectName {
            namespace: namespace.into(),
            key: key.into(),
            suffix,
        }
    }

    /// The routing identifier: where on the ring this object lives.
    pub fn routing_id(&self) -> Id {
        routing_id(&self.namespace, &self.key)
    }

    /// The (namespace, key) pair without the suffix — the granularity at
    /// which `get` retrieves objects.
    pub fn group(&self) -> (String, PartitionKey) {
        (self.namespace.clone(), self.key.clone())
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}#{:x}", self.namespace, self.key, self.suffix)
    }
}

impl WireSize for ObjectName {
    fn wire_size(&self) -> usize {
        self.namespace.wire_size() + self.key.wire_size() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_id_ignores_suffix() {
        let a = ObjectName::new("files", "key=rock", 1);
        let b = ObjectName::new("files", "key=rock", 999);
        assert_eq!(a.routing_id(), b.routing_id());
        assert_ne!(a, b);
    }

    #[test]
    fn routing_id_depends_on_namespace_and_key() {
        let a = ObjectName::new("files", "rock", 0);
        let b = ObjectName::new("files", "jazz", 0);
        let c = ObjectName::new("events", "rock", 0);
        assert_ne!(a.routing_id(), b.routing_id());
        assert_ne!(a.routing_id(), c.routing_id());
    }

    #[test]
    fn display_and_group() {
        let n = ObjectName::new("t", "k", 0x2a);
        assert_eq!(n.to_string(), "t/k#2a");
        assert_eq!(n.group(), ("t".to_string(), "k".to_string()));
        assert!(n.wire_size() > 8);
    }
}
