//! Identifiers in the overlay's circular identifier space.
//!
//! Every node and every object is assigned an identifier in an abstract
//! identifier space (§3.2 of the paper); the DHT maintains the dynamic
//! mapping from identifiers to live nodes.  We use a 64-bit ring: large
//! enough that random collisions are negligible at simulation scale, small
//! enough that ring arithmetic is a couple of machine instructions.

use pier_runtime::WireSize;

/// Number of bits in the identifier space.
pub const ID_BITS: u32 = 64;

/// A point on the identifier ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Id(pub u64);

impl Id {
    /// The identifier `2^k` positions clockwise from `self` (used to pick
    /// finger-table targets).
    pub fn finger_target(self, k: u32) -> Id {
        debug_assert!(k < ID_BITS);
        Id(self.0.wrapping_add(1u64 << k))
    }

    /// Clockwise distance from `self` to `other` around the ring.
    pub fn distance_to(self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// True when `self` lies in the half-open clockwise interval
    /// `(from, to]`.  This is the "is `self` owned by the successor `to` of
    /// `from`" test used throughout Chord-style routing.  When `from == to`
    /// the interval covers the whole ring.
    pub fn in_interval(self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        // Walk clockwise from `from`: self is inside iff its clockwise
        // distance from `from` is no greater than `to`'s.
        let d_self = from.distance_to(self);
        let d_to = from.distance_to(to);
        d_self != 0 && d_self <= d_to
    }

    /// True when `self` lies strictly between `from` and `to` clockwise,
    /// i.e. in the open interval `(from, to)`.
    pub fn strictly_between(self, from: Id, to: Id) -> bool {
        self.in_interval(from, to) && self != to
    }
}

impl std::fmt::Display for Id {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl WireSize for Id {
    fn wire_size(&self) -> usize {
        8
    }
}

/// FNV-1a hash of a byte string, used to place names on the ring.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche so short or similar inputs still spread over the ring.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a string onto the identifier ring.
pub fn hash_str(s: &str) -> Id {
    Id(hash_bytes(s.as_bytes()))
}

/// Hash a (namespace, partitioning key) pair onto the ring.  This is the
/// "routing identifier" computation of §3.2.1: the namespace and the
/// partitioning key jointly determine where an object lives; the suffix
/// does not participate.
pub fn routing_id(namespace: &str, key: &str) -> Id {
    let ns = hash_bytes(namespace.as_bytes());
    let k = hash_bytes(key.as_bytes());
    // Mix the two 64-bit hashes.
    let mut z = ns ^ k.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Id(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership_without_wraparound() {
        let a = Id(10);
        let b = Id(20);
        assert!(Id(15).in_interval(a, b));
        assert!(Id(20).in_interval(a, b), "interval is closed on the right");
        assert!(!Id(10).in_interval(a, b), "interval is open on the left");
        assert!(!Id(25).in_interval(a, b));
        assert!(!Id(5).in_interval(a, b));
    }

    #[test]
    fn interval_membership_with_wraparound() {
        let a = Id(u64::MAX - 10);
        let b = Id(10);
        assert!(Id(u64::MAX).in_interval(a, b));
        assert!(Id(0).in_interval(a, b));
        assert!(Id(5).in_interval(a, b));
        assert!(!Id(50).in_interval(a, b));
        assert!(!Id(u64::MAX - 20).in_interval(a, b));
    }

    #[test]
    fn full_ring_interval() {
        let a = Id(42);
        assert!(Id(0).in_interval(a, a));
        assert!(Id(u64::MAX).in_interval(a, a));
    }

    #[test]
    fn strictly_between_excludes_endpoints() {
        assert!(Id(15).strictly_between(Id(10), Id(20)));
        assert!(!Id(20).strictly_between(Id(10), Id(20)));
        assert!(!Id(10).strictly_between(Id(10), Id(20)));
    }

    #[test]
    fn distance_is_clockwise() {
        assert_eq!(Id(10).distance_to(Id(20)), 10);
        assert_eq!(Id(20).distance_to(Id(10)), u64::MAX - 9);
        assert_eq!(Id(7).distance_to(Id(7)), 0);
    }

    #[test]
    fn finger_targets_are_powers_of_two_away() {
        let n = Id(100);
        assert_eq!(n.finger_target(0), Id(101));
        assert_eq!(n.finger_target(3), Id(108));
        // Wraps around the ring.
        assert_eq!(Id(u64::MAX).finger_target(0), Id(0));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        assert_eq!(hash_str("abc"), hash_str("abc"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
        assert_ne!(routing_id("t1", "k"), routing_id("t2", "k"));
        assert_ne!(routing_id("t1", "k1"), routing_id("t1", "k2"));
        assert_eq!(routing_id("t1", "k1"), routing_id("t1", "k1"));
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        // Hash 10k sequential keys and check bucket occupancy; a badly
        // mixing hash would clump them.
        let mut buckets = [0u32; 16];
        for i in 0..10_000 {
            let id = routing_id("table", &format!("key-{i}"));
            buckets[(id.0 >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 300, "bucket occupancy {b} too low — poor mixing");
        }
    }
}
