//! The soft-state object manager (§3.2.3 of the paper).
//!
//! The overlay does not promise persistent storage.  Each object is stored
//! for its *soft-state lifetime* and then discarded; keeping an object alive
//! is the responsibility of its publisher, which must periodically `renew`
//! it.  The object manager enforces a maximum lifetime so that objects whose
//! publisher has failed are eventually garbage collected.
//!
//! The object manager is a purely local component: it never talks to the
//! network.  The [`wrapper`](crate::wrapper) invokes it when `put`, `get`,
//! `renew` or `send` messages arrive for identifiers this node is
//! responsible for.

use crate::naming::{ObjectName, PartitionKey};
use pier_runtime::{SimTime, WireSize};
use std::collections::BTreeMap;

/// An object held by the object manager, together with its expiry time.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject<V> {
    /// The object's full name (namespace, partitioning key, suffix).
    pub name: ObjectName,
    /// The payload.
    pub value: V,
    /// Virtual time at which the object expires and is discarded.
    pub expires_at: SimTime,
}

impl<V: WireSize> WireSize for StoredObject<V> {
    fn wire_size(&self) -> usize {
        self.name.wire_size() + self.value.wire_size() + 8
    }
}

/// Per-node soft-state store.
#[derive(Debug, Clone)]
pub struct ObjectManager<V> {
    /// (namespace, key) -> suffix -> object.  Ordered maps: scan and get
    /// results feed pipelines and outgoing messages, so their order must
    /// not depend on hash seeding (equal-seed runs replay byte-for-byte).
    groups: BTreeMap<(String, PartitionKey), BTreeMap<u64, StoredObject<V>>>,
    /// Upper bound the store imposes on any requested lifetime.
    max_lifetime: u64,
    /// Number of objects ever dropped by expiry (for diagnostics/tests).
    expired_count: u64,
}

impl<V: Clone> ObjectManager<V> {
    /// Create a store that clamps requested lifetimes to `max_lifetime`
    /// microseconds.
    pub fn new(max_lifetime: u64) -> Self {
        ObjectManager {
            groups: BTreeMap::new(),
            max_lifetime,
            expired_count: 0,
        }
    }

    /// The maximum lifetime this store will grant.
    pub fn max_lifetime(&self) -> u64 {
        self.max_lifetime
    }

    /// Total number of live objects (may include objects whose expiry time
    /// has passed but that have not been swept yet).
    pub fn len(&self) -> usize {
        self.groups
            .values()
            .map(std::collections::BTreeMap::len)
            .sum()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects removed by [`expire`](Self::expire) so far.
    pub fn expired_count(&self) -> u64 {
        self.expired_count
    }

    /// Insert (or overwrite) an object with the requested lifetime, clamped
    /// to the store's maximum.  Returns the granted expiry time.
    pub fn put(&mut self, name: ObjectName, value: V, lifetime: u64, now: SimTime) -> SimTime {
        let granted = lifetime.min(self.max_lifetime);
        let expires_at = now + granted;
        let group = self.groups.entry(name.group()).or_default();
        group.insert(
            name.suffix,
            StoredObject {
                name,
                value,
                expires_at,
            },
        );
        expires_at
    }

    /// Extend the lifetime of an existing object (§3.2.4: `renew` succeeds
    /// only if the object is already stored here; otherwise the publisher
    /// must perform a fresh `put`).  Returns `true` on success.
    pub fn renew(&mut self, name: &ObjectName, lifetime: u64, now: SimTime) -> bool {
        let granted = lifetime.min(self.max_lifetime);
        if let Some(group) = self.groups.get_mut(&name.group()) {
            if let Some(obj) = group.get_mut(&name.suffix) {
                if obj.expires_at >= now {
                    obj.expires_at = now + granted;
                    return true;
                }
            }
        }
        false
    }

    /// All live objects with the given namespace and partitioning key
    /// (every suffix), i.e. the result set of a `get`.
    pub fn get(&self, namespace: &str, key: &str, now: SimTime) -> Vec<StoredObject<V>> {
        self.groups
            .get(&(namespace.to_string(), key.to_string()))
            .map(|g| {
                g.values()
                    .filter(|o| o.expires_at >= now)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All live objects in a namespace stored at this node — the local part
    /// of the query processor's `localScan` access method.
    pub fn scan_namespace(&self, namespace: &str, now: SimTime) -> Vec<StoredObject<V>> {
        self.groups
            .iter()
            .filter(|((ns, _), _)| ns == namespace)
            .flat_map(|(_, g)| g.values())
            .filter(|o| o.expires_at >= now)
            .cloned()
            .collect()
    }

    /// All live objects stored at this node, regardless of namespace.
    pub fn scan_all(&self, now: SimTime) -> Vec<StoredObject<V>> {
        self.groups
            .values()
            .flat_map(|g| g.values())
            .filter(|o| o.expires_at >= now)
            .cloned()
            .collect()
    }

    /// Namespaces with at least one live object.
    pub fn namespaces(&self, now: SimTime) -> Vec<String> {
        let mut out: Vec<String> = self
            .groups
            .iter()
            .filter(|(_, g)| g.values().any(|o| o.expires_at >= now))
            .map(|((ns, _), _)| ns.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Drop every object whose lifetime has elapsed; returns the number of
    /// objects discarded.  The wrapper calls this on a periodic timer — the
    /// "natural garbage collector" of §3.2.3.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        self.groups.retain(|_, group| {
            group.retain(|_, obj| {
                let live = obj.expires_at >= now;
                if !live {
                    removed += 1;
                }
                live
            });
            !group.is_empty()
        });
        self.expired_count += removed as u64;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(ns: &str, key: &str, suffix: u64) -> ObjectName {
        ObjectName::new(ns, key, suffix)
    }

    #[test]
    fn put_then_get_returns_all_suffixes() {
        let mut om: ObjectManager<String> = ObjectManager::new(1_000_000);
        om.put(name("files", "rock", 1), "a".into(), 500_000, 0);
        om.put(name("files", "rock", 2), "b".into(), 500_000, 0);
        om.put(name("files", "jazz", 3), "c".into(), 500_000, 0);
        let got = om.get("files", "rock", 100);
        assert_eq!(got.len(), 2);
        assert_eq!(om.get("files", "jazz", 100).len(), 1);
        assert!(om.get("files", "blues", 100).is_empty());
        assert_eq!(om.len(), 3);
    }

    #[test]
    fn lifetime_is_clamped_to_maximum() {
        let mut om: ObjectManager<u32> = ObjectManager::new(1_000);
        let exp = om.put(name("t", "k", 1), 7, 10_000_000, 100);
        assert_eq!(exp, 1_100, "granted lifetime must be clamped to max");
    }

    #[test]
    fn expired_objects_are_invisible_then_swept() {
        let mut om: ObjectManager<u32> = ObjectManager::new(u64::MAX);
        om.put(name("t", "k", 1), 1, 1_000, 0);
        om.put(name("t", "k", 2), 2, 10_000, 0);
        // At t=5000 object 1 is dead but not yet swept.
        assert_eq!(om.get("t", "k", 5_000).len(), 1);
        assert_eq!(om.len(), 2);
        assert_eq!(om.expire(5_000), 1);
        assert_eq!(om.len(), 1);
        assert_eq!(om.expired_count(), 1);
    }

    #[test]
    fn renew_extends_only_existing_live_objects() {
        let mut om: ObjectManager<u32> = ObjectManager::new(u64::MAX);
        let n = name("t", "k", 1);
        om.put(n.clone(), 5, 1_000, 0);
        assert!(om.renew(&n, 2_000, 500));
        // Now expires at 2_500.
        assert_eq!(om.get("t", "k", 2_400).len(), 1);
        // Renewing an expired object fails (§3.2.4): must re-put.
        assert!(!om.renew(&n, 1_000, 3_000));
        // Renewing an unknown object fails.
        assert!(!om.renew(&name("t", "k", 99), 1_000, 10));
        assert!(!om.renew(&name("t", "other", 1), 1_000, 10));
    }

    #[test]
    fn put_overwrites_same_suffix() {
        let mut om: ObjectManager<&'static str> = ObjectManager::new(u64::MAX);
        om.put(name("t", "k", 7), "old", 1_000, 0);
        om.put(name("t", "k", 7), "new", 1_000, 10);
        let got = om.get("t", "k", 20);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, "new");
    }

    #[test]
    fn scan_namespace_and_namespaces() {
        let mut om: ObjectManager<u32> = ObjectManager::new(u64::MAX);
        om.put(name("a", "x", 1), 1, 1_000, 0);
        om.put(name("a", "y", 2), 2, 1_000, 0);
        om.put(name("b", "z", 3), 3, 1_000, 0);
        assert_eq!(om.scan_namespace("a", 10).len(), 2);
        assert_eq!(om.scan_namespace("b", 10).len(), 1);
        assert_eq!(om.scan_all(10).len(), 3);
        assert_eq!(om.namespaces(10), vec!["a".to_string(), "b".to_string()]);
        // After `a` expires only `b` remains visible.
        assert_eq!(om.namespaces(2_000), Vec::<String>::new());
    }

    #[test]
    fn publisher_failure_leads_to_garbage_collection() {
        // Model: publisher puts with a short lifetime and then "fails" (never
        // renews); the object must disappear on its own.
        let mut om: ObjectManager<u32> = ObjectManager::new(u64::MAX);
        om.put(name("t", "k", 1), 1, 30_000_000, 0);
        for t in (0..120_000_000).step_by(10_000_000) {
            om.expire(t);
        }
        assert!(om.is_empty());
    }
}
