//! # pier-dht — the overlay network (distributed hash table)
//!
//! PIER's communication substrate is a DHT-based overlay network (§3.2 of
//! the paper) with three core components:
//!
//! * **naming** ([`naming`]) — every object is named by a namespace, a
//!   partitioning key and a random suffix; the namespace and key determine
//!   the object's routing identifier ([`id`]),
//! * **routing** ([`router`]) — a Chord-style multi-hop router with
//!   successor lists, finger tables, stabilization and churn handling, and
//! * **state** ([`object_manager`]) — a purely local soft-state store with
//!   per-object lifetimes, renewal and garbage collection.
//!
//! The [`wrapper`] ties the three together behind the Table-2 API (`get`,
//! `put`, `send`, `renew`, `localScan`, `newData`, `upcall`) and also
//! provides the query-dissemination **distribution tree** built over
//! routed messages and upcalls.  [`node::DhtNode`] packages an overlay as a
//! runnable [`pier_runtime::Program`] so the DHT can be exercised on its own.
//!
//! The query processor (`pier-core`) reuses this overlay aggressively — for
//! query dissemination, hash indexes, range-index substrate, partitioned
//! parallelism, operator state and hierarchical operators (§3.3.6).
//!
//! ## Invariants
//!
//! * **Soft state only** (§3.2.3): every stored object carries a lifetime
//!   capped by the node's maximum; expiry is garbage collection, renewal
//!   ([`Overlay::renew`]) fails once an object has lapsed, and no deletion
//!   protocol exists — publishers that want persistence must re-put or
//!   renew before expiry.
//! * **Names route**: an object's routing identifier is derived from
//!   (namespace, key) alone ([`routing_id`]); the random suffix only
//!   distinguishes objects sharing a partition, so all suffixes of a
//!   (namespace, key) land on — and are fetched from — one responsible
//!   node (modulo churn-induced handoff windows).
//! * **Batching never changes semantics**: [`DhtMessage::PutBatch`] /
//!   [`Overlay::put_batch`] coalesce message *framing* only — every entry
//!   keeps its own name, payload and lifetime, and the receiver stores
//!   entries exactly as it would separate `PutRequest`s.  The framing is
//!   dictionary-encoded (each distinct namespace charged once per batch),
//!   mirroring the columnar `TupleBatch` payload above it.
//! * **Upcalls may consume**: a `send` travelling hop-by-hop offers every
//!   intermediate node an upcall (§3.2.4); the node either forwards the
//!   (possibly transformed) object or absorbs it — the mechanism
//!   hierarchical aggregation and window-partial combining are built on.

pub mod id;
pub mod messages;
pub mod naming;
pub mod node;
pub mod object_manager;
pub mod router;
pub mod wrapper;

pub use id::{hash_str, routing_id, Id};
pub use messages::DhtMessage;
pub use naming::{ObjectName, PartitionKey};
pub use node::{make_ring_refs, DhtNode};
pub use object_manager::{ObjectManager, StoredObject};
pub use router::{NodeRef, Router, RouterConfig};
pub use wrapper::{
    Overlay, OverlayConfig, OverlayEffect, OverlayEvent, OverlayTimer, TREE_ROOT_NAME,
};
