//! # pier-dht — the overlay network (distributed hash table)
//!
//! PIER's communication substrate is a DHT-based overlay network (§3.2 of
//! the paper) with three core components:
//!
//! * **naming** ([`naming`]) — every object is named by a namespace, a
//!   partitioning key and a random suffix; the namespace and key determine
//!   the object's routing identifier ([`id`]),
//! * **routing** ([`router`]) — a Chord-style multi-hop router with
//!   successor lists, finger tables, stabilization and churn handling, and
//! * **state** ([`object_manager`]) — a purely local soft-state store with
//!   per-object lifetimes, renewal and garbage collection.
//!
//! The [`wrapper`] ties the three together behind the Table-2 API (`get`,
//! `put`, `send`, `renew`, `localScan`, `newData`, `upcall`) and also
//! provides the query-dissemination **distribution tree** built over
//! routed messages and upcalls.  [`node::DhtNode`] packages an overlay as a
//! runnable [`pier_runtime::Program`] so the DHT can be exercised on its own.
//!
//! The query processor (`pier-core`) reuses this overlay aggressively — for
//! query dissemination, hash indexes, range-index substrate, partitioned
//! parallelism, operator state and hierarchical operators (§3.3.6).

pub mod id;
pub mod messages;
pub mod naming;
pub mod node;
pub mod object_manager;
pub mod router;
pub mod wrapper;

pub use id::{hash_str, routing_id, Id};
pub use messages::DhtMessage;
pub use naming::{ObjectName, PartitionKey};
pub use node::{make_ring_refs, DhtNode};
pub use object_manager::{ObjectManager, StoredObject};
pub use router::{NodeRef, Router, RouterConfig};
pub use wrapper::{
    Overlay, OverlayConfig, OverlayEffect, OverlayEvent, OverlayTimer, TREE_ROOT_NAME,
};
