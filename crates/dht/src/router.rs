//! The overlay router (§3.2.2, §3.2.4 of the paper).
//!
//! PIER is agnostic to the specific DHT routing algorithm (the original
//! system used CAN, then Bamboo); all it requires is key-based multi-hop
//! routing with the ability to intercept messages at intermediate hops.  We
//! implement a Chord-style ring: each node keeps a predecessor, a successor
//! list (for resilience to churn) and a finger table (for `O(log N)` hops),
//! and periodically runs *stabilization* and *fix-fingers* maintenance.
//!
//! The router is a pure state machine.  It consumes routing messages and
//! timer ticks and emits [`RouterEffect`]s; the [`wrapper`](crate::wrapper)
//! is responsible for actually placing messages on the network and for
//! scheduling the maintenance timers.

use crate::id::{Id, ID_BITS};
use pier_runtime::{NodeAddr, SimTime, WireSize};
use std::collections::HashMap;

/// A reference to a node: its position on the ring plus its network address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// The node's identifier on the ring.
    pub id: Id,
    /// The node's network address.
    pub addr: NodeAddr,
}

impl WireSize for NodeRef {
    fn wire_size(&self) -> usize {
        self.id.wire_size() + self.addr.wire_size()
    }
}

/// Routing-protocol messages exchanged between routers.
#[derive(Debug, Clone)]
pub enum RouterMessage {
    /// Recursive lookup: find the node responsible for `target` and reply
    /// directly to `reply_to`.
    FindSuccessor {
        /// Identifier being located.
        target: Id,
        /// Node that should receive the reply.
        reply_to: NodeRef,
        /// Correlation token chosen by the requester.
        request_id: u64,
        /// Hops taken so far (diagnostics / scalability experiments).
        hops: u32,
    },
    /// Reply to [`RouterMessage::FindSuccessor`].
    FindSuccessorReply {
        /// Correlation token from the request.
        request_id: u64,
        /// The node responsible for the requested identifier.
        owner: NodeRef,
        /// Hops the request travelled before reaching the owner.
        hops: u32,
    },
    /// Stabilization probe: "who is your predecessor, and what is your
    /// successor list?"
    GetNeighbors {
        /// The asking node.
        from: NodeRef,
    },
    /// Reply to [`RouterMessage::GetNeighbors`].
    Neighbors {
        /// The replying node.
        from: NodeRef,
        /// The replying node's current predecessor, if known.
        predecessor: Option<NodeRef>,
        /// The replying node's successor list.
        successors: Vec<NodeRef>,
    },
    /// Chord `notify`: the sender believes it may be our predecessor.
    Notify {
        /// The candidate predecessor.
        from: NodeRef,
    },
}

impl WireSize for RouterMessage {
    fn wire_size(&self) -> usize {
        match self {
            RouterMessage::FindSuccessor { .. } => 8 + 14 + 8 + 4,
            RouterMessage::FindSuccessorReply { .. } => 8 + 14 + 4,
            RouterMessage::GetNeighbors { .. } => 14,
            RouterMessage::Neighbors {
                predecessor,
                successors,
                ..
            } => 14 + predecessor.wire_size() + successors.wire_size(),
            RouterMessage::Notify { .. } => 14,
        }
    }
}

/// Effects the router asks its host to perform.
#[derive(Debug, Clone)]
pub enum RouterEffect {
    /// Transmit a routing message.
    Send {
        /// Destination address.
        to: NodeAddr,
        /// The message.
        msg: RouterMessage,
    },
    /// A lookup issued through [`Router::lookup`] completed.
    LookupDone {
        /// The requester's correlation token.
        request_id: u64,
        /// The node responsible for the identifier.
        owner: NodeRef,
        /// Number of overlay hops the lookup took.
        hops: u32,
    },
}

/// Router tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Length of the successor list kept for resilience.
    pub successor_list_len: usize,
    /// A neighbor is presumed failed if it has not been heard from for this
    /// long (microseconds).
    pub liveness_timeout: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            successor_list_len: 4,
            liveness_timeout: 30_000_000,
        }
    }
}

/// Internal request ids (finger-table refreshes) use the top bit so they can
/// never collide with ids issued by the wrapper.
const INTERNAL_ID_BIT: u64 = 1 << 63;

/// Chord-style ring router.
#[derive(Debug, Clone)]
pub struct Router {
    me: NodeRef,
    config: RouterConfig,
    predecessor: Option<NodeRef>,
    successors: Vec<NodeRef>,
    fingers: Vec<Option<NodeRef>>,
    last_heard: HashMap<NodeAddr, SimTime>,
    /// Time of the first unanswered probe per peer; used for fail-stop
    /// detection (a peer is presumed dead once a probe has gone unanswered
    /// for the liveness timeout).
    unanswered_probe: HashMap<NodeAddr, SimTime>,
    next_finger_to_fix: u32,
    probe_rotation: usize,
    bootstrap_addr: Option<NodeAddr>,
    stabilize_rounds: u64,
    internal_seq: u64,
    pending_internal: HashMap<u64, u32>,
    /// Bumped whenever the neighbor view (predecessor / successor list)
    /// changes — node adopted, evicted, or presumed dead.  Owner resolutions
    /// derived from routing state (e.g. the wrapper's owner cache feeding
    /// batched puts) are only valid within one epoch; callers compare epochs
    /// to invalidate on membership change.
    membership_epoch: u64,
}

impl Router {
    /// Create a router for a node that initially knows no one (it is the
    /// first node of a fresh ring until it joins another).
    pub fn new(me: NodeRef, config: RouterConfig) -> Self {
        Router {
            me,
            config,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; ID_BITS as usize],
            last_heard: HashMap::new(),
            unanswered_probe: HashMap::new(),
            next_finger_to_fix: 0,
            probe_rotation: 0,
            bootstrap_addr: None,
            stabilize_rounds: 0,
            internal_seq: 0,
            pending_internal: HashMap::new(),
            membership_epoch: 0,
        }
    }

    /// Create a router whose neighbor state is computed offline from full
    /// knowledge of the ring.  Used by experiments that want a converged
    /// overlay without simulating the join protocol, and by unit tests.
    pub fn with_static_ring(me: NodeRef, all: &[NodeRef], config: RouterConfig) -> Self {
        let mut router = Router::new(me, config);
        if all.len() <= 1 {
            return router;
        }
        let mut ring: Vec<NodeRef> = all.to_vec();
        ring.sort_by_key(|n| n.id.0);
        ring.dedup_by_key(|n| n.id.0);
        let pos = ring
            .iter()
            .position(|n| n.id == me.id)
            .expect("own node must be part of the ring");
        let n = ring.len();
        router.predecessor = Some(ring[(pos + n - 1) % n]);
        router.successors = (1..=config.successor_list_len.min(n - 1))
            .map(|i| ring[(pos + i) % n])
            .collect();
        for k in 0..ID_BITS {
            let target = me.id.finger_target(k);
            let owner = ring
                .iter()
                .copied()
                .min_by_key(|cand| target.distance_to(cand.id))
                .expect("ring is non-empty");
            router.fingers[k as usize] = Some(owner);
        }
        router
    }

    /// This node's identity.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// The current membership epoch: any change to the neighbor view bumps
    /// it, invalidating owner resolutions cached outside the router.
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeRef> {
        self.predecessor
    }

    /// Current immediate successor, if any.
    pub fn successor(&self) -> Option<NodeRef> {
        self.successors.first().copied()
    }

    /// The full successor list.
    pub fn successor_list(&self) -> &[NodeRef] {
        &self.successors
    }

    /// All distinct nodes this router currently knows about (diagnostics).
    pub fn known_peers(&self) -> Vec<NodeRef> {
        let mut peers: Vec<NodeRef> = self
            .successors
            .iter()
            .copied()
            .chain(self.predecessor)
            .chain(self.fingers.iter().flatten().copied())
            .filter(|n| n.addr != self.me.addr)
            .collect();
        peers.sort_by_key(|n| n.id.0);
        peers.dedup_by_key(|n| n.id.0);
        peers
    }

    /// True when the router currently presumes `addr` to have failed: a
    /// probe to it has gone unanswered for longer than the liveness timeout.
    pub fn presumed_dead(&self, addr: NodeAddr, now: SimTime) -> bool {
        self.unanswered_probe
            .get(&addr)
            .is_some_and(|&t| now.saturating_sub(t) >= self.config.liveness_timeout)
    }

    /// True when this node is responsible for `id`: the identifier falls in
    /// the arc `(predecessor, me]`, or the node knows of no other node.
    pub fn is_responsible(&self, id: Id) -> bool {
        match self.predecessor {
            None => self.successors.is_empty() || id.in_interval(self.me.id, self.me.id),
            Some(pred) => id.in_interval(pred.id, self.me.id),
        }
    }

    /// The owner of `id` when it is determinable from purely local routing
    /// state — this node itself, or a successor-list entry whose arc
    /// authoritatively covers `id` (successors are consecutive on the ring,
    /// so the first entry past `id` owns it).  `None` means a routed lookup
    /// would be required; callers such as the batched put use this to group
    /// transfers per destination without paying a lookup round.
    pub fn known_owner(&self, id: Id, now: SimTime) -> Option<NodeRef> {
        if self.is_responsible(id) {
            return Some(self.me);
        }
        let mut prev = self.me.id;
        for s in &self.successors {
            if self.presumed_dead(s.addr, now) {
                return None;
            }
            if id.in_interval(prev, s.id) {
                return Some(*s);
            }
            prev = s.id;
        }
        None
    }

    /// The next hop towards the node responsible for `id`, or `None` when
    /// this node is itself responsible (or knows no one else).  Peers that
    /// are presumed dead at time `now` are skipped.
    pub fn next_hop(&self, id: Id, now: SimTime) -> Option<NodeRef> {
        if self.is_responsible(id) {
            return None;
        }
        let successor = self.live_successor(now)?;
        if id.in_interval(self.me.id, successor.id) {
            return Some(successor);
        }
        Some(self.closest_preceding(id, now).unwrap_or(successor))
    }

    /// The first successor-list entry not presumed dead.
    fn live_successor(&self, now: SimTime) -> Option<NodeRef> {
        self.successors
            .iter()
            .find(|s| !self.presumed_dead(s.addr, now))
            .copied()
            .or_else(|| self.successor())
    }

    fn closest_preceding(&self, id: Id, now: SimTime) -> Option<NodeRef> {
        let mut best: Option<NodeRef> = None;
        for cand in self.fingers.iter().flatten().chain(self.successors.iter()) {
            if cand.addr == self.me.addr || self.presumed_dead(cand.addr, now) {
                continue;
            }
            if cand.id.strictly_between(self.me.id, id) {
                best = match best {
                    None => Some(*cand),
                    Some(b) => {
                        // Prefer the candidate closest to (but before) the target.
                        if b.id.distance_to(id) > cand.id.distance_to(id) {
                            Some(*cand)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        best
    }

    /// Join an existing ring through `bootstrap`, or become a singleton ring
    /// if no bootstrap node is given.
    pub fn bootstrap(&mut self, bootstrap: Option<NodeAddr>) -> Vec<RouterEffect> {
        self.bootstrap_addr = bootstrap;
        match bootstrap {
            None => Vec::new(),
            Some(addr) => {
                // Ask the bootstrap node to find our successor.
                let request_id = self.next_internal_id(u32::MAX);
                vec![RouterEffect::Send {
                    to: addr,
                    msg: RouterMessage::FindSuccessor {
                        target: self.me.id,
                        reply_to: self.me,
                        request_id,
                        hops: 0,
                    },
                }]
            }
        }
    }

    fn next_internal_id(&mut self, finger: u32) -> u64 {
        self.internal_seq += 1;
        let id = INTERNAL_ID_BIT | self.internal_seq;
        self.pending_internal.insert(id, finger);
        id
    }

    /// Issue a lookup for the owner of `target`; the result is reported with
    /// a [`RouterEffect::LookupDone`] carrying `request_id`.  `request_id`
    /// must not have its top bit set (that range is reserved for internal
    /// lookups).
    pub fn lookup(&mut self, target: Id, request_id: u64, now: SimTime) -> Vec<RouterEffect> {
        debug_assert_eq!(request_id & INTERNAL_ID_BIT, 0);
        self.start_lookup(target, request_id, now)
    }

    fn start_lookup(&mut self, target: Id, request_id: u64, now: SimTime) -> Vec<RouterEffect> {
        if self.is_responsible(target) {
            return vec![RouterEffect::LookupDone {
                request_id,
                owner: self.me,
                hops: 0,
            }];
        }
        // If the target lies between us and our successor, the successor is
        // authoritatively the owner: no lookup message is needed.
        if let Some(successor) = self.live_successor(now) {
            if target.in_interval(self.me.id, successor.id) {
                return vec![RouterEffect::LookupDone {
                    request_id,
                    owner: successor,
                    hops: 0,
                }];
            }
        }
        match self.next_hop(target, now) {
            None => vec![RouterEffect::LookupDone {
                request_id,
                owner: self.me,
                hops: 0,
            }],
            Some(next) => vec![RouterEffect::Send {
                to: next.addr,
                msg: RouterMessage::FindSuccessor {
                    target,
                    reply_to: self.me,
                    request_id,
                    hops: 1,
                },
            }],
        }
    }

    /// Handle an incoming routing message.
    pub fn on_message(
        &mut self,
        from: NodeAddr,
        msg: RouterMessage,
        now: SimTime,
    ) -> Vec<RouterEffect> {
        self.last_heard.insert(from, now);
        self.unanswered_probe.remove(&from);
        match msg {
            RouterMessage::FindSuccessor {
                target,
                reply_to,
                request_id,
                hops,
            } => {
                self.consider(reply_to, now);
                if self.is_responsible(target) {
                    vec![RouterEffect::Send {
                        to: reply_to.addr,
                        msg: RouterMessage::FindSuccessorReply {
                            request_id,
                            owner: self.me,
                            hops,
                        },
                    }]
                } else if let Some(successor) = self.successor() {
                    if target.in_interval(self.me.id, successor.id) {
                        // Classic Chord: the successor owns the arc.
                        vec![RouterEffect::Send {
                            to: reply_to.addr,
                            msg: RouterMessage::FindSuccessorReply {
                                request_id,
                                owner: successor,
                                hops,
                            },
                        }]
                    } else {
                        let next = self.closest_preceding(target, now).unwrap_or(successor);
                        vec![RouterEffect::Send {
                            to: next.addr,
                            msg: RouterMessage::FindSuccessor {
                                target,
                                reply_to,
                                request_id,
                                hops: hops + 1,
                            },
                        }]
                    }
                } else {
                    // Singleton that somehow received a lookup: we own it.
                    vec![RouterEffect::Send {
                        to: reply_to.addr,
                        msg: RouterMessage::FindSuccessorReply {
                            request_id,
                            owner: self.me,
                            hops,
                        },
                    }]
                }
            }
            RouterMessage::FindSuccessorReply {
                request_id,
                owner,
                hops,
            } => {
                self.consider(owner, now);
                if request_id & INTERNAL_ID_BIT != 0 {
                    if let Some(finger) = self.pending_internal.remove(&request_id) {
                        if finger == u32::MAX {
                            // Join (or periodic re-join) reply: adopt the
                            // owner as our successor only if it is an
                            // improvement, i.e. we have no successor yet or
                            // the owner falls between us and the current one.
                            let improves = match self.successor() {
                                None => true,
                                Some(s) => owner.id.strictly_between(self.me.id, s.id),
                            };
                            if improves {
                                self.adopt_successor(owner);
                            }
                        } else if owner.addr != self.me.addr {
                            self.fingers[finger as usize] = Some(owner);
                        }
                    }
                    Vec::new()
                } else {
                    vec![RouterEffect::LookupDone {
                        request_id,
                        owner,
                        hops,
                    }]
                }
            }
            RouterMessage::GetNeighbors { from: asker } => {
                self.consider(asker, now);
                vec![RouterEffect::Send {
                    to: asker.addr,
                    msg: RouterMessage::Neighbors {
                        from: self.me,
                        predecessor: self.predecessor,
                        successors: self.successors.clone(),
                    },
                }]
            }
            RouterMessage::Neighbors {
                from: replier,
                predecessor,
                successors,
            } => {
                self.consider(replier, now);
                // Learn opportunistically about everyone mentioned in the
                // reply; this speeds up convergence of a freshly built ring.
                for s in &successors {
                    self.consider(*s, now);
                }
                // Chord stabilization step: if our successor's predecessor
                // sits between us and our successor, it becomes our successor.
                if let Some(p) = predecessor {
                    if p.addr != self.me.addr
                        && self
                            .successor()
                            .is_some_and(|s| p.id.strictly_between(self.me.id, s.id))
                    {
                        self.adopt_successor(p);
                    }
                }
                // Refresh the successor list from the successor's view.
                if self.successor().map(|s| s.addr) == Some(replier.addr) {
                    let mut list = vec![replier];
                    list.extend(successors.into_iter().filter(|n| n.addr != self.me.addr));
                    list.truncate(self.config.successor_list_len);
                    if list != self.successors {
                        self.successors = list;
                        self.membership_epoch += 1;
                    }
                }
                // Notify our successor that we might be its predecessor.
                match self.successor() {
                    Some(s) => vec![RouterEffect::Send {
                        to: s.addr,
                        msg: RouterMessage::Notify { from: self.me },
                    }],
                    None => Vec::new(),
                }
            }
            RouterMessage::Notify { from: candidate } => {
                self.consider(candidate, now);
                let adopt = match self.predecessor {
                    None => true,
                    Some(pred) => candidate.id.strictly_between(pred.id, self.me.id),
                };
                if adopt && candidate.addr != self.me.addr {
                    self.predecessor = Some(candidate);
                    self.membership_epoch += 1;
                }
                Vec::new()
            }
        }
    }

    /// Learn about a node opportunistically (any message that mentions it).
    fn consider(&mut self, node: NodeRef, now: SimTime) {
        if node.addr == self.me.addr {
            return;
        }
        self.last_heard.entry(node.addr).or_insert(now);
        match self.successor() {
            None => {
                self.successors.push(node);
                self.membership_epoch += 1;
            }
            Some(s) => {
                if node.id.strictly_between(self.me.id, s.id) {
                    self.adopt_successor(node);
                }
            }
        }
    }

    fn adopt_successor(&mut self, node: NodeRef) {
        if node.addr == self.me.addr {
            return;
        }
        self.successors.retain(|n| n.addr != node.addr);
        self.successors.insert(0, node);
        self.successors.truncate(self.config.successor_list_len);
        self.membership_epoch += 1;
    }

    /// Periodic stabilization: drop successors that look dead, probe the
    /// current successor (and one other known peer, in rotation) for its
    /// neighbor state, and notify the successor of us.
    pub fn on_stabilize(&mut self, now: SimTime) -> Vec<RouterEffect> {
        self.stabilize_rounds += 1;
        // Evict successors whose probes have gone unanswered.
        let dead: Vec<NodeAddr> = self
            .successors
            .iter()
            .filter(|s| self.presumed_dead(s.addr, now))
            .map(|s| s.addr)
            .collect();
        if !dead.is_empty() {
            self.successors.retain(|s| !dead.contains(&s.addr));
            // A departed node left the neighbor view: owner resolutions
            // cached outside the router must not keep grouping toward it.
            self.membership_epoch += 1;
        }
        // Evict failed finger entries so routing stops using them.
        for slot in &mut self.fingers {
            if let Some(f) = slot {
                if dead.contains(&f.addr) {
                    *slot = None;
                }
            }
        }
        // Evict a presumed-dead predecessor so responsibility can widen.
        if let Some(p) = self.predecessor {
            if self.presumed_dead(p.addr, now) {
                self.predecessor = None;
                self.membership_epoch += 1;
            }
        }
        let mut effects = Vec::new();
        let probe = |router: &mut Router, target: NodeRef, effects: &mut Vec<RouterEffect>| {
            router.unanswered_probe.entry(target.addr).or_insert(now);
            effects.push(RouterEffect::Send {
                to: target.addr,
                msg: RouterMessage::GetNeighbors { from: router.me },
            });
        };
        if let Some(s) = self.successor() {
            probe(self, s, &mut effects);
        }
        // Probe one additional known peer per round so that failures of
        // finger-table entries are eventually detected.
        let peers = self.known_peers();
        if !peers.is_empty() {
            self.probe_rotation = (self.probe_rotation + 1) % peers.len();
            let extra = peers[self.probe_rotation];
            if Some(extra.addr) != self.successor().map(|s| s.addr) {
                probe(self, extra, &mut effects);
            }
        }
        // Periodically re-run the join lookup through the bootstrap node.
        // This repairs "loopy" states in which the overlay has split into
        // disjoint cycles (possible when many nodes join a ring whose early
        // members have not stabilized yet): the re-join answer is adopted
        // only when it improves the successor pointer.
        if self.stabilize_rounds.is_multiple_of(3) {
            if let Some(addr) = self.bootstrap_addr {
                if addr != self.me.addr {
                    let request_id = self.next_internal_id(u32::MAX);
                    effects.push(RouterEffect::Send {
                        to: addr,
                        msg: RouterMessage::FindSuccessor {
                            target: self.me.id,
                            reply_to: self.me,
                            request_id,
                            hops: 0,
                        },
                    });
                }
            }
        }
        effects
    }

    /// Periodic finger maintenance: refresh one finger per invocation by
    /// looking up its target through the overlay.
    pub fn on_fix_fingers(&mut self, now: SimTime) -> Vec<RouterEffect> {
        if self.successor().is_none() {
            return Vec::new();
        }
        // Cycle through a subset of fingers; low fingers are mostly covered
        // by the successor list so refreshing every 4th keeps traffic down.
        self.next_finger_to_fix = (self.next_finger_to_fix + 4) % ID_BITS;
        let finger = self.next_finger_to_fix;
        let target = self.me.id.finger_target(finger);
        let request_id = self.next_internal_id(finger);
        self.start_lookup(target, request_id, now)
            .into_iter()
            .map(|e| match e {
                // A lookup that resolves locally just clears the pending entry.
                RouterEffect::LookupDone { request_id, .. } => {
                    self.pending_internal.remove(&request_id);
                    RouterEffect::LookupDone {
                        request_id,
                        owner: self.me,
                        hops: 0,
                    }
                }
                other => other,
            })
            .filter(|e| matches!(e, RouterEffect::Send { .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32, id: u64) -> NodeRef {
        NodeRef {
            id: Id(id),
            addr: NodeAddr(i),
        }
    }

    fn ring(ids: &[u64]) -> Vec<NodeRef> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| node(i as u32, id))
            .collect()
    }

    #[test]
    fn static_ring_has_correct_neighbors() {
        let nodes = ring(&[10, 20, 30, 40]);
        let r = Router::with_static_ring(nodes[1], &nodes, RouterConfig::default());
        assert_eq!(r.predecessor().unwrap().id, Id(10));
        assert_eq!(r.successor().unwrap().id, Id(30));
        assert_eq!(r.successor_list().len(), 3);
    }

    #[test]
    fn responsibility_follows_predecessor_arc() {
        let nodes = ring(&[10, 20, 30, 40]);
        let r = Router::with_static_ring(nodes[1], &nodes, RouterConfig::default());
        assert!(r.is_responsible(Id(15)));
        assert!(r.is_responsible(Id(20)));
        assert!(!r.is_responsible(Id(10)));
        assert!(!r.is_responsible(Id(25)));
        // Wrap-around arc belongs to the smallest node.
        let first = Router::with_static_ring(nodes[0], &nodes, RouterConfig::default());
        assert!(first.is_responsible(Id(50)));
        assert!(first.is_responsible(Id(5)));
        assert!(first.is_responsible(Id(10)));
    }

    #[test]
    fn next_hop_makes_forward_progress() {
        let ids: Vec<u64> = (0..32).map(|i| i * 1000).collect();
        let nodes = ring(&ids);
        let target = Id(17_500); // owned by node with id 18_000
        let mut current = nodes[1];
        let mut hops = 0;
        loop {
            let r = Router::with_static_ring(current, &nodes, RouterConfig::default());
            match r.next_hop(target, 0) {
                None => break,
                Some(next) => {
                    // Forward progress: either the next hop already owns the
                    // target (it is the target's successor, possibly "past"
                    // it on the ring) or it is clockwise-closer to the target
                    // than we are.
                    let next_router =
                        Router::with_static_ring(next, &nodes, RouterConfig::default());
                    assert!(
                        next_router.is_responsible(target)
                            || next.id.distance_to(target) < current.id.distance_to(target),
                        "no forward progress from {:?} to {:?}",
                        current.id,
                        next.id
                    );
                    current = next;
                    hops += 1;
                    assert!(hops < 32, "routing loop");
                }
            }
        }
        assert_eq!(current.id, Id(18_000));
        // Finger tables give logarithmic path lengths.
        assert!(hops <= 6, "expected O(log n) hops, got {hops}");
    }

    #[test]
    fn known_owner_covers_self_and_successor_arcs() {
        let nodes = ring(&[10, 20, 30, 40]);
        let r = Router::with_static_ring(nodes[1], &nodes, RouterConfig::default());
        // Own arc (10, 20].
        assert_eq!(r.known_owner(Id(15), 0).unwrap().id, Id(20));
        // Successor-list arcs (20, 30], (30, 40], (40, 10] are authoritative.
        assert_eq!(r.known_owner(Id(25), 0).unwrap().id, Id(30));
        assert_eq!(r.known_owner(Id(40), 0).unwrap().id, Id(40));
        assert_eq!(r.known_owner(Id(5), 0).unwrap().id, Id(10));
        // A presumed-dead successor forces the caller back to a lookup.
        let mut r = Router::with_static_ring(nodes[1], &nodes, RouterConfig::default());
        r.on_stabilize(0);
        assert!(r.presumed_dead(NodeAddr(2), 60_000_000));
        assert_eq!(r.known_owner(Id(25), 60_000_000), None);
    }

    #[test]
    fn singleton_owns_everything() {
        let me = node(0, 500);
        let r = Router::new(me, RouterConfig::default());
        assert!(r.is_responsible(Id(0)));
        assert!(r.is_responsible(Id(u64::MAX)));
        assert!(r.next_hop(Id(123), 0).is_none());
    }

    #[test]
    fn find_successor_resolves_over_message_exchange() {
        let nodes = ring(&[100, 2_000, 60_000, 900_000]);
        let mut routers: Vec<Router> = nodes
            .iter()
            .map(|n| Router::with_static_ring(*n, &nodes, RouterConfig::default()))
            .collect();
        // Node 0 looks up an id owned by node 3.
        let target = Id(800_000);
        let mut effects = routers[0].lookup(target, 7, 0);
        let mut done = None;
        let mut guard = 0;
        while let Some(effect) = effects.pop() {
            guard += 1;
            assert!(guard < 50, "lookup did not converge");
            match effect {
                RouterEffect::Send { to, msg } => {
                    let from = nodes
                        .iter()
                        .find(|_n| routers[to.index()].me().addr == to)
                        .map(|_| to)
                        .unwrap();
                    let more = routers[to.index()].on_message(from, msg, 0);
                    effects.extend(more);
                }
                RouterEffect::LookupDone {
                    request_id, owner, ..
                } => {
                    assert_eq!(request_id, 7);
                    done = Some(owner);
                }
            }
        }
        assert_eq!(done.unwrap().id, Id(900_000));
    }

    #[test]
    fn join_and_stabilize_converges_a_small_ring() {
        // Three nodes join through node 0 and run stabilization rounds by
        // exchanging messages directly (no simulator involved).
        let refs = ring(&[1_000, 500_000, 3_000_000_000]);
        let mut routers: Vec<Router> = refs
            .iter()
            .map(|n| Router::new(*n, RouterConfig::default()))
            .collect();

        let mut inbox: Vec<(NodeAddr, NodeAddr, RouterMessage)> = Vec::new();
        let push_effects =
            |from: NodeAddr,
             effects: Vec<RouterEffect>,
             inbox: &mut Vec<(NodeAddr, NodeAddr, RouterMessage)>| {
                for e in effects {
                    if let RouterEffect::Send { to, msg } = e {
                        inbox.push((from, to, msg));
                    }
                }
            };

        // Nodes 1 and 2 bootstrap through node 0.
        for i in 1..3usize {
            let effects = routers[i].bootstrap(Some(refs[0].addr));
            push_effects(refs[i].addr, effects, &mut inbox);
        }
        // Run message delivery + periodic stabilization for a few rounds.
        for round in 0..20u64 {
            let now = round * 1_000_000;
            while let Some((from, to, msg)) = inbox.pop() {
                let effects = routers[to.index()].on_message(from, msg, now);
                push_effects(to, effects, &mut inbox);
            }
            for (i, r) in routers.iter_mut().enumerate() {
                let effects = r.on_stabilize(now);
                push_effects(refs[i].addr, effects, &mut inbox);
            }
        }
        // The ring must be consistent: each node's successor is the next id.
        assert_eq!(routers[0].successor().unwrap().id, Id(500_000));
        assert_eq!(routers[1].successor().unwrap().id, Id(3_000_000_000));
        assert_eq!(routers[2].successor().unwrap().id, Id(1_000));
        assert_eq!(routers[0].predecessor().unwrap().id, Id(3_000_000_000));
    }

    #[test]
    fn stabilize_evicts_unresponsive_successor() {
        let nodes = ring(&[10, 20, 30]);
        let mut r = Router::with_static_ring(nodes[0], &nodes, RouterConfig::default());
        assert_eq!(r.successor().unwrap().id, Id(20));
        // First stabilization probes the successor; it never answers.
        let effects = r.on_stabilize(0);
        assert!(effects
            .iter()
            .any(|e| matches!(e, RouterEffect::Send { to, msg: RouterMessage::GetNeighbors { .. } } if *to == NodeAddr(1))));
        // The other peer (id 30) does answer its probe, so it stays live.
        r.on_message(NodeAddr(2), RouterMessage::Notify { from: nodes[2] }, 1_000);
        // Well past the liveness timeout the successor is presumed dead,
        // evicted, and the next successor-list entry takes over.
        assert!(r.presumed_dead(NodeAddr(1), 60_000_000));
        let effects = r.on_stabilize(60_000_000);
        assert_eq!(r.successor().unwrap().id, Id(30), "dead successor evicted");
        assert!(effects
            .iter()
            .any(|e| matches!(e, RouterEffect::Send { to, msg: RouterMessage::GetNeighbors { .. } } if *to == NodeAddr(2))));
    }

    #[test]
    fn hearing_from_a_peer_clears_suspicion() {
        let nodes = ring(&[10, 20, 30]);
        let mut r = Router::with_static_ring(nodes[0], &nodes, RouterConfig::default());
        r.on_stabilize(0);
        // The successor answers (any message clears the unanswered probe).
        r.on_message(NodeAddr(1), RouterMessage::Notify { from: nodes[1] }, 1_000);
        assert!(!r.presumed_dead(NodeAddr(1), 60_000_000));
        r.on_stabilize(60_000_000);
        assert_eq!(r.successor().unwrap().id, Id(20), "live successor kept");
    }
}
