//! Messages exchanged between overlay wrappers.
//!
//! The overlay multiplexes three kinds of traffic over the node-to-node
//! transport: routing-protocol messages ([`RouterMessage`]), the two-phase
//! `get`/`put`/`renew` operations of Figure 6, and routed `send` / broadcast
//! traffic that travels hop-by-hop through the overlay.
//!
//! [`DhtMessage::PutBatch`] extends the Figure-6 vocabulary with a
//! *coalesced* direct transfer: when the sender can already name the
//! destination from local routing state, several independent puts share one
//! message.  This preserves the paper's per-object model — every entry
//! keeps its own name, payload and soft-state lifetime, and the receiver
//! stores them exactly as it would separate `PutRequest`s — it only removes
//! the per-object message framing, which dominates the cost of the query
//! processor's rehash/exchange hot path.  The batch framing is
//! dictionary-encoded: each distinct namespace string is charged once per
//! message, mirroring the payload-level counterpart — `pier_core`'s
//! columnar `TupleBatch`, whose wire size charges each self-describing
//! schema once per batch and then counts each chunk's **typed body
//! encoding** exactly: native little-endian `i64`/`f64` buffers, dictionary
//! pages and byte arenas for strings, and packed validity words (§3.3.1's
//! "no catalog" requirement constrains what travels between trust domains,
//! not how often identical column names or value tags must be repeated
//! within a single transfer).

use crate::naming::ObjectName;
use crate::object_manager::StoredObject;
use crate::router::RouterMessage;
use crate::Id;
use pier_runtime::{Duration, NodeAddr, WireSize};
use pier_trace::TraceContext;

/// Wire bytes an optional trace context costs: [`TraceContext::WIRE_BYTES`]
/// when present, **zero** when absent — with sampling off every message is
/// bit-identical in size to a build without tracing.
pub(crate) fn trace_wire_size(trace: &Option<TraceContext>) -> usize {
    trace.map_or(0, |t| t.wire_size())
}

/// A message between two overlay instances.  `V` is the application payload
/// type (for PIER: tuples, opgraphs and partial aggregates).
#[derive(Debug, Clone)]
pub enum DhtMessage<V> {
    /// Routing-protocol traffic (lookups, stabilization, notify).
    Routing(RouterMessage),
    /// Direct request for the objects stored under (namespace, key) — the
    /// second phase of a `get` (the first phase is a routed lookup).
    GetRequest {
        /// Table or result-set namespace.
        namespace: String,
        /// Partitioning key.
        key: String,
        /// Where to send the response.
        reply_to: NodeAddr,
        /// Correlation token chosen by the requester.
        request_id: u64,
        /// Trace context when the requesting query is sampled.
        trace: Option<TraceContext>,
    },
    /// Response to [`DhtMessage::GetRequest`].
    GetResponse {
        /// Correlation token from the request.
        request_id: u64,
        /// Namespace queried.
        namespace: String,
        /// Key queried.
        key: String,
        /// Matching objects (all suffixes).
        objects: Vec<StoredObject<V>>,
    },
    /// Direct transfer of an object to the node responsible for it — the
    /// second phase of a `put`.
    PutRequest {
        /// Full object name.
        name: ObjectName,
        /// Payload.
        value: V,
        /// Requested soft-state lifetime, microseconds.
        lifetime: Duration,
        /// Trace context when the putting query is sampled.
        trace: Option<TraceContext>,
    },
    /// Several independent puts destined for the same node, coalesced into
    /// one transfer ([`Overlay::put_batch`](crate::Overlay::put_batch)).
    /// Each entry keeps its own full name and requested lifetime, so the
    /// receiver stores them exactly as it would `len(entries)` separate
    /// [`DhtMessage::PutRequest`]s — per-object soft-state semantics are
    /// unchanged; only the message framing is shared.
    PutBatch {
        /// `(name, payload, lifetime)` per object.
        entries: Vec<(ObjectName, V, Duration)>,
        /// Trace context when the putting query is sampled (one per batch:
        /// a batch comes from one flush, so its entries share a parent).
        trace: Option<TraceContext>,
    },
    /// Direct request to extend an object's lifetime (fails if the object is
    /// not already stored at the destination).
    RenewRequest {
        /// Full object name.
        name: ObjectName,
        /// Requested lifetime extension, microseconds.
        lifetime: Duration,
        /// Where to send the response.
        reply_to: NodeAddr,
        /// Correlation token chosen by the requester.
        request_id: u64,
    },
    /// Response to [`DhtMessage::RenewRequest`].
    RenewResponse {
        /// Correlation token from the request.
        request_id: u64,
        /// Whether the renewal succeeded.
        success: bool,
    },
    /// A `send`: the object travels hop-by-hop toward the node responsible
    /// for its routing identifier, with an upcall offered at every
    /// intermediate node (§3.2.4, Figure 6).
    Routed {
        /// Destination identifier (the object's routing id or an explicit
        /// target such as an aggregation-tree root).
        target: Id,
        /// Full object name.
        name: ObjectName,
        /// Payload.
        value: V,
        /// Requested soft-state lifetime at the destination, microseconds.
        lifetime: Duration,
        /// Hops taken so far.
        hops: u32,
        /// Trace context when the sending query is sampled; preserved
        /// hop-by-hop so the receiving upcall parents correctly.
        trace: Option<TraceContext>,
    },
    /// Distribution-tree membership: `child` announces itself to its parent
    /// (the first hop on its route toward the tree root).
    TreeJoin {
        /// The joining node.
        child: NodeAddr,
        /// Identifier of the tree root.
        root: Id,
    },
    /// A broadcast payload travelling up toward the tree root (plain DHT
    /// routing, no interception).
    TreeBroadcastUp {
        /// Identifier of the tree root.
        root: Id,
        /// Payload to broadcast.
        payload: V,
    },
    /// A broadcast payload travelling down the distribution tree.
    TreeBroadcastDown {
        /// Identifier of the tree root.
        root: Id,
        /// Payload being broadcast.
        payload: V,
        /// Depth below the root (diagnostics).
        depth: u32,
    },
}

impl<V: WireSize> WireSize for DhtMessage<V> {
    fn wire_size(&self) -> usize {
        match self {
            DhtMessage::Routing(m) => 1 + m.wire_size(),
            DhtMessage::GetRequest {
                namespace,
                key,
                trace,
                ..
            } => 1 + namespace.wire_size() + key.wire_size() + 6 + 8 + trace_wire_size(trace),
            DhtMessage::GetResponse {
                namespace,
                key,
                objects,
                ..
            } => 1 + 8 + namespace.wire_size() + key.wire_size() + objects.wire_size(),
            DhtMessage::PutRequest {
                name, value, trace, ..
            } => 1 + name.wire_size() + value.wire_size() + 8 + trace_wire_size(trace),
            DhtMessage::PutBatch { entries, trace } => {
                // Dictionary-encoded framing, matching the columnar payload
                // layout of `pier_core`'s `TupleBatch`: each distinct
                // namespace string is charged once per batch, every entry
                // then pays a 2-byte namespace reference plus its key,
                // suffix, lifetime and payload.  Entries of one batch almost
                // always share a namespace (they come from one rehash or
                // partial-aggregate flush), so the repeated self-describing
                // header collapses exactly like a chunk's schema does.
                let mut namespaces: Vec<&str> = Vec::new();
                1 + 4
                    + trace_wire_size(trace)
                    + entries
                        .iter()
                        .map(|(name, value, _)| {
                            let ns = if namespaces.contains(&name.namespace.as_str()) {
                                0
                            } else {
                                namespaces.push(&name.namespace);
                                name.namespace.wire_size()
                            };
                            ns + 2 + name.key.wire_size() + 8 + value.wire_size() + 8
                        })
                        .sum::<usize>()
            }
            DhtMessage::RenewRequest { name, .. } => 1 + name.wire_size() + 8 + 6 + 8,
            DhtMessage::RenewResponse { .. } => 1 + 9,
            DhtMessage::Routed {
                name, value, trace, ..
            } => 1 + 8 + name.wire_size() + value.wire_size() + 8 + 4 + trace_wire_size(trace),
            DhtMessage::TreeJoin { .. } => 1 + 6 + 8,
            DhtMessage::TreeBroadcastUp { payload, .. } => 1 + 8 + payload.wire_size(),
            DhtMessage::TreeBroadcastDown { payload, .. } => 1 + 8 + payload.wire_size() + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterMessage;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small: DhtMessage<String> = DhtMessage::TreeBroadcastUp {
            root: Id(1),
            payload: "x".to_string(),
        };
        let big: DhtMessage<String> = DhtMessage::TreeBroadcastUp {
            root: Id(1),
            payload: "x".repeat(1000),
        };
        assert!(big.wire_size() > small.wire_size() + 900);
    }

    #[test]
    fn put_batch_framing_charges_each_namespace_once() {
        let entries: Vec<(ObjectName, u64, u64)> = (0..16)
            .map(|i| {
                (
                    ObjectName::new("shared.namespace", format!("k{i}"), i),
                    i,
                    60,
                )
            })
            .collect();
        let separate: usize = entries
            .iter()
            .map(|(name, value, _)| {
                DhtMessage::PutRequest {
                    name: name.clone(),
                    value: *value,
                    lifetime: 60,
                    trace: None,
                }
                .wire_size()
            })
            .sum();
        let batched = DhtMessage::PutBatch {
            entries,
            trace: None,
        }
        .wire_size();
        assert!(
            batched < separate,
            "batched framing {batched} must undercut {separate} separate puts"
        );
        // The saving is at least 15 repetitions of the namespace string
        // minus the per-entry 2-byte references and batch overhead.
        let ns_bytes = "shared.namespace".wire_size();
        assert!(batched <= separate - 15 * ns_bytes + 4 + 2 * 16);
    }

    #[test]
    fn absent_trace_context_costs_zero_wire_bytes() {
        let name = ObjectName::new("ns", "k", 1);
        let untraced: DhtMessage<u64> = DhtMessage::PutRequest {
            name: name.clone(),
            value: 7,
            lifetime: 60,
            trace: None,
        };
        let traced: DhtMessage<u64> = DhtMessage::PutRequest {
            name,
            value: 7,
            lifetime: 60,
            trace: Some(TraceContext::root(42)),
        };
        assert_eq!(
            traced.wire_size(),
            untraced.wire_size() + TraceContext::WIRE_BYTES
        );
        let routed_plain: DhtMessage<u64> = DhtMessage::Routed {
            target: Id(1),
            name: ObjectName::new("ns", "k", 2),
            value: 7,
            lifetime: 60,
            hops: 0,
            trace: None,
        };
        let baseline = 1 + 8 + ObjectName::new("ns", "k", 2).wire_size() + 7u64.wire_size() + 8 + 4;
        assert_eq!(routed_plain.wire_size(), baseline);
    }

    #[test]
    fn routing_messages_have_nonzero_size() {
        let m: DhtMessage<u64> = DhtMessage::Routing(RouterMessage::Notify {
            from: crate::router::NodeRef {
                id: Id(3),
                addr: NodeAddr(1),
            },
        });
        assert!(m.wire_size() > 0);
    }
}
