//! # pier-pht — Prefix Hash Tree range-index substrate
//!
//! PIER's third distributed index (§3.3.3) handles *range predicates* using
//! a Prefix Hash Tree (PHT): a trie over the binary representation of keys
//! whose nodes are addressed **through the DHT** — the trie node for prefix
//! `p` is stored at `hash("pht:" + p)` — so the index inherits the DHT's
//! resilience without any extra routing machinery.
//!
//! The paper notes that PHTs "have been implemented directly on our DHT
//! codebase, we have yet to integrate them into PIER"; we mirror that state
//! faithfully: the PHT here is a complete, tested implementation over a
//! pluggable [`PhtStore`] (the DHT's put/get interface), shipped as a
//! substrate crate but not yet wired into the live query executor.
//!
//! Keys are `u64`s (attribute values are mapped onto them by the caller);
//! leaves hold at most `leaf_capacity` entries and split on overflow,
//! exactly like the published design.

use std::collections::BTreeMap;
use std::collections::HashMap;

/// Number of key bits used by the trie.
pub const KEY_BITS: u32 = 64;

/// Abstraction of the DHT used to store trie nodes: a keyed blob store.
/// The production binding stores each node under `hash("pht:" + prefix)`;
/// tests use an in-memory map.
pub trait PhtStore {
    /// Fetch the trie node stored under `prefix`, if any.
    fn load(&self, prefix: &str) -> Option<PhtNode>;
    /// Store (or overwrite) the trie node for `prefix`.
    fn store(&mut self, prefix: &str, node: PhtNode);
    /// Remove the trie node for `prefix`.
    fn remove(&mut self, prefix: &str);
}

/// An in-memory [`PhtStore`], standing in for the DHT in tests and
/// single-process experiments.
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    nodes: HashMap<String, PhtNode>,
    /// Number of store operations performed (proxy for DHT puts).
    pub puts: u64,
    /// Number of load operations performed (proxy for DHT gets).
    pub gets: u64,
}

impl PhtStore for MemoryStore {
    fn load(&self, prefix: &str) -> Option<PhtNode> {
        self.nodes.get(prefix).cloned()
    }
    fn store(&mut self, prefix: &str, node: PhtNode) {
        self.nodes.insert(prefix.to_string(), node);
    }
    fn remove(&mut self, prefix: &str) {
        self.nodes.remove(prefix);
    }
}

impl MemoryStore {
    /// Number of trie nodes currently stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A trie node: either an internal node (children exist for prefix+0 and
/// prefix+1) or a leaf holding key/value pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum PhtNode {
    /// Internal node; its children are addressed by extending the prefix.
    Internal,
    /// Leaf bucket of keys sharing the node's prefix.
    Leaf(BTreeMap<u64, Vec<String>>),
}

/// The Prefix Hash Tree.
#[derive(Debug)]
pub struct Pht<S: PhtStore> {
    store: S,
    leaf_capacity: usize,
}

fn bit(key: u64, i: u32) -> char {
    if key & (1 << (KEY_BITS - 1 - i)) != 0 {
        '1'
    } else {
        '0'
    }
}

fn prefix_of(key: u64, len: u32) -> String {
    (0..len).map(|i| bit(key, i)).collect()
}

impl<S: PhtStore> Pht<S> {
    /// Create a PHT over the given store with the given leaf capacity.
    pub fn new(store: S, leaf_capacity: usize) -> Self {
        let mut pht = Pht {
            store,
            leaf_capacity: leaf_capacity.max(1),
        };
        if pht.store.load("").is_none() {
            pht.store.store("", PhtNode::Leaf(BTreeMap::new()));
        }
        pht
    }

    /// Borrow the underlying store (e.g. to inspect DHT operation counts).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Find the leaf prefix responsible for `key` by walking the trie from
    /// the root.  (The published design optimises this with binary search on
    /// prefix length; linear descent keeps the logic obvious and the depth is
    /// at most `KEY_BITS`.)
    fn leaf_prefix(&self, key: u64) -> String {
        let mut len = 0;
        loop {
            let prefix = prefix_of(key, len);
            match self.store.load(&prefix) {
                Some(PhtNode::Leaf(_)) | None => return prefix,
                Some(PhtNode::Internal) => len += 1,
            }
        }
    }

    /// Insert a key with an associated value (e.g. a tuple identifier).
    pub fn insert(&mut self, key: u64, value: impl Into<String>) {
        let prefix = self.leaf_prefix(key);
        let mut bucket = match self.store.load(&prefix) {
            Some(PhtNode::Leaf(b)) => b,
            _ => BTreeMap::new(),
        };
        bucket.entry(key).or_default().push(value.into());
        if bucket.len() > self.leaf_capacity && (prefix.len() as u32) < KEY_BITS {
            // Split: the leaf becomes internal and its entries are
            // redistributed to the two child leaves.
            let mut zero = BTreeMap::new();
            let mut one = BTreeMap::new();
            for (k, v) in bucket {
                if bit(k, prefix.len() as u32) == '0' {
                    zero.insert(k, v);
                } else {
                    one.insert(k, v);
                }
            }
            self.store.store(&prefix, PhtNode::Internal);
            self.store.store(&format!("{prefix}0"), PhtNode::Leaf(zero));
            self.store.store(&format!("{prefix}1"), PhtNode::Leaf(one));
        } else {
            self.store.store(&prefix, PhtNode::Leaf(bucket));
        }
    }

    /// Exact-match lookup.
    pub fn lookup(&self, key: u64) -> Vec<String> {
        let prefix = self.leaf_prefix(key);
        match self.store.load(&prefix) {
            Some(PhtNode::Leaf(bucket)) => bucket.get(&key).cloned().unwrap_or_default(),
            _ => Vec::new(),
        }
    }

    /// Range query over `[lo, hi]`, returning `(key, value)` pairs in key
    /// order.  The traversal only descends into subtrees whose prefix range
    /// intersects the query range, so cost is proportional to the answer.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, String)> {
        let mut out = Vec::new();
        self.range_walk("", lo, hi, &mut out);
        out
    }

    fn range_walk(&self, prefix: &str, lo: u64, hi: u64, out: &mut Vec<(u64, String)>) {
        // The key range covered by this prefix.
        let (p_lo, p_hi) = prefix_bounds(prefix);
        if p_hi < lo || p_lo > hi {
            return;
        }
        match self.store.load(prefix) {
            None => {}
            Some(PhtNode::Leaf(bucket)) => {
                for (k, values) in bucket.range(lo..=hi) {
                    for v in values {
                        out.push((*k, v.clone()));
                    }
                }
            }
            Some(PhtNode::Internal) => {
                self.range_walk(&format!("{prefix}0"), lo, hi, out);
                self.range_walk(&format!("{prefix}1"), lo, hi, out);
            }
        }
    }

    /// Delete a key entirely; leaves are merged back into their parent when
    /// both siblings are empty.
    pub fn delete(&mut self, key: u64) {
        let prefix = self.leaf_prefix(key);
        if let Some(PhtNode::Leaf(mut bucket)) = self.store.load(&prefix) {
            bucket.remove(&key);
            let empty = bucket.is_empty();
            self.store.store(&prefix, PhtNode::Leaf(bucket));
            if empty && !prefix.is_empty() {
                let parent = &prefix[..prefix.len() - 1];
                let sibling = format!("{parent}{}", if prefix.ends_with('0') { '1' } else { '0' });
                if let Some(PhtNode::Leaf(sib)) = self.store.load(&sibling) {
                    if sib.is_empty() {
                        self.store.remove(&prefix);
                        self.store.remove(&sibling);
                        self.store.store(parent, PhtNode::Leaf(BTreeMap::new()));
                    }
                }
            }
        }
    }
}

fn prefix_bounds(prefix: &str) -> (u64, u64) {
    let mut lo = 0u64;
    for (i, c) in prefix.chars().enumerate() {
        if c == '1' {
            lo |= 1 << (KEY_BITS as usize - 1 - i);
        }
    }
    let remaining = KEY_BITS as usize - prefix.len();
    let hi = if remaining == 64 {
        u64::MAX
    } else {
        lo | ((1u64 << remaining) - 1)
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pht(capacity: usize) -> Pht<MemoryStore> {
        Pht::new(MemoryStore::default(), capacity)
    }

    #[test]
    fn insert_and_lookup() {
        let mut p = pht(4);
        p.insert(10, "a");
        p.insert(10, "b");
        p.insert(99, "c");
        assert_eq!(p.lookup(10), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(p.lookup(99), vec!["c".to_string()]);
        assert!(p.lookup(7).is_empty());
    }

    #[test]
    fn leaves_split_on_overflow_and_remain_searchable() {
        let mut p = pht(2);
        for k in 0..50u64 {
            p.insert(k * 1000, format!("v{k}"));
        }
        // The trie must have split many times.
        assert!(p.store().len() > 10);
        for k in 0..50u64 {
            assert_eq!(p.lookup(k * 1000), vec![format!("v{k}")], "key {k}");
        }
    }

    #[test]
    fn range_query_matches_reference_scan() {
        let mut p = pht(3);
        let keys: Vec<u64> = (0..200).map(|i| i * 37 + 5).collect();
        for &k in &keys {
            p.insert(k, format!("t{k}"));
        }
        let (lo, hi) = (500, 3000);
        let got: Vec<u64> = p.range(lo, hi).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| (lo..=hi).contains(k))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn range_over_full_domain_returns_everything_in_order() {
        let mut p = pht(4);
        for k in [u64::MAX, 0, 42, 7, 1 << 63] {
            p.insert(k, format!("{k}"));
        }
        let got: Vec<u64> = p.range(0, u64::MAX).into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![0, 7, 42, 1 << 63, u64::MAX]);
    }

    #[test]
    fn delete_removes_and_merges() {
        let mut p = pht(1);
        p.insert(1, "a");
        p.insert(u64::MAX, "b");
        assert!(p.store().len() >= 3, "insert should have split the root");
        p.delete(1);
        assert!(p.lookup(1).is_empty());
        assert_eq!(p.lookup(u64::MAX), vec!["b".to_string()]);
        p.delete(u64::MAX);
        assert!(p.range(0, u64::MAX).is_empty());
    }

    #[test]
    fn prefix_bounds_are_correct() {
        assert_eq!(prefix_bounds(""), (0, u64::MAX));
        assert_eq!(prefix_bounds("1"), (1 << 63, u64::MAX));
        assert_eq!(prefix_bounds("0"), (0, (1 << 63) - 1));
        let (lo, hi) = prefix_bounds("10");
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, (1 << 63) + ((1 << 62) - 1));
    }
}
