//! # pier-telemetry — deterministic per-node observability
//!
//! The paper evaluates PIER through per-node bandwidth and latency figures
//! (§3.3.4) and pitches network monitoring as the flagship workload.  This
//! crate is the reproduction's own monitoring substrate: every node owns a
//! [`TelemetryHub`] holding typed counters, gauges, fixed-bucket histograms
//! and a bounded ring buffer of structured [`TraceEvent`]s.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.**  Nothing in this crate reads a wall clock or iterates
//!   a hash map.  Events are stamped with the simulation's virtual time
//!   (fed in via [`Telemetry::set_now`]) plus a monotonically increasing
//!   per-hub ordinal, metric maps are `BTreeMap`s, and histogram buckets
//!   are fixed at construction — so two identical sim runs export
//!   byte-identical JSONL traces (pinned by an integration test).
//! * **Zero overhead when disabled.**  The [`Telemetry`] handle cloned into
//!   each subsystem is an `Option<Arc<Mutex<TelemetryHub>>>`; disabled
//!   telemetry is `None` and every recording call is a branch on that
//!   discriminant.  Nothing is formatted, allocated or locked unless a hub
//!   is attached (the `dht_ops` bench asserts ≤1% overhead on the batch
//!   scan path with telemetry *enabled*).
//!
//! The hub is also the source for the dogfood loop: `pier-core` nodes
//! periodically materialise their hub as tuples into the `system.metrics`
//! DHT namespace so standing `sqlish` queries can monitor the cluster
//! through the query processor itself.  See `docs/OBSERVABILITY.md` for the
//! metric catalogue and event schema.

use pier_runtime::metrics::weighted_percentile;
use pier_runtime::time::{Duration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Bucket upper bounds (µs) for latency histograms: roughly logarithmic
/// from 100µs to 5s, wide enough for WAN lookups under congestion.
pub const LATENCY_US_BUCKETS: &[f64] = &[
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
    5_000_000.0,
    f64::INFINITY,
];

/// Bucket upper bounds for small-count histograms (routing hop counts,
/// batch sizes, fan-outs).
pub const COUNT_BUCKETS: &[f64] = &[
    0.0,
    1.0,
    2.0,
    3.0,
    4.0,
    6.0,
    8.0,
    12.0,
    16.0,
    24.0,
    32.0,
    64.0,
    f64::INFINITY,
];

/// Configuration for a node's telemetry, carried inside `PierConfig`.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Attach a hub to the node.  When false every recording call is a
    /// single null check and the node behaves bit-identically to a build
    /// without telemetry.
    pub enabled: bool,
    /// Ring-buffer capacity of the structured event trace; the oldest
    /// events are dropped (and counted) once the buffer is full.
    pub trace_capacity: usize,
    /// When set (and `enabled`), the node periodically materialises its hub
    /// as a tuple published into the `system.metrics` DHT namespace — the
    /// dogfood loop that lets standing queries monitor the cluster.
    pub publish_interval: Option<Duration>,
    /// Ring-buffer capacity of the per-query span ring (`pier-trace`);
    /// the oldest spans are dropped (and counted) once the buffer is full.
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            trace_capacity: 1024,
            publish_interval: None,
            span_capacity: 4096,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry on, dogfood publishing off.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }

    /// Telemetry on with periodic `system.metrics` publishing.
    pub fn publishing(interval: Duration) -> Self {
        TelemetryConfig {
            enabled: true,
            publish_interval: Some(interval),
            ..TelemetryConfig::default()
        }
    }
}

/// A fixed-bucket histogram.
///
/// Buckets are chosen at construction (see [`LATENCY_US_BUCKETS`] /
/// [`COUNT_BUCKETS`]) so observation is a linear scan over ≤16 bounds with
/// no allocation.  Percentiles reuse the workspace's single nearest-rank
/// implementation ([`pier_runtime::metrics::weighted_percentile`], the same
/// logic behind `LatencyCdf`) over `(bucket bound, count)` pairs, i.e. a
/// percentile is the upper bound of the bucket holding that rank.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over the given (sorted, inclusive) upper bounds.
    /// The final bound should be `f64::INFINITY` to make it exhaustive.
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len()],
            total: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Nearest-rank percentile, reported as the upper bound of the bucket
    /// holding that rank (the unbounded last bucket reports the maximum
    /// observed value instead).  `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let pairs: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| {
                let v = if b.is_finite() { *b } else { self.max };
                (v, *c)
            })
            .collect();
        weighted_percentile(&pairs, p)
    }

    /// `(upper bound, count)` pairs for export.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds.iter().copied().zip(self.counts.iter().copied())
    }
}

/// One structured trace event: virtual-time stamp, per-hub ordinal, a
/// static kind tag and pre-formatted key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the event was recorded at.
    pub time: SimTime,
    /// Monotonic per-hub sequence number (total order within a node even
    /// when several events share a timestamp).
    pub ordinal: u64,
    /// Static event tag, e.g. `"query_install"`.
    pub kind: &'static str,
    /// Event payload; values are pre-formatted strings.
    pub fields: Vec<(&'static str, String)>,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// One JSON object (a JSONL line without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"time\":");
        out.push_str(&self.time.to_string());
        out.push_str(",\"ordinal\":");
        out.push_str(&self.ordinal.to_string());
        out.push_str(",\"kind\":\"");
        json_escape(&mut out, self.kind);
        out.push_str("\",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            out.push_str("\":\"");
            json_escape(&mut out, v);
            out.push('"');
        }
        out.push_str("}}");
        out
    }
}

/// One measured span of a sampled distributed trace (`pier-trace`): a
/// virtual-time interval attributed to a query stage on one node, linked
/// into a cross-node span tree through `parent`.
///
/// Spans are fixed-width numeric records (the stage tag is `&'static str`)
/// so recording one is a ring push with no allocation beyond the ring slot —
/// the same ≤1% enabled-overhead budget as the event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Virtual time the stage began.
    pub start: SimTime,
    /// Virtual time the stage ended (≥ `start`; equal for instantaneous
    /// stages such as an ingest routing decision).
    pub end: SimTime,
    /// Monotonic per-hub span sequence number (total order within a node).
    pub ordinal: u64,
    /// Trace identifier (derived deterministically from the query id).
    pub trace_id: u64,
    /// This span's identifier, unique across the cluster.
    pub span_id: u64,
    /// Parent span identifier (the trace id itself for top-level spans).
    pub parent: u64,
    /// Query the work is charged to.  For shared (MQO) work this is the
    /// group's canonical member, not necessarily the query that triggered
    /// the stage.
    pub query_id: u64,
    /// Static stage tag, e.g. `"window.flush"`.
    pub stage: &'static str,
    /// Rows processed by the stage.
    pub rows: u64,
    /// Wire bytes attributable to the stage (0 for local stages).
    pub bytes: u64,
    /// Stage-specific auxiliary value (window start for window stages,
    /// hop count for routed stages, 0 otherwise).
    pub aux: u64,
}

impl SpanRecord {
    /// One JSON object (a JSONL line without the trailing newline).  Key
    /// order is fixed so equal runs export byte-identical span files.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"start\":");
        out.push_str(&self.start.to_string());
        out.push_str(",\"end\":");
        out.push_str(&self.end.to_string());
        out.push_str(",\"ordinal\":");
        out.push_str(&self.ordinal.to_string());
        out.push_str(",\"trace\":");
        out.push_str(&self.trace_id.to_string());
        out.push_str(",\"span\":");
        out.push_str(&self.span_id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"query\":");
        out.push_str(&self.query_id.to_string());
        out.push_str(",\"stage\":\"");
        json_escape(&mut out, self.stage);
        out.push_str("\",\"rows\":");
        out.push_str(&self.rows.to_string());
        out.push_str(",\"bytes\":");
        out.push_str(&self.bytes.to_string());
        out.push_str(",\"aux\":");
        out.push_str(&self.aux.to_string());
        out.push('}');
        out
    }
}

/// The per-node metric store: counters, gauges, histograms, the bounded
/// event trace and the bounded span ring.  All maps are `BTreeMap`s so
/// iteration (and therefore every export) is deterministic.
#[derive(Debug)]
pub struct TelemetryHub {
    now: SimTime,
    next_ordinal: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    trace: VecDeque<TraceEvent>,
    trace_capacity: usize,
    trace_dropped: u64,
    spans: VecDeque<SpanRecord>,
    span_capacity: usize,
    next_span_ordinal: u64,
    spans_dropped: u64,
}

impl TelemetryHub {
    /// An empty hub with the given trace ring capacity (span ring defaults
    /// to the `TelemetryConfig` default).
    pub fn new(trace_capacity: usize) -> Self {
        TelemetryHub::with_capacities(trace_capacity, TelemetryConfig::default().span_capacity)
    }

    /// An empty hub with explicit trace and span ring capacities.
    pub fn with_capacities(trace_capacity: usize, span_capacity: usize) -> Self {
        TelemetryHub {
            now: 0,
            next_ordinal: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            trace: VecDeque::new(),
            trace_capacity: trace_capacity.max(1),
            trace_dropped: 0,
            spans: VecDeque::new(),
            span_capacity: span_capacity.max(1),
            next_span_ordinal: 0,
            spans_dropped: 0,
        }
    }

    /// Advance the hub's notion of virtual time (stamped onto events).
    pub fn set_now(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
    }

    /// The hub's current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Record `value` into histogram `name`, creating it over `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, value: f64, bounds: &'static [f64]) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Append a structured event to the trace ring, stamping it with the
    /// hub's current time and the next ordinal.
    pub fn event(&mut self, kind: &'static str, fields: Vec<(&'static str, String)>) {
        let ev = TraceEvent {
            time: self.now,
            ordinal: self.next_ordinal,
            kind,
            fields,
        };
        self.next_ordinal += 1;
        if self.trace.len() == self.trace_capacity {
            self.trace.pop_front();
            self.trace_dropped += 1;
        }
        self.trace.push_back(ev);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Percentile `p` of histogram `name` (`None` if absent or empty).
    pub fn percentile(&self, name: &str, p: f64) -> Option<f64> {
        self.hists.get(name).and_then(|h| h.percentile(p))
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The retained trace events, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEvent> {
        self.trace.iter()
    }

    /// Events evicted from the ring because it was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// The retained trace as JSONL (one event object per line, trailing
    /// newline after each).  Byte-identical across identical runs.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Append a span to the span ring, stamping it with the next span
    /// ordinal.  `start`/`end` are virtual times supplied by the caller
    /// (stage boundaries rarely coincide with the hub's `now`).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        start: SimTime,
        end: SimTime,
        trace_id: u64,
        span_id: u64,
        parent: u64,
        query_id: u64,
        stage: &'static str,
        rows: u64,
        bytes: u64,
        aux: u64,
    ) {
        let rec = SpanRecord {
            start,
            end: end.max(start),
            ordinal: self.next_span_ordinal,
            trace_id,
            span_id,
            parent,
            query_id,
            stage,
            rows,
            bytes,
            aux,
        };
        self.next_span_ordinal += 1;
        if self.spans.len() == self.span_capacity {
            self.spans.pop_front();
            self.spans_dropped += 1;
        }
        self.spans.push_back(rec);
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Spans evicted from the ring because it was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The retained spans as JSONL.  Byte-identical across identical runs.
    pub fn span_jsonl(&self) -> String {
        let mut out = String::new();
        for sp in &self.spans {
            out.push_str(&sp.to_json());
            out.push('\n');
        }
        out
    }
}

/// A cheap-clone handle to a node's [`TelemetryHub`], or nothing.
///
/// Every instrumented subsystem (overlay, pipeline, eddy, sharing layer)
/// holds a clone.  When telemetry is disabled the handle is empty and each
/// recording call costs one discriminant check; event payloads are built
/// inside closures so they are never formatted in that case.  The `Mutex`
/// is uncontended — a node and everything it owns run on one logical
/// thread — it exists only to keep the handle `Send + Sync`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<TelemetryHub>>>,
}

impl Telemetry {
    /// A handle per `cfg`: attached to a fresh hub when enabled, empty
    /// otherwise.
    pub fn from_config(cfg: &TelemetryConfig) -> Self {
        if cfg.enabled {
            Telemetry {
                inner: Some(Arc::new(Mutex::new(TelemetryHub::with_capacities(
                    cfg.trace_capacity,
                    cfg.span_capacity,
                )))),
            }
        } else {
            Telemetry::disabled()
        }
    }

    /// An empty handle; every recording call is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An attached handle with default capacity (convenience for tests).
    pub fn attached() -> Self {
        Telemetry::from_config(&TelemetryConfig::enabled())
    }

    /// Whether a hub is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn hub(&self) -> Option<MutexGuard<'_, TelemetryHub>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Run `f` against the hub, if attached.
    pub fn with<R>(&self, f: impl FnOnce(&mut TelemetryHub) -> R) -> Option<R> {
        self.hub().map(|mut h| f(&mut h))
    }

    /// Advance the hub's virtual time (call on entry to every handler).
    pub fn set_now(&self, now: SimTime) {
        if let Some(mut h) = self.hub() {
            h.set_now(now);
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `by` to counter `name`.
    pub fn add(&self, name: &str, by: u64) {
        if let Some(mut h) = self.hub() {
            h.add(name, by);
        }
    }

    /// Set gauge `name`.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut h) = self.hub() {
            h.set_gauge(name, value);
        }
    }

    /// Record a latency observation (µs) into histogram `name`.
    pub fn observe_latency(&self, name: &str, micros: f64) {
        if let Some(mut h) = self.hub() {
            h.observe(name, micros, LATENCY_US_BUCKETS);
        }
    }

    /// Record a small-count observation (hops, fan-out, batch size).
    pub fn observe_count(&self, name: &str, value: f64) {
        if let Some(mut h) = self.hub() {
            h.observe(name, value, COUNT_BUCKETS);
        }
    }

    /// Append a trace event.  `fields` is a closure so the payload is only
    /// formatted when a hub is attached.
    pub fn event(&self, kind: &'static str, fields: impl FnOnce() -> Vec<(&'static str, String)>) {
        if let Some(mut h) = self.hub() {
            let f = fields();
            h.event(kind, f);
        }
    }

    /// Snapshot a counter (0 when disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.hub().map_or(0, |h| h.counter(name))
    }

    /// Snapshot a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.hub().and_then(|h| h.gauge(name))
    }

    /// Snapshot a histogram percentile.
    pub fn percentile(&self, name: &str, p: f64) -> Option<f64> {
        self.hub().and_then(|h| h.percentile(name, p))
    }

    /// Export the trace ring as JSONL (empty string when disabled).
    pub fn trace_jsonl(&self) -> String {
        self.hub().map(|h| h.trace_jsonl()).unwrap_or_default()
    }

    /// Record a span into the span ring (no-op when disabled).  Callers
    /// gate on the query's sampling decision before reaching this, so the
    /// disabled-path cost is one discriminant check.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        start: SimTime,
        end: SimTime,
        trace_id: u64,
        span_id: u64,
        parent: u64,
        query_id: u64,
        stage: &'static str,
        rows: u64,
        bytes: u64,
        aux: u64,
    ) {
        if let Some(mut h) = self.hub() {
            h.span(
                start, end, trace_id, span_id, parent, query_id, stage, rows, bytes, aux,
            );
        }
    }

    /// Export the span ring as JSONL (empty string when disabled).
    pub fn span_jsonl(&self) -> String {
        self.hub().map(|h| h.span_jsonl()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let tel = Telemetry::attached();
        tel.inc("a");
        tel.add("a", 2);
        tel.gauge("g", 1.5);
        for v in [50.0, 900.0, 40_000.0, 2_000_000.0] {
            tel.observe_latency("lat", v);
        }
        assert_eq!(tel.counter("a"), 3);
        assert_eq!(tel.counter("missing"), 0);
        assert_eq!(tel.gauge_value("g"), Some(1.5));
        let p100 = tel.percentile("lat", 100.0).unwrap();
        assert_eq!(p100, 2_500_000.0);
        let p0 = tel.percentile("lat", 0.0).unwrap();
        assert_eq!(p0, 100.0);
    }

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.inc("a");
        tel.gauge("g", 1.0);
        tel.observe_latency("lat", 5.0);
        tel.event("never", || unreachable!("fields must not be built"));
        assert_eq!(tel.counter("a"), 0);
        assert_eq!(tel.gauge_value("g"), None);
        assert_eq!(tel.trace_jsonl(), "");
    }

    #[test]
    fn histogram_percentile_matches_weighted_rank() {
        let mut h = Histogram::new(COUNT_BUCKETS);
        for v in [1.0, 1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(2.0));
        // The unbounded bucket reports the observed maximum.
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert!((h.mean() - 21.4).abs() < 1e-9);
        let empty = Histogram::new(COUNT_BUCKETS);
        assert_eq!(empty.percentile(50.0), None);
    }

    #[test]
    fn trace_ring_bounds_and_jsonl() {
        let tel = Telemetry::from_config(&TelemetryConfig {
            enabled: true,
            trace_capacity: 2,
            ..TelemetryConfig::default()
        });
        tel.set_now(10);
        tel.event("first", Vec::new);
        tel.set_now(20);
        tel.event("second", || vec![("k", "v\"x".to_string())]);
        tel.set_now(30);
        tel.event("third", Vec::new);
        let jsonl = tel.trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"time\":20,\"ordinal\":1,\"kind\":\"second\",\"fields\":{\"k\":\"v\\\"x\"}}"
        );
        assert_eq!(
            lines[1],
            "{\"time\":30,\"ordinal\":2,\"kind\":\"third\",\"fields\":{}}"
        );
        assert_eq!(tel.with(|h| h.trace_dropped()), Some(1));
    }

    #[test]
    fn span_ring_bounds_and_jsonl() {
        let tel = Telemetry::from_config(&TelemetryConfig {
            enabled: true,
            span_capacity: 2,
            ..TelemetryConfig::default()
        });
        tel.record_span(10, 20, 7, 100, 7, 42, "ingest", 1, 0, 0);
        tel.record_span(20, 25, 7, 101, 100, 42, "window.flush", 3, 96, 1_000_000);
        tel.record_span(25, 30, 7, 102, 101, 42, "window.emit", 2, 0, 1_000_000);
        let lines: Vec<String> = tel.span_jsonl().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"start\":20,\"end\":25,\"ordinal\":1,\"trace\":7,\"span\":101,\
             \"parent\":100,\"query\":42,\"stage\":\"window.flush\",\"rows\":3,\
             \"bytes\":96,\"aux\":1000000}"
        );
        assert_eq!(tel.with(|h| h.spans_dropped()), Some(1));
        // End is clamped to start for malformed intervals.
        tel.record_span(50, 40, 7, 103, 7, 42, "ingest", 1, 0, 0);
        let last = tel.with(|h| *h.spans().last().unwrap()).unwrap();
        assert_eq!((last.start, last.end), (50, 50));
    }

    #[test]
    fn disabled_span_recording_is_inert() {
        let tel = Telemetry::disabled();
        tel.record_span(0, 1, 1, 1, 1, 1, "ingest", 1, 0, 0);
        assert_eq!(tel.span_jsonl(), "");
    }

    #[test]
    fn ordinals_are_monotonic_at_equal_times() {
        let tel = Telemetry::attached();
        tel.set_now(5);
        tel.event("a", Vec::new);
        tel.event("b", Vec::new);
        let ords: Vec<u64> = tel
            .with(|h| h.trace().map(|e| e.ordinal).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(ords, vec![0, 1]);
    }
}
