//! Column values.
//!
//! PIER tuples are self-describing (§3.3.1): there is no catalog, so every
//! value carries its own runtime type and operators perform *best-effort*
//! type checking at evaluation time — a tuple whose field has an
//! incompatible type is simply discarded by the operator that notices
//! (§3.3.4, "Malformed Tuples").  The original system used Java objects as
//! its type system; here a closed enum covers the types the paper's
//! applications use.
//!
//! **Zero-copy representation.**  Strings and byte payloads are held behind
//! `Arc<str>` / `Arc<[u8]>`, so [`Value::clone`](Clone) is a reference-count
//! bump for every variant — no heap traffic.  Combined with the interned
//! schemas of [`crate::tuple`] and tuples storing their values as
//! `Arc<[Value]>`, cloning a tuple (which the dataflow does constantly:
//! fan-out to multiple opgraphs, join-state insertion, batch slicing) is
//! allocation-free end to end.  The `Arc`s are plain `std` shared pointers —
//! the wire format is unaffected; only the in-memory representation shares.

use pier_runtime::WireSize;
use std::cmp::Ordering;
use std::sync::Arc;

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared; cloning bumps a reference count).
    Str(Arc<str>),
    /// Opaque bytes (packet payloads, file digests, …; shared on clone).
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a bytes value from a byte slice.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// Short type name, used in error messages and tests.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one (ints and floats only —
    /// best-effort semantics do not coerce strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view of the value, if it has one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical string used as a DHT partitioning key.  Values that compare
    /// equal must produce identical key strings, because the key determines
    /// the object's routing identifier.
    pub fn key_string(&self) -> String {
        let mut out = String::with_capacity(12);
        self.write_key(&mut out);
        out
    }

    /// Append the canonical key representation to `out` without allocating a
    /// fresh string per value — the building block of the multi-column
    /// partition keys assembled on the rehash/group-by hot path.
    pub fn write_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push('∅'),
            Value::Bool(b) => {
                out.push_str(if *b { "b:true" } else { "b:false" });
            }
            Value::Int(i) => {
                let _ = write!(out, "i:{i}");
            }
            Value::Float(f) => {
                let _ = write!(out, "f:{f}");
            }
            Value::Str(s) => {
                out.push_str("s:");
                out.push_str(s);
            }
            Value::Bytes(b) => {
                out.push_str("x:");
                for byte in b.iter() {
                    let _ = write!(out, "{byte:02x}");
                }
            }
        }
    }

    /// Best-effort comparison: `None` when the two values are not comparable
    /// (different, non-numeric types), which causes the comparing operator to
    /// discard the tuple.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl Value {
    /// Borrowed view of this value — see [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Str(s) => ValueRef::Str(s),
            Value::Bytes(b) => ValueRef::Bytes(b),
        }
    }

    /// Append this value's exact byte encoding to `buf`: a 1-byte type tag
    /// followed by the payload (integers and floats little-endian, strings
    /// and bytes length-prefixed with `u32` LE).  [`Value::wire_size`] is by
    /// construction the number of bytes this appends.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.push(0),
            Value::Bool(b) => {
                buf.push(1);
                buf.push(u8::from(*b));
            }
            Value::Int(i) => {
                buf.push(2);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                buf.push(3);
                buf.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(4);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                buf.push(5);
                buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
                buf.extend_from_slice(b);
            }
        }
    }

    /// Decode one value from the front of `buf`, returning it and the number
    /// of bytes consumed.  `None` on truncated or unknown-tag input (the
    /// caller treats the record as torn, per the durability layer's policy).
    pub fn decode(buf: &[u8]) -> Option<(Value, usize)> {
        let tag = *buf.first()?;
        let rest = &buf[1..];
        match tag {
            0 => Some((Value::Null, 1)),
            1 => Some((Value::Bool(*rest.first()? != 0), 2)),
            2 => {
                let b: [u8; 8] = rest.get(..8)?.try_into().ok()?;
                Some((Value::Int(i64::from_le_bytes(b)), 9))
            }
            3 => {
                let b: [u8; 8] = rest.get(..8)?.try_into().ok()?;
                Some((Value::Float(f64::from_le_bytes(b)), 9))
            }
            4 => {
                let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let s = rest.get(4..4 + len)?;
                let s = std::str::from_utf8(s).ok()?;
                Some((Value::str(s), 5 + len))
            }
            5 => {
                let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let b = rest.get(4..4 + len)?;
                Some((Value::bytes(b), 5 + len))
            }
            _ => None,
        }
    }
}

/// A borrowed scalar — the view type the typed columnar layout hands out.
///
/// Typed columns ([`crate::column::Column`]) store native `i64`/`f64` buffers
/// and string bytes in shared arenas, so there is no stored [`Value`] to
/// return a `&Value` to.  `ValueRef` is the layout-independent scalar view:
/// copying one is free (it is at most a fat pointer), and every best-effort
/// accessor ([`as_f64`](ValueRef::as_f64), [`compare`](ValueRef::compare),
/// [`write_key`](ValueRef::write_key)) matches the owned [`Value`]
/// counterpart bit for bit — the differential oracle suite pins this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed UTF-8 string (into a dictionary entry or a chunk arena).
    Str(&'a str),
    /// Borrowed opaque bytes.
    Bytes(&'a [u8]),
}

impl<'a> ValueRef<'a> {
    /// Short type name, used in error messages and tests.
    pub fn type_name(&self) -> &'static str {
        match self {
            ValueRef::Null => "null",
            ValueRef::Bool(_) => "bool",
            ValueRef::Int(_) => "int",
            ValueRef::Float(_) => "float",
            ValueRef::Str(_) => "string",
            ValueRef::Bytes(_) => "bytes",
        }
    }

    /// True when the view is [`ValueRef::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Numeric view — same coercions as [`Value::as_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(*i as f64),
            ValueRef::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view — same coercions as [`Value::as_i64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ValueRef::Int(i) => Some(*i),
            ValueRef::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view — same coercions as [`Value::as_bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ValueRef::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Materialise an owned [`Value`] (allocates for strings borrowed from
    /// an arena; dictionary-backed accessors avoid this by handing out the
    /// shared `Arc<str>` directly).
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Str(s) => Value::str(s),
            ValueRef::Bytes(b) => Value::bytes(b),
        }
    }

    /// Append the canonical key representation — byte-identical to
    /// [`Value::write_key`] on the materialised value.
    pub fn write_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            ValueRef::Null => out.push('∅'),
            ValueRef::Bool(b) => out.push_str(if *b { "b:true" } else { "b:false" }),
            ValueRef::Int(i) => {
                let _ = write!(out, "i:{i}");
            }
            ValueRef::Float(f) => {
                let _ = write!(out, "f:{f}");
            }
            ValueRef::Str(s) => {
                out.push_str("s:");
                out.push_str(s);
            }
            ValueRef::Bytes(b) => {
                out.push_str("x:");
                for byte in *b {
                    let _ = write!(out, "{byte:02x}");
                }
            }
        }
    }

    /// Best-effort comparison — identical outcomes to [`Value::compare`].
    pub fn compare(&self, other: &ValueRef<'_>) -> Option<Ordering> {
        match (self, other) {
            (ValueRef::Int(a), ValueRef::Int(b)) => Some(a.cmp(b)),
            (ValueRef::Float(a), ValueRef::Float(b)) => a.partial_cmp(b),
            (ValueRef::Int(a), ValueRef::Float(b)) => (*a as f64).partial_cmp(b),
            (ValueRef::Float(a), ValueRef::Int(b)) => a.partial_cmp(&(*b as f64)),
            (ValueRef::Str(a), ValueRef::Str(b)) => Some(a.cmp(b)),
            (ValueRef::Bool(a), ValueRef::Bool(b)) => Some(a.cmp(b)),
            (ValueRef::Bytes(a), ValueRef::Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Compare against an owned constant without materialising.
    pub fn compare_value(&self, other: &Value) -> Option<Ordering> {
        self.compare(&other.as_ref())
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> Self {
        v.as_ref()
    }
}

impl std::fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueRef::Null => write!(f, "NULL"),
            ValueRef::Bool(b) => write!(f, "{b}"),
            ValueRef::Int(i) => write!(f, "{i}"),
            ValueRef::Float(x) => write!(f, "{x}"),
            ValueRef::Str(s) => write!(f, "{s}"),
            ValueRef::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl WireSize for Value {
    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Arc::from(v))
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons_cross_type() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(2).compare(&Value::Int(5)), Some(Ordering::Less));
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incompatible_types_are_incomparable() {
        assert_eq!(Value::Str("5".into()).compare(&Value::Int(5)), None);
        assert_eq!(Value::Null.compare(&Value::Int(5)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Str("true".into())), None);
    }

    #[test]
    fn key_strings_distinguish_types_and_values() {
        assert_ne!(
            Value::Int(1).key_string(),
            Value::Str("1".into()).key_string()
        );
        assert_ne!(Value::Int(1).key_string(), Value::Int(2).key_string());
        assert_eq!(Value::Int(7).key_string(), Value::Int(7).key_string());
        assert_eq!(Value::bytes([0xab]).key_string(), "x:ab");
    }

    #[test]
    fn accessors_follow_best_effort_semantics() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Str("4".into()).as_f64(), None);
        assert_eq!(Value::Float(4.9).as_i64(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn wire_size_scales() {
        assert!(Value::Str("hello world".into()).wire_size() > Value::Int(1).wire_size());
        assert_eq!(Value::Null.wire_size(), 1);
    }

    #[test]
    fn clones_share_the_heap_allocation() {
        let s = Value::str("a long enough string to definitely heap-allocate");
        let s2 = s.clone();
        match (&s, &s2) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        let b = Value::bytes([1u8, 2, 3, 4]);
        let b2 = b.clone();
        match (&b, &b2) {
            (Value::Bytes(a), Value::Bytes(c)) => assert!(Arc::ptr_eq(a, c)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn value_ref_mirrors_value_semantics() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(2.5),
            Value::str("abc"),
            Value::bytes([1, 2]),
        ];
        for a in &vals {
            assert_eq!(a.as_ref().to_value(), *a);
            assert_eq!(a.as_ref().is_null(), a.is_null());
            assert_eq!(a.as_ref().as_f64(), a.as_f64());
            assert_eq!(a.as_ref().as_i64(), a.as_i64());
            assert_eq!(a.as_ref().as_bool(), a.as_bool());
            assert_eq!(a.as_ref().as_str(), a.as_str());
            assert_eq!(a.as_ref().to_string(), a.to_string());
            let (mut k1, mut k2) = (String::new(), String::new());
            a.write_key(&mut k1);
            a.as_ref().write_key(&mut k2);
            assert_eq!(k1, k2);
            for b in &vals {
                assert_eq!(a.as_ref().compare(&b.as_ref()), a.compare(b), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_and_matches_wire_size() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Float(-0.0),
            Value::str("héllo"),
            Value::bytes([0u8, 255]),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.wire_size(), "{v:?}");
            let (back, used) = Value::decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            // Bit-level equality, not just PartialEq (−0.0 == 0.0 as floats).
            let mut again = Vec::new();
            back.encode(&mut again);
            assert_eq!(buf, again, "{v:?}");
        }
        assert_eq!(Value::decode(&[2, 1, 2]), None); // truncated int
        assert_eq!(Value::decode(&[9]), None); // unknown tag
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::bytes([1, 2, 3]).to_string(), "<3 bytes>");
    }
}
