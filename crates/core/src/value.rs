//! Column values.
//!
//! PIER tuples are self-describing (§3.3.1): there is no catalog, so every
//! value carries its own runtime type and operators perform *best-effort*
//! type checking at evaluation time — a tuple whose field has an
//! incompatible type is simply discarded by the operator that notices
//! (§3.3.4, "Malformed Tuples").  The original system used Java objects as
//! its type system; here a closed enum covers the types the paper's
//! applications use.
//!
//! **Zero-copy representation.**  Strings and byte payloads are held behind
//! `Arc<str>` / `Arc<[u8]>`, so [`Value::clone`](Clone) is a reference-count
//! bump for every variant — no heap traffic.  Combined with the interned
//! schemas of [`crate::tuple`] and tuples storing their values as
//! `Arc<[Value]>`, cloning a tuple (which the dataflow does constantly:
//! fan-out to multiple opgraphs, join-state insertion, batch slicing) is
//! allocation-free end to end.  The `Arc`s are plain `std` shared pointers —
//! the wire format is unaffected; only the in-memory representation shares.

use pier_runtime::WireSize;
use std::cmp::Ordering;
use std::sync::Arc;

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared; cloning bumps a reference count).
    Str(Arc<str>),
    /// Opaque bytes (packet payloads, file digests, …; shared on clone).
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a bytes value from a byte slice.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// Short type name, used in error messages and tests.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one (ints and floats only —
    /// best-effort semantics do not coerce strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view of the value, if it has one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical string used as a DHT partitioning key.  Values that compare
    /// equal must produce identical key strings, because the key determines
    /// the object's routing identifier.
    pub fn key_string(&self) -> String {
        let mut out = String::with_capacity(12);
        self.write_key(&mut out);
        out
    }

    /// Append the canonical key representation to `out` without allocating a
    /// fresh string per value — the building block of the multi-column
    /// partition keys assembled on the rehash/group-by hot path.
    pub fn write_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push('∅'),
            Value::Bool(b) => {
                out.push_str(if *b { "b:true" } else { "b:false" });
            }
            Value::Int(i) => {
                let _ = write!(out, "i:{i}");
            }
            Value::Float(f) => {
                let _ = write!(out, "f:{f}");
            }
            Value::Str(s) => {
                out.push_str("s:");
                out.push_str(s);
            }
            Value::Bytes(b) => {
                out.push_str("x:");
                for byte in b.iter() {
                    let _ = write!(out, "{byte:02x}");
                }
            }
        }
    }

    /// Best-effort comparison: `None` when the two values are not comparable
    /// (different, non-numeric types), which causes the comparing operator to
    /// discard the tuple.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl WireSize for Value {
    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Arc::from(v))
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons_cross_type() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(2).compare(&Value::Int(5)), Some(Ordering::Less));
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incompatible_types_are_incomparable() {
        assert_eq!(Value::Str("5".into()).compare(&Value::Int(5)), None);
        assert_eq!(Value::Null.compare(&Value::Int(5)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Str("true".into())), None);
    }

    #[test]
    fn key_strings_distinguish_types_and_values() {
        assert_ne!(
            Value::Int(1).key_string(),
            Value::Str("1".into()).key_string()
        );
        assert_ne!(Value::Int(1).key_string(), Value::Int(2).key_string());
        assert_eq!(Value::Int(7).key_string(), Value::Int(7).key_string());
        assert_eq!(Value::bytes([0xab]).key_string(), "x:ab");
    }

    #[test]
    fn accessors_follow_best_effort_semantics() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Str("4".into()).as_f64(), None);
        assert_eq!(Value::Float(4.9).as_i64(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn wire_size_scales() {
        assert!(Value::Str("hello world".into()).wire_size() > Value::Int(1).wire_size());
        assert_eq!(Value::Null.wire_size(), 1);
    }

    #[test]
    fn clones_share_the_heap_allocation() {
        let s = Value::str("a long enough string to definitely heap-allocate");
        let s2 = s.clone();
        match (&s, &s2) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        let b = Value::bytes([1u8, 2, 3, 4]);
        let b2 = b.clone();
        match (&b, &b2) {
            (Value::Bytes(a), Value::Bytes(c)) => assert!(Arc::ptr_eq(a, c)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::bytes([1, 2, 3]).to_string(), "<3 bytes>");
    }
}
