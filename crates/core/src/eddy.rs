//! Eddies: adaptive, run-time reordering of query operators (§4.2.2).
//!
//! PIER's answer to query optimization without a catalog is *runtime*
//! reoptimization: "we have implemented a prototype version of an eddy [2]
//! as an optional operator that can be employed in UFL plans.  A set of UFL
//! operators can be 'wired up' to an eddy, and in principle benefit from the
//! eddy's ability to reorder the operators."
//!
//! An [`Eddy`] holds a set of commutative tuple-at-a-time operators
//! (selections and other filters) and decides, per tuple, which operator to
//! visit next.  The two ingredients the paper names — **observation** of
//! per-operator dataflow rates and a **decision mechanism** for routing —
//! are the [`OperatorObservation`] statistics and the [`RoutingPolicy`]:
//!
//! * [`RoutingPolicy::Fixed`] — always use the wiring order (the behaviour
//!   of a static plan; the baseline in the ablation),
//! * [`RoutingPolicy::RoundRobin`] — rotate the starting operator, spreading
//!   work with no learning, and
//! * [`RoutingPolicy::Lottery`] — the classic eddy policy: favour operators
//!   that drop a larger fraction of the tuples they see ("fast fail"), so
//!   the plan converges toward evaluating the most selective predicate
//!   first without any prior statistics.
//!
//! The distributed dimension discussed in the paper — each node's eddy only
//! observes locally-routed data, and naive cross-site statistics exchange
//! would be too expensive — is captured by [`OperatorObservation::merge`]:
//! observations are mergeable partial states, so nodes *can* gossip or
//! aggregate them through the DHT exactly like any other partial aggregate,
//! and the ablation can quantify what that buys.

use crate::expr::{CompiledPredicate, Expr};
use crate::operators::LocalOperator;
use crate::tuple::{ColumnChunk, Tuple, TupleBatch};
use pier_runtime::Rng64;
use pier_telemetry::Telemetry;

/// Rows routed between two lottery re-draws inside one chunk.  Deciding the
/// order once per chunk is cheap but lets a skewed stream lock in a stale
/// order for the whole chunk (observations arrive in chunk strides);
/// re-drawing every `EDDY_REORDER_ROWS` rows bounds how long a mid-stream
/// selectivity flip can go unnoticed, independent of chunk size.
pub const EDDY_REORDER_ROWS: usize = 32;

/// A filter-style operator an eddy can route tuples through: it either
/// passes the tuple (possibly transformed) or drops it.  Unlike a full
/// [`LocalOperator`] it cannot multiply tuples, which is what makes
/// reordering safe.
pub trait EddyFilter: std::fmt::Debug {
    /// A short name used in observations and experiment output.
    fn name(&self) -> &str;
    /// Process one tuple; `None` drops it.
    fn apply(&mut self, tuple: Tuple) -> Option<Tuple>;
    /// Decide row `r` of a columnar chunk without materialising it, for
    /// filters that only pass or drop (never transform): `Some(true)` passes
    /// the row, `Some(false)` drops it, `None` means the filter cannot
    /// decide chunk-wise and the eddy falls back to [`EddyFilter::apply`] on
    /// a materialised row.  Implementors that return `Some` here must also
    /// report [`EddyFilter::supports_chunks`] and must never transform
    /// tuples in `apply`.
    fn apply_row(&mut self, _chunk: &ColumnChunk, _r: usize) -> Option<bool> {
        None
    }
    /// True when [`EddyFilter::apply_row`] always decides (pure pass/drop
    /// filter); enables the zero-materialisation mask path of
    /// [`Eddy::route_batch`].
    fn supports_chunks(&self) -> bool {
        false
    }
}

/// A selection predicate as an eddy filter.  The predicate is compiled
/// against each schema it meets once ([`CompiledPredicate`]), so routing a
/// tuple evaluates by column index — no per-tuple name lookups.
#[derive(Debug)]
pub struct PredicateFilter {
    name: String,
    predicate: CompiledPredicate,
}

impl PredicateFilter {
    /// Wrap a predicate.
    pub fn new(name: impl Into<String>, predicate: Expr) -> Self {
        PredicateFilter {
            name: name.into(),
            predicate: CompiledPredicate::new(predicate),
        }
    }
}

impl EddyFilter for PredicateFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, tuple: Tuple) -> Option<Tuple> {
        if self.predicate.matches_tuple(&tuple) {
            Some(tuple)
        } else {
            None
        }
    }

    fn apply_row(&mut self, chunk: &ColumnChunk, r: usize) -> Option<bool> {
        Some(
            self.predicate
                .for_schema(chunk.schema())
                .matches_view(&chunk.row_view(r)),
        )
    }

    fn supports_chunks(&self) -> bool {
        true
    }
}

/// Per-observation retention factor of the exponentially decayed drop-rate
/// estimate: past evidence loses half its weight every
/// [`OBS_HALF_LIFE_ROWS`] tuples an operator sees.  Cumulative rates made
/// the lottery slow to react when a long history had to be overcome (a
/// selectivity flip after 1 000 rows needed ~250 rows of contrary evidence
/// to cross); with decay the crossover happens within roughly two half-lives
/// regardless of how much history preceded the flip.
pub const OBS_HALF_LIFE_ROWS: f64 = 48.0;

/// The per-observation retention factor itself, `0.5^(1/48)`, precomputed
/// so the per-row record path pays no transcendental call (pinned equal to
/// the formula by a test).
const OBS_DECAY: f64 = 0.985_663_198_640_187_6;

/// Per-operator dataflow observations (the eddy's "observation" half).
/// Mergeable so distributed eddies can combine what different nodes saw.
///
/// Two estimates are kept: cumulative totals (`seen`/`dropped`, for
/// diagnostics and the work metrics of the ablation) and an exponentially
/// decayed pair driving [`OperatorObservation::drop_rate`], so the lottery
/// weighs *recent* selectivity and adapts to a mid-stream flip within a
/// bounded row budget instead of dragging the whole history along.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorObservation {
    /// Tuples routed into the operator (cumulative).
    pub seen: u64,
    /// Tuples the operator dropped (cumulative).
    pub dropped: u64,
    /// Exponentially decayed tuple weight.
    decayed_seen: f64,
    /// Exponentially decayed dropped weight.
    decayed_dropped: f64,
}

impl OperatorObservation {
    /// Record one routed tuple and whether the operator dropped it.
    pub fn record(&mut self, dropped: bool) {
        self.seen += 1;
        self.decayed_seen = self.decayed_seen * OBS_DECAY + 1.0;
        self.decayed_dropped *= OBS_DECAY;
        if dropped {
            self.dropped += 1;
            self.decayed_dropped += 1.0;
        }
    }

    /// Recency-weighted drop probability, with an optimistic prior of 0.5
    /// before any evidence (so unexplored operators still get tried).
    pub fn drop_rate(&self) -> f64 {
        if self.decayed_seen <= f64::EPSILON {
            0.5
        } else {
            self.decayed_dropped / self.decayed_seen
        }
    }

    /// Drop fraction over the operator's whole history (diagnostics; the
    /// lottery routes on [`OperatorObservation::drop_rate`]).
    pub fn cumulative_drop_rate(&self) -> f64 {
        if self.seen == 0 {
            0.5
        } else {
            self.dropped as f64 / self.seen as f64
        }
    }

    /// Merge another node's observations for the same operator (§4.2.2's
    /// cross-site aggregation of eddy statistics).  Both the cumulative
    /// totals and the decayed estimates combine, so a warm-started eddy
    /// inherits the remote node's *recent* selectivity view.
    pub fn merge(&mut self, other: &OperatorObservation) {
        self.seen += other.seen;
        self.dropped += other.dropped;
        self.decayed_seen += other.decayed_seen;
        self.decayed_dropped += other.decayed_dropped;
    }
}

/// The eddy's routing policy (its "decision mechanism").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Visit operators in wiring order — equivalent to a static plan.
    Fixed,
    /// Rotate the starting operator per tuple, no learning.
    RoundRobin,
    /// Lottery scheduling on observed drop rates: operators that fail tuples
    /// faster get visited earlier.
    Lottery,
}

/// The eddy operator: routes each tuple through every filter until one drops
/// it or all have passed it.
#[derive(Debug)]
pub struct Eddy {
    filters: Vec<Box<dyn EddyFilter + Send>>,
    observations: Vec<OperatorObservation>,
    policy: RoutingPolicy,
    rng: Rng64,
    round_robin_offset: usize,
    /// Total operator invocations — the "work" metric of the ablation.
    invocations: u64,
    tuples_in: u64,
    tuples_out: u64,
    /// Telemetry handle plus the last routing order it saw, so only actual
    /// order changes are reported as `eddy_reorder` events.
    tel: Telemetry,
    last_order: Vec<usize>,
}

impl Eddy {
    /// Create an eddy over the given filters.
    pub fn new(filters: Vec<Box<dyn EddyFilter + Send>>, policy: RoutingPolicy, seed: u64) -> Self {
        let n = filters.len();
        Eddy {
            filters,
            observations: vec![OperatorObservation::default(); n],
            policy,
            rng: Rng64::new(seed ^ 0xEDD1),
            round_robin_offset: 0,
            invocations: 0,
            tuples_in: 0,
            tuples_out: 0,
            tel: Telemetry::disabled(),
            last_order: Vec::new(),
        }
    }

    /// Attach a telemetry hub: routing-order changes are counted (and
    /// traced) as they happen, and the cumulative throughput/observation
    /// counts are synced as `eddy.*` gauges on every [`Eddy::flush`] or
    /// explicit [`Eddy::sync_telemetry`] call.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Publish the eddy's cumulative counters into the hub: total
    /// invocations and tuples in/out as `eddy.*` gauges, plus per-operator
    /// seen/dropped counts as `eddy.op<i>.*` gauges — the diagnostics the
    /// adaptivity experiments read, now queryable.
    pub fn sync_telemetry(&self) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel.gauge("eddy.invocations", self.invocations as f64);
        self.tel.gauge("eddy.tuples_in", self.tuples_in as f64);
        self.tel.gauge("eddy.tuples_out", self.tuples_out as f64);
        for (i, obs) in self.observations.iter().enumerate() {
            self.tel.gauge(&format!("eddy.op{i}.seen"), obs.seen as f64);
            self.tel
                .gauge(&format!("eddy.op{i}.dropped"), obs.dropped as f64);
        }
    }

    /// Draw the next routing order, reporting a change of order to the hub.
    fn next_order(&mut self) -> Vec<usize> {
        let order = self.route_order();
        if self.tel.is_enabled() && order != self.last_order {
            self.tel.inc("eddy.reorders");
            let order_str = order
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            self.tel
                .event("eddy_reorder", || vec![("order", order_str)]);
            self.last_order = order.clone();
        }
        order
    }

    /// Convenience: an eddy over named selection predicates.
    pub fn over_predicates(
        predicates: Vec<(String, Expr)>,
        policy: RoutingPolicy,
        seed: u64,
    ) -> Self {
        let filters: Vec<Box<dyn EddyFilter + Send>> = predicates
            .into_iter()
            .map(|(name, p)| Box::new(PredicateFilter::new(name, p)) as Box<dyn EddyFilter + Send>)
            .collect();
        Eddy::new(filters, policy, seed)
    }

    /// Number of wired filters.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Total operator invocations so far (the work an optimizer tries to
    /// minimize: every invocation is CPU spent and, for index filters,
    /// potentially a network probe).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Tuples pushed in / tuples that survived every filter.
    pub fn throughput(&self) -> (u64, u64) {
        (self.tuples_in, self.tuples_out)
    }

    /// The per-operator observations, in wiring order.
    pub fn observations(&self) -> &[OperatorObservation] {
        &self.observations
    }

    /// Fold another eddy's observations into this one's (distributed eddies
    /// aggregating their statistics).  Operators are matched by position;
    /// mismatched lengths are ignored beyond the shorter prefix.
    pub fn absorb_observations(&mut self, remote: &[OperatorObservation]) {
        for (mine, theirs) in self.observations.iter_mut().zip(remote) {
            mine.merge(theirs);
        }
    }

    /// Decide the visiting order for the next tuple.
    fn route_order(&mut self) -> Vec<usize> {
        let n = self.filters.len();
        match self.policy {
            RoutingPolicy::Fixed => (0..n).collect(),
            RoutingPolicy::RoundRobin => {
                let start = self.round_robin_offset % n.max(1);
                self.round_robin_offset = self.round_robin_offset.wrapping_add(1);
                (0..n).map(|i| (start + i) % n).collect()
            }
            RoutingPolicy::Lottery => {
                // Ticket counts proportional to observed drop rate; break ties
                // with a small random jitter so equally-selective operators
                // share the first position (and keep being explored).
                let mut order: Vec<usize> = (0..n).collect();
                let jitter: Vec<f64> = (0..n).map(|_| self.rng.f64() * 0.05).collect();
                order.sort_by(|a, b| {
                    let score_a = self.observations[*a].drop_rate() + jitter[*a];
                    let score_b = self.observations[*b].drop_rate() + jitter[*b];
                    score_b
                        .partial_cmp(&score_a)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                order
            }
        }
    }

    /// Apply `order`'s filters to an owned tuple with full
    /// observation/invocation bookkeeping — the single materialised filter
    /// loop shared by per-tuple routing and the chunk path's fallbacks.
    fn apply_filters(&mut self, order: &[usize], tuple: Tuple) -> Option<Tuple> {
        let mut current = tuple;
        for &idx in order {
            self.invocations += 1;
            match self.filters[idx].apply(current) {
                Some(t) => {
                    self.observations[idx].record(false);
                    current = t;
                }
                None => {
                    self.observations[idx].record(true);
                    return None;
                }
            }
        }
        Some(current)
    }

    /// Route one tuple through the filters in the given order, maintaining
    /// all observation/throughput bookkeeping — shared by [`Eddy::route`]
    /// and [`Eddy::route_batch`]'s materialised path.
    fn route_with_order(&mut self, order: &[usize], tuple: Tuple) -> Option<Tuple> {
        self.tuples_in += 1;
        let survivor = self.apply_filters(order, tuple)?;
        self.tuples_out += 1;
        Some(survivor)
    }

    /// Route one borrowed chunk row through the filters in the given order,
    /// with the same observation/throughput bookkeeping as
    /// [`Eddy::route_with_order`] but no tuple materialisation.  Returns
    /// whether the row survives.  A filter that unexpectedly declines the
    /// chunk-wise decision (contract slip) finishes the row materialised;
    /// chunk-capable filters never transform, so survival is all that
    /// matters for the output mask.
    fn route_row_in_chunk(&mut self, order: &[usize], chunk: &ColumnChunk, r: usize) -> bool {
        self.tuples_in += 1;
        for (pos, &idx) in order.iter().enumerate() {
            self.invocations += 1;
            match self.filters[idx].apply_row(chunk, r) {
                Some(true) => self.observations[idx].record(false),
                Some(false) => {
                    self.observations[idx].record(true);
                    return false;
                }
                None => {
                    debug_assert!(false, "supports_chunks filter declined apply_row");
                    // Nothing was recorded for this filter yet: roll back the
                    // invocation count and finish the row through the shared
                    // materialised loop from this filter onward;
                    // chunk-capable filters never transform, so survival is
                    // all that matters for the mask.
                    self.invocations -= 1;
                    let survived = self.apply_filters(&order[pos..], chunk.row(r)).is_some();
                    if survived {
                        self.tuples_out += 1;
                    }
                    return survived;
                }
            }
        }
        self.tuples_out += 1;
        true
    }

    /// Route one tuple; returns the tuple if it survives every filter.
    pub fn route(&mut self, tuple: Tuple) -> Option<Tuple> {
        let order = self.next_order();
        self.route_with_order(&order, tuple)
    }

    /// Route a whole batch, emitting the survivors as re-chunked columnar
    /// output.  When every filter is chunk-capable
    /// ([`EddyFilter::supports_chunks`]) rows are decided over borrowed
    /// [`ChunkRow`](crate::tuple::ChunkRow) views and survivors leave as one
    /// filtered chunk per input chunk — zero per-row tuple materialisations;
    /// transforming filters fall back to materialised per-row routing.
    ///
    /// The visiting order is re-drawn every [`EDDY_REORDER_ROWS`] rows (not
    /// once per chunk), so observations keep feeding back into routing at a
    /// granularity independent of how arrivals were batched — a mid-stream
    /// selectivity flip re-orders the filters within a bounded number of
    /// rows even inside one huge chunk.  Produces the same survivor
    /// multiset as per-tuple routing, since the filters are commutative.
    pub fn route_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        let chunkable = self.filters.iter().all(|f| f.supports_chunks());
        let mut out = TupleBatch::default();
        for chunk in batch.chunks() {
            let mut order = self.next_order();
            if chunkable {
                let mut mask = vec![false; chunk.rows()];
                for (r, kept) in mask.iter_mut().enumerate() {
                    if r > 0 && r % EDDY_REORDER_ROWS == 0 {
                        order = self.next_order();
                    }
                    *kept = self.route_row_in_chunk(&order, chunk, r);
                }
                out.push_chunk(chunk.filter(&mask));
            } else {
                for r in 0..chunk.rows() {
                    if r > 0 && r % EDDY_REORDER_ROWS == 0 {
                        order = self.next_order();
                    }
                    if let Some(t) = self.route_with_order(&order, chunk.row(r)) {
                        out.push_tuple(t);
                    }
                }
            }
        }
        out
    }
}

impl LocalOperator for Eddy {
    fn name(&self) -> &'static str {
        "eddy"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        self.route(tuple).into_iter().collect()
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        self.route_batch(batch)
    }

    /// The eddy buffers nothing, so flush is the natural moment to sync its
    /// cumulative diagnostics into the hub (pipelines flush at window and
    /// aggregation boundaries).
    fn flush(&mut self) -> Vec<Tuple> {
        self.sync_telemetry();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(a: i64, b: i64, c: i64) -> Tuple {
        Tuple::new(
            "t",
            vec![
                ("a", Value::Int(a)),
                ("b", Value::Int(b)),
                ("c", Value::Int(c)),
            ],
        )
    }

    fn three_predicates() -> Vec<(String, Expr)> {
        vec![
            // Barely selective: a >= 0 passes everything in the workload.
            (
                "weak".to_string(),
                Expr::cmp(crate::expr::CmpOp::Ge, Expr::col("a"), Expr::lit(0i64)),
            ),
            // Medium: b < 50 passes half.
            (
                "medium".to_string(),
                Expr::cmp(crate::expr::CmpOp::Lt, Expr::col("b"), Expr::lit(50i64)),
            ),
            // Strong: c = 7 passes 1 %.
            ("strong".to_string(), Expr::eq("c", 7i64)),
        ]
    }

    fn workload(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| row(i, i % 100, i % 100)).collect()
    }

    #[test]
    fn all_policies_produce_the_same_result_set() {
        let tuples = workload(500);
        let mut results = Vec::new();
        for policy in [
            RoutingPolicy::Fixed,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Lottery,
        ] {
            let mut eddy = Eddy::over_predicates(three_predicates(), policy, 1);
            let survived: Vec<Tuple> = tuples
                .iter()
                .cloned()
                .filter_map(|t| eddy.route(t))
                .collect();
            results.push(survived.len());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[0], 5, "c = 7 matches 5 of the 500 rows");
    }

    #[test]
    fn lottery_does_less_work_than_a_bad_fixed_order() {
        let tuples = workload(2_000);
        // Fixed order as wired: weak, medium, strong — the worst order.
        let mut fixed = Eddy::over_predicates(three_predicates(), RoutingPolicy::Fixed, 1);
        // Lottery learns to put the strong predicate first.
        let mut lottery = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 1);
        for t in &tuples {
            fixed.route(t.clone());
            lottery.route(t.clone());
        }
        assert!(
            lottery.invocations() < fixed.invocations(),
            "lottery {} must beat bad fixed order {}",
            lottery.invocations(),
            fixed.invocations()
        );
    }

    #[test]
    fn observations_record_selectivity() {
        let mut eddy = Eddy::over_predicates(three_predicates(), RoutingPolicy::Fixed, 1);
        for t in workload(200) {
            eddy.route(t);
        }
        let obs = eddy.observations();
        assert_eq!(obs[0].seen, 200);
        assert!(
            obs[0].drop_rate() < 0.1,
            "weak predicate drops almost nothing"
        );
        assert!(
            obs[2].drop_rate() > 0.9,
            "strong predicate drops almost everything"
        );
        let (seen, out) = eddy.throughput();
        assert_eq!(seen, 200);
        assert!(out <= 2);
    }

    #[test]
    fn merged_observations_accumulate_counts() {
        let record = |drops: u64, passes: u64| {
            let mut o = OperatorObservation::default();
            for _ in 0..drops {
                o.record(true);
            }
            for _ in 0..passes {
                o.record(false);
            }
            o
        };
        let mut a = record(3, 7);
        let b = record(37, 3);
        a.merge(&b);
        assert_eq!(a.seen, 50);
        assert_eq!(a.dropped, 40);
        assert!((a.cumulative_drop_rate() - 0.8).abs() < 1e-9);
        // The decayed estimate also combines: mostly-dropping history on
        // both sides keeps the merged rate high.
        assert!(a.drop_rate() > 0.4, "decayed rate {}", a.drop_rate());
        assert_eq!(OperatorObservation::default().drop_rate(), 0.5);
        assert_eq!(OperatorObservation::default().cumulative_drop_rate(), 0.5);
    }

    #[test]
    fn precomputed_decay_matches_the_half_life_formula() {
        assert!((OBS_DECAY - 0.5_f64.powf(1.0 / OBS_HALF_LIFE_ROWS)).abs() < 1e-15);
    }

    #[test]
    fn decayed_drop_rate_tracks_recent_selectivity() {
        // 1 000 drops followed by two half-lives of passes: the cumulative
        // rate barely moves, the decayed rate collapses below 0.3.
        let mut o = OperatorObservation::default();
        for _ in 0..1_000 {
            o.record(true);
        }
        assert!(o.drop_rate() > 0.99);
        for _ in 0..(2.0 * OBS_HALF_LIFE_ROWS) as usize {
            o.record(false);
        }
        assert!(
            o.drop_rate() < 0.3,
            "decayed rate {} must forget the old regime within two half-lives",
            o.drop_rate()
        );
        assert!(
            o.cumulative_drop_rate() > 0.9,
            "cumulative rate {} keeps the full history",
            o.cumulative_drop_rate()
        );
    }

    #[test]
    fn absorbing_remote_observations_speeds_up_learning() {
        // A "remote" eddy has already seen the workload and learned the drop
        // rates; a fresh eddy that absorbs those observations should start
        // with near-optimal routing.
        let tuples = workload(1_000);
        let mut remote = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 3);
        for t in &tuples {
            remote.route(t.clone());
        }
        let mut cold = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 4);
        let mut warmed = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 4);
        warmed.absorb_observations(remote.observations());
        for t in &tuples {
            cold.route(t.clone());
            warmed.route(t.clone());
        }
        assert!(
            warmed.invocations() <= cold.invocations(),
            "warm start {} should not do more work than cold start {}",
            warmed.invocations(),
            cold.invocations()
        );
    }

    #[test]
    fn eddy_acts_as_a_local_operator_in_a_pipeline() {
        use crate::operators::Pipeline;
        let eddy = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 9);
        let mut p = Pipeline::new(vec![Box::new(eddy)]);
        let mut kept = 0;
        for t in workload(300) {
            kept += p.push(t).len();
        }
        assert_eq!(kept, 3, "c = 7 matches rows 7, 107, 207");
    }

    #[test]
    fn route_batch_survivors_match_per_tuple_routing_and_stay_chunked() {
        let tuples = workload(500);
        let mut per_tuple = Eddy::over_predicates(three_predicates(), RoutingPolicy::Fixed, 5);
        let mut batched = Eddy::over_predicates(three_predicates(), RoutingPolicy::Fixed, 5);
        let expected: Vec<Tuple> = tuples
            .iter()
            .cloned()
            .filter_map(|t| per_tuple.route(t))
            .collect();
        let got = batched.route_batch(&TupleBatch::new(tuples));
        // Pure predicate filters take the mask path: survivors come back as
        // one filtered chunk, not per-row tuples.
        assert!(got.chunks().len() <= 1);
        assert_eq!(got.into_tuples(), expected);
        assert_eq!(batched.throughput(), per_tuple.throughput());
    }

    #[test]
    fn redraw_within_chunk_adapts_to_a_mid_stream_selectivity_flip() {
        // Two filters whose selectivities flip mid-stream: rows 0..1000 are
        // all dropped by `flip_a` and all pass `flip_b`; rows 1000..4000 the
        // reverse.  The whole stream arrives as ONE 4000-row chunk, the
        // worst case for once-per-chunk routing (the stale order would cost
        // 2 invocations/row for the entire 3000-row tail ⇒ ≥ 7000 total).
        // Re-drawing the lottery every EDDY_REORDER_ROWS rows must re-order
        // the filters within a bounded number of rows of the flip:
        //   phase 1: ≤ EDDY_REORDER_ROWS rows at 2/row before `flip_a`
        //            (drop rate 1.0) takes the front, then 1/row;
        //   phase 2: the *exponentially decayed* drop rates cross — `flip_a`
        //            halves every OBS_HALF_LIFE_ROWS rows while `flip_b`
        //            climbs — within ~2 half-lives (≈ 96 rows) even against
        //            the worst-case 0.05 jitter, independent of how long
        //            phase 1 ran; then `flip_b` leads for good at 1/row.
        //            (Cumulative rates needed ~250 rows to overcome the
        //            1 000-row history; decay makes the budget constant.)
        let rows: Vec<Tuple> = (0..4000)
            .map(|i| {
                let phase = i64::from(i >= 1000);
                row(i, phase, phase)
            })
            .collect();
        let predicates = vec![
            ("flip_a".to_string(), Expr::eq("b", 1i64)),
            ("flip_b".to_string(), Expr::eq("c", 0i64)),
        ];
        let mut eddy = Eddy::over_predicates(predicates, RoutingPolicy::Lottery, 11);
        let batch = TupleBatch::new(rows);
        assert_eq!(batch.chunks().len(), 1, "one chunk, worst case");
        let survivors = eddy.route_batch(&batch);
        assert!(survivors.is_empty(), "no row passes both phases' filters");
        let bound = 4000 + 5 * EDDY_REORDER_ROWS as u64;
        assert!(
            eddy.invocations() <= bound,
            "re-drawn routing with decayed observations must spend ≤ {bound} \
             invocations, spent {} (a single order per chunk would spend \
             ≥ 7000; cumulative rates spent ≈ 4000 + 250)",
            eddy.invocations()
        );
        // After the crossover `flip_a` stops being visited: its seen count
        // stays within the same bounded window past the flip.
        assert!(
            eddy.observations()[0].seen <= 1000 + 5 * EDDY_REORDER_ROWS as u64,
            "stale filter kept receiving rows: {:?}",
            eddy.observations()
        );
    }

    #[test]
    fn round_robin_rotates_start_but_preserves_coverage() {
        let mut eddy = Eddy::over_predicates(three_predicates(), RoutingPolicy::RoundRobin, 2);
        // A tuple that passes everything visits all three filters regardless
        // of rotation.
        let survivor = row(7, 7, 7);
        for _ in 0..6 {
            assert!(eddy.route(survivor.clone()).is_some());
        }
        assert_eq!(eddy.invocations(), 18);
        assert_eq!(eddy.filter_count(), 3);
    }

    #[test]
    fn telemetry_reconciles_with_pipeline_operator_counters() {
        use crate::operators::Pipeline;

        let tel = Telemetry::attached();
        let mut eddy = Eddy::over_predicates(three_predicates(), RoutingPolicy::Lottery, 7);
        eddy.set_telemetry(tel.clone());
        let mut pipeline = Pipeline::new(vec![Box::new(eddy)]);
        pipeline.set_telemetry(&tel);

        let mut batch = TupleBatch::default();
        for i in 0..200i64 {
            batch.push_tuple(row(i, i % 100, i % 10));
        }
        let out = pipeline.push_batch(&batch);
        pipeline.flush(); // triggers the eddy's gauge sync

        // The pipeline's per-operator counters and the eddy's own cumulative
        // diagnostics describe the same stream.
        assert_eq!(tel.counter("op.eddy.rows_in"), 200);
        assert_eq!(tel.counter("op.eddy.rows_out"), out.len() as u64);
        assert_eq!(tel.gauge_value("eddy.tuples_in"), Some(200.0));
        assert_eq!(tel.gauge_value("eddy.tuples_out"), Some(out.len() as f64));

        // Per-operator drop counts account for every tuple the eddy lost.
        let dropped: f64 = (0..3)
            .map(|i| tel.gauge_value(&format!("eddy.op{i}.dropped")).unwrap())
            .sum();
        assert_eq!(dropped as u64, 200 - out.len() as u64);
        // And every invocation is a row seen by some operator.
        let seen: f64 = (0..3)
            .map(|i| tel.gauge_value(&format!("eddy.op{i}.seen")).unwrap())
            .sum();
        assert_eq!(Some(seen), tel.gauge_value("eddy.invocations"));
        // At least the initial order draw was reported.
        assert!(tel.counter("eddy.reorders") >= 1);
    }
}
