//! Aggregate functions and mergeable partial aggregates.
//!
//! Hierarchical aggregation (§3.3.4) requires each node to compute a
//! *partial* aggregate over its local data and intermediate nodes to combine
//! partials as they flow toward the aggregation-tree root.  That works for
//! *distributive* aggregates (COUNT, SUM, MIN, MAX) and *algebraic* ones
//! (AVG, carried as sum+count); *holistic* aggregates (e.g. MEDIAN) cannot
//! be combined from constant-size state, which the classification here makes
//! explicit.

use crate::tuple::{Schema, Tuple};
use crate::value::{Value, ValueRef};
use pier_runtime::WireSize;

/// Which aggregate function to compute.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(column)`.
    Sum(String),
    /// `MIN(column)`.
    Min(String),
    /// `MAX(column)`.
    Max(String),
    /// `AVG(column)` — algebraic: carried as (sum, count).
    Avg(String),
}

/// The paper's classification of aggregates by how they distribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggClass {
    /// Constant-size partial state, combine = same function (COUNT/SUM/MIN/MAX).
    Distributive,
    /// Constant-size partial state, combine ≠ final function (AVG).
    Algebraic,
    /// Needs all the data (not supported by hierarchical aggregation).
    Holistic,
}

impl AggFunc {
    /// Output column name (`count`, `sum_x`, …).
    pub fn output_column(&self) -> String {
        match self {
            AggFunc::Count => "count".to_string(),
            AggFunc::Sum(c) => format!("sum_{c}"),
            AggFunc::Min(c) => format!("min_{c}"),
            AggFunc::Max(c) => format!("max_{c}"),
            AggFunc::Avg(c) => format!("avg_{c}"),
        }
    }

    /// Distribution class of this aggregate.
    pub fn class(&self) -> AggClass {
        match self {
            AggFunc::Count | AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                AggClass::Distributive
            }
            AggFunc::Avg(_) => AggClass::Algebraic,
        }
    }

    /// Fresh accumulator state.
    pub fn init(&self) -> AggState {
        match self {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum(_) => AggState::Sum(0.0),
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Column this aggregate reads, if any.
    pub fn input_column(&self) -> Option<&str> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) => Some(c),
        }
    }
}

/// Constant-size partial aggregate state.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Running (sum, count) for AVG.
    Avg {
        /// Sum of inputs.
        sum: f64,
        /// Number of inputs.
        count: u64,
    },
}

impl WireSize for AggState {
    fn wire_size(&self) -> usize {
        match self {
            AggState::Count(_) | AggState::Sum(_) => 9,
            AggState::Min(v) | AggState::Max(v) => {
                1 + v.as_ref().map_or(0, pier_runtime::WireSize::wire_size)
            }
            AggState::Avg { .. } => 17,
        }
    }
}

impl AggState {
    /// Fold one input tuple into the accumulator (best-effort: tuples whose
    /// aggregated column is missing or non-numeric are ignored for numeric
    /// aggregates).
    pub fn update(&mut self, func: &AggFunc, tuple: &Tuple) {
        let value = match func.input_column() {
            Some(col) => tuple.get(col),
            None => None,
        };
        self.update_with(func, value);
    }

    /// Fold one already-extracted input value into the accumulator — the
    /// hot-path variant for operators that resolve the aggregate's input
    /// column to a schema index once instead of per tuple.  `value` is the
    /// aggregated column's value, or `None` when the column is absent (or
    /// for `COUNT(*)`, which takes no input).
    pub fn update_with(&mut self, func: &AggFunc, value: Option<&Value>) {
        self.update_ref(func, value.map(Value::as_ref));
    }

    /// [`AggState::update_with`] over a borrowed column view — what the
    /// chunk-at-a-time group-by paths feed straight from the typed buffers
    /// (no per-row [`Value`] materialisation; MIN/MAX of a string column
    /// allocate only when the extremum actually improves).
    pub fn update_ref(&mut self, func: &AggFunc, value: Option<ValueRef<'_>>) {
        match (self, func) {
            (AggState::Count(n), AggFunc::Count) => *n += 1,
            (AggState::Sum(s), AggFunc::Sum(_)) => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *s += v;
                }
            }
            (AggState::Min(m), AggFunc::Min(_)) => {
                if let Some(v) = value {
                    let better = match m {
                        None => true,
                        Some(cur) => {
                            matches!(v.compare_value(cur), Some(std::cmp::Ordering::Less))
                        }
                    };
                    if better {
                        *m = Some(v.to_value());
                    }
                }
            }
            (AggState::Max(m), AggFunc::Max(_)) => {
                if let Some(v) = value {
                    let better = match m {
                        None => true,
                        Some(cur) => {
                            matches!(v.compare_value(cur), Some(std::cmp::Ordering::Greater))
                        }
                    };
                    if better {
                        *m = Some(v.to_value());
                    }
                }
            }
            (AggState::Avg { sum, count }, AggFunc::Avg(_)) => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *sum += v;
                    *count += 1;
                }
            }
            _ => {}
        }
    }

    /// Decode the partial state that `tuple` carries for aggregate `func`
    /// (the inverse of the encoding `GroupBy` uses when it emits partials:
    /// one output column per aggregate, plus explicit `_sum`/`_count`
    /// companions for AVG).  `None` when the tuple lacks the column or its
    /// type does not fit — the caller discards it, per the best-effort
    /// policy.
    pub fn from_partial_tuple(func: &AggFunc, tuple: &Tuple) -> Option<AggState> {
        let col = func.output_column();
        let v = tuple.get(&col)?;
        match (func, v) {
            (AggFunc::Count, Value::Int(n)) => Some(AggState::Count(*n as u64)),
            (AggFunc::Sum(_), v) => v.as_f64().map(AggState::Sum),
            (AggFunc::Min(_), v) => Some(AggState::Min(Some(v.clone()))),
            (AggFunc::Max(_), v) => Some(AggState::Max(Some(v.clone()))),
            (AggFunc::Avg(_), _) => {
                let sum = tuple.get(&format!("{col}_sum")).and_then(Value::as_f64)?;
                let count = tuple.get(&format!("{col}_count")).and_then(Value::as_i64)?;
                Some(AggState::Avg {
                    sum,
                    count: count as u64,
                })
            }
            _ => None,
        }
    }

    /// Merge another partial of the same shape into this one (the combine
    /// step of hierarchical aggregation).  See [`PartialDecoder`] for the
    /// compiled (positional) decode used on the relay hot path.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(Some(b))) => {
                let better = match a {
                    None => true,
                    Some(cur) => matches!(b.compare(cur), Some(std::cmp::Ordering::Less)),
                };
                if better {
                    *a = Some(b.clone());
                }
            }
            (AggState::Max(a), AggState::Max(Some(b))) => {
                let better = match a {
                    None => true,
                    Some(cur) => matches!(b.compare(cur), Some(std::cmp::Ordering::Greater)),
                };
                if better {
                    *a = Some(b.clone());
                }
            }
            (AggState::Avg { sum: sa, count: ca }, AggState::Avg { sum: sb, count: cb }) => {
                *sa += sb;
                *ca += cb;
            }
            _ => {}
        }
    }

    /// Final output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum(s) => Value::Float(*s),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

/// Positional decoder for one aggregate's partial encoding within an
/// interned partial schema — the compiled counterpart of
/// [`AggState::from_partial_tuple`].  The output column (and AVG's
/// `_sum`/`_count` companions) resolve against the schema **once**; decoding
/// a row is then pure index access.  Relays that absorb streams of
/// closed-window partials compile one decoder per aggregate per schema
/// instead of re-resolving names per partial.
#[derive(Debug, Clone)]
pub struct PartialDecoder {
    value: usize,
    /// `(_sum, _count)` companion indices, present only for AVG.
    avg: Option<(usize, usize)>,
}

impl PartialDecoder {
    /// Compile the decoder for `func` against `schema`; `None` when the
    /// schema lacks a needed column (every per-tuple decode would fail too,
    /// so the caller can discard that shape wholesale).
    pub fn compile(func: &AggFunc, schema: &Schema) -> Option<PartialDecoder> {
        let col = func.output_column();
        let value = schema.position(&col)?;
        let avg = match func {
            AggFunc::Avg(_) => Some((
                schema.position(&format!("{col}_sum"))?,
                schema.position(&format!("{col}_count"))?,
            )),
            _ => None,
        };
        Some(PartialDecoder { value, avg })
    }

    /// Decode one row's partial state by index, over values parallel to the
    /// compiled schema — exactly the outcomes of
    /// [`AggState::from_partial_tuple`] on the materialised tuple.
    pub fn decode(&self, func: &AggFunc, values: &[Value]) -> Option<AggState> {
        let v = &values[self.value];
        match (func, v) {
            (AggFunc::Count, Value::Int(n)) => Some(AggState::Count(*n as u64)),
            (AggFunc::Sum(_), v) => v.as_f64().map(AggState::Sum),
            (AggFunc::Min(_), v) => Some(AggState::Min(Some(v.clone()))),
            (AggFunc::Max(_), v) => Some(AggState::Max(Some(v.clone()))),
            (AggFunc::Avg(_), _) => {
                let (sum_idx, count_idx) = self.avg?;
                let sum = values[sum_idx].as_f64()?;
                let count = values[count_idx].as_i64()?;
                Some(AggState::Avg {
                    sum,
                    count: count as u64,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(values: &[i64]) -> Vec<Tuple> {
        values
            .iter()
            .map(|&v| Tuple::new("t", vec![("x", Value::Int(v))]))
            .collect()
    }

    fn run(func: &AggFunc, inputs: &[i64]) -> Value {
        let mut state = func.init();
        for t in tuples(inputs) {
            state.update(func, &t);
        }
        state.finish()
    }

    #[test]
    fn basic_aggregates() {
        assert_eq!(run(&AggFunc::Count, &[1, 2, 3]), Value::Int(3));
        assert_eq!(
            run(&AggFunc::Sum("x".into()), &[1, 2, 3]),
            Value::Float(6.0)
        );
        assert_eq!(run(&AggFunc::Min("x".into()), &[5, 2, 9]), Value::Int(2));
        assert_eq!(run(&AggFunc::Max("x".into()), &[5, 2, 9]), Value::Int(9));
        assert_eq!(run(&AggFunc::Avg("x".into()), &[2, 4]), Value::Float(3.0));
    }

    #[test]
    fn merge_equals_single_site_computation() {
        // Split the input across three "nodes", merge the partials, and check
        // the answer equals computing over all data at one site.
        let all: Vec<i64> = (1..=30).collect();
        for func in [
            AggFunc::Count,
            AggFunc::Sum("x".into()),
            AggFunc::Min("x".into()),
            AggFunc::Max("x".into()),
            AggFunc::Avg("x".into()),
        ] {
            let reference = run(&func, &all);
            let mut merged = func.init();
            for chunk in all.chunks(10) {
                let mut partial = func.init();
                for t in tuples(chunk) {
                    partial.update(&func, &t);
                }
                merged.merge(&partial);
            }
            assert_eq!(merged.finish(), reference, "{func:?}");
        }
    }

    #[test]
    fn malformed_tuples_are_ignored_by_numeric_aggregates() {
        let func = AggFunc::Sum("x".into());
        let mut state = func.init();
        state.update(&func, &Tuple::new("t", vec![("x", Value::Int(5))]));
        state.update(
            &func,
            &Tuple::new("t", vec![("x", Value::Str("bad".into()))]),
        );
        state.update(&func, &Tuple::new("t", vec![("y", Value::Int(7))]));
        assert_eq!(state.finish(), Value::Float(5.0));
    }

    #[test]
    fn classification() {
        assert_eq!(AggFunc::Count.class(), AggClass::Distributive);
        assert_eq!(AggFunc::Sum("x".into()).class(), AggClass::Distributive);
        assert_eq!(AggFunc::Avg("x".into()).class(), AggClass::Algebraic);
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(AggFunc::Count.init().finish(), Value::Int(0));
        assert_eq!(AggFunc::Min("x".into()).init().finish(), Value::Null);
        assert_eq!(AggFunc::Avg("x".into()).init().finish(), Value::Null);
    }

    #[test]
    fn output_columns() {
        assert_eq!(AggFunc::Count.output_column(), "count");
        assert_eq!(AggFunc::Sum("x".into()).output_column(), "sum_x");
        assert_eq!(AggFunc::Avg("load".into()).output_column(), "avg_load");
        assert_eq!(AggFunc::Sum("x".into()).input_column(), Some("x"));
        assert_eq!(AggFunc::Count.input_column(), None);
    }
}
