//! Recursive queries: semi-naive evaluation of reachability over link
//! tables (§3.3.2).
//!
//! "PIER supports UFL graphs with cycles, and such recursive queries in
//! PIER are the topic of research beyond the scope of this paper [42]" —
//! the reference being the *declarative routing* work, whose canonical
//! query is network reachability / path finding over a distributed `links`
//! table.  This module provides the local evaluation machinery for that
//! query class:
//!
//! * [`TransitiveClosure`] — a complete local semi-naive fixpoint evaluator
//!   over edge tuples, used as the reference implementation in tests and
//!   for purely local data, and
//! * [`ReachabilityRound`] — the per-iteration step of the *distributed*
//!   evaluation: given the current frontier and the link tuples fetched for
//!   it (by a Fetch Matches join against the DHT-published `links` table,
//!   one round per hop), it produces the next frontier and the newly
//!   discovered nodes.  The driver that issues the per-round distributed
//!   joins lives in `pier-harness`, mirroring how a cyclic UFL opgraph
//!   feeds its own output namespace back into its source.
//!
//! Semi-naive evaluation only ever joins the *delta* (the newly discovered
//! frontier) with the link table, so each round's distributed work is
//! proportional to the new facts, not to everything discovered so far.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Canonical node name used for frontier membership: plain text for string
/// values (so callers can pass node names like `"10.0.0.7"` directly as the
/// start), the typed key string otherwise.
fn node_name(value: &Value) -> String {
    value
        .as_str()
        .map_or_else(|| value.key_string(), str::to_string)
}

/// A local semi-naive transitive-closure evaluator over edge tuples.
#[derive(Debug, Clone, Default)]
pub struct TransitiveClosure {
    /// Adjacency: src → set of dst.
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl TransitiveClosure {
    /// Create an empty evaluator.
    pub fn new() -> Self {
        TransitiveClosure::default()
    }

    /// Add one edge from an edge tuple with the given source and destination
    /// columns; malformed tuples (missing columns) are discarded, per the
    /// best-effort policy of §3.3.4.  Returns whether the edge was added.
    pub fn add_edge_tuple(&mut self, tuple: &Tuple, src_col: &str, dst_col: &str) -> bool {
        match (tuple.get(src_col), tuple.get(dst_col)) {
            (Some(s), Some(d)) => {
                self.add_edge(node_name(s), node_name(d));
                true
            }
            _ => false,
        }
    }

    /// Add one edge by key strings.
    pub fn add_edge(&mut self, src: String, dst: String) {
        self.edges.entry(src).or_default().insert(dst);
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Direct successors of `node`.
    pub fn successors(&self, node: &str) -> Vec<String> {
        self.edges
            .get(node)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All nodes reachable from `start` (excluding `start` itself unless it
    /// lies on a cycle back to itself), computed by semi-naive fixpoint
    /// iteration.  Also returns the number of iterations (the longest
    /// shortest-path length discovered), which the distributed driver uses
    /// to report round counts.
    pub fn reachable_from(&self, start: &str) -> (BTreeSet<String>, usize) {
        let mut reached: BTreeSet<String> = BTreeSet::new();
        let mut frontier: BTreeSet<String> = BTreeSet::new();
        frontier.insert(start.to_string());
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            let mut next: BTreeSet<String> = BTreeSet::new();
            for node in &frontier {
                for dst in self.successors(node) {
                    if !reached.contains(&dst) && !frontier.contains(&dst) {
                        next.insert(dst);
                    }
                }
            }
            // The frontier becomes part of the reached set; the brand-new
            // nodes form the next delta.
            for f in &frontier {
                if f != start {
                    reached.insert(f.clone());
                }
            }
            // Self-loops / cycles back to the start are reported too.
            if next.contains(start) {
                reached.insert(start.to_string());
                next.remove(start);
            }
            frontier = next;
            rounds += 1;
        }
        (reached, rounds.saturating_sub(1))
    }

    /// The full transitive closure as (src, dst) pairs — the reference
    /// answer used to validate the distributed evaluation in tests.
    pub fn closure(&self) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        let sources: BTreeSet<String> = self
            .edges
            .keys()
            .cloned()
            .chain(self.edges.values().flatten().cloned())
            .collect();
        for src in sources {
            let (reached, _) = self.reachable_from(&src);
            for dst in reached {
                out.insert((src.clone(), dst));
            }
        }
        out
    }
}

/// One round of the distributed semi-naive evaluation.
///
/// The distributed driver keeps the set of already-reached nodes and the
/// current frontier.  Each round it issues one distributed index join: for
/// every frontier node, a Fetch Matches probe against the `links` table
/// (published in the DHT hashed on the source column) returns that node's
/// outgoing edges.  Feeding those result tuples into
/// [`ReachabilityRound::absorb`] yields the next frontier.
#[derive(Debug, Clone)]
pub struct ReachabilityRound {
    src_col: String,
    dst_col: String,
    reached: BTreeSet<String>,
    frontier: BTreeSet<String>,
    rounds: usize,
}

impl ReachabilityRound {
    /// Start an evaluation from `start` over edges with the given columns.
    pub fn new(start: &str, src_col: &str, dst_col: &str) -> Self {
        let mut frontier = BTreeSet::new();
        frontier.insert(start.to_string());
        ReachabilityRound {
            src_col: src_col.to_string(),
            dst_col: dst_col.to_string(),
            reached: BTreeSet::new(),
            frontier,
            rounds: 0,
        }
    }

    /// The current frontier — the probe keys of the next distributed join.
    pub fn frontier(&self) -> &BTreeSet<String> {
        &self.frontier
    }

    /// Everything discovered so far (excluding the start node).
    pub fn reached(&self) -> &BTreeSet<String> {
        &self.reached
    }

    /// Number of completed rounds (network hops explored).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// True when the fixpoint is reached (empty frontier → no more joins).
    pub fn done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Absorb the edge tuples fetched for the current frontier and advance
    /// to the next round.  Tuples whose source is not in the frontier (stale
    /// or misrouted results) and malformed tuples are ignored.  Returns the
    /// newly discovered nodes.
    pub fn absorb(&mut self, edge_tuples: &[Tuple]) -> BTreeSet<String> {
        let mut newly = BTreeSet::new();
        for t in edge_tuples {
            let (Some(src), Some(dst)) = (t.get(&self.src_col), t.get(&self.dst_col)) else {
                continue;
            };
            let src = node_name(src);
            let dst = node_name(dst);
            if !self.frontier.contains(&src) {
                continue;
            }
            if !self.reached.contains(&dst) && !self.frontier.contains(&dst) {
                newly.insert(dst);
            }
        }
        // Frontier nodes are now fully explored.
        self.reached.extend(self.frontier.iter().cloned());
        self.frontier = newly.clone();
        self.rounds += 1;
        newly
    }

    /// Build the result tuples a client would receive: one `(node, hops)`
    /// row per reached node is not tracked here (hop counts require keeping
    /// per-round snapshots), so this returns one row per reached node.
    pub fn result_tuples(&self, table: &str) -> Vec<Tuple> {
        self.reached
            .iter()
            .map(|n| Tuple::new(table, vec![("node", Value::str(n))]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: &str, dst: &str) -> Tuple {
        Tuple::new(
            "links",
            vec![
                ("src", Value::Str(src.into())),
                ("dst", Value::Str(dst.into())),
            ],
        )
    }

    fn chain_and_branch() -> TransitiveClosure {
        // a → b → c → d, b → e, plus disconnected x → y.
        let mut tc = TransitiveClosure::new();
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "d"), ("b", "e"), ("x", "y")] {
            assert!(tc.add_edge_tuple(&edge(s, d), "src", "dst"));
        }
        tc
    }

    #[test]
    fn reachability_over_a_chain_with_branches() {
        let tc = chain_and_branch();
        let (reached, rounds) = tc.reachable_from("a");
        let expect: BTreeSet<String> = ["b", "c", "d", "e"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(reached, expect);
        assert_eq!(rounds, 3, "d is three hops from a");
        let (from_x, _) = tc.reachable_from("x");
        assert_eq!(from_x.len(), 1);
        let (from_d, _) = tc.reachable_from("d");
        assert!(from_d.is_empty());
    }

    #[test]
    fn cycles_terminate_and_include_the_start() {
        let mut tc = TransitiveClosure::new();
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "a")] {
            tc.add_edge(s.into(), d.into());
        }
        let (reached, _) = tc.reachable_from("a");
        let expect: BTreeSet<String> = ["a", "b", "c"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(reached, expect, "a cycle reaches back to the start");
    }

    #[test]
    fn malformed_edges_are_discarded() {
        let mut tc = TransitiveClosure::new();
        let missing_dst = Tuple::new("links", vec![("src", Value::Str("a".into()))]);
        assert!(!tc.add_edge_tuple(&missing_dst, "src", "dst"));
        assert_eq!(tc.edge_count(), 0);
    }

    #[test]
    fn closure_contains_every_derivable_pair() {
        let tc = chain_and_branch();
        let closure = tc.closure();
        assert!(closure.contains(&("a".into(), "d".into())));
        assert!(closure.contains(&("b".into(), "d".into())));
        assert!(!closure.contains(&("a".into(), "y".into())));
        assert!(!closure.contains(&("d".into(), "a".into())));
    }

    #[test]
    fn round_based_evaluation_matches_the_local_fixpoint() {
        let tc = chain_and_branch();
        // Simulate the distributed rounds: each round fetches the outgoing
        // edges of the frontier from the adjacency structure.
        let mut rounds = ReachabilityRound::new("a", "src", "dst");
        let mut guard = 10;
        while !rounds.done() && guard > 0 {
            let fetched: Vec<Tuple> = rounds
                .frontier()
                .iter()
                .flat_map(|n| tc.successors(n).into_iter().map(move |d| edge(n, &d)))
                .collect();
            rounds.absorb(&fetched);
            guard -= 1;
        }
        let (expected, hops) = tc.reachable_from("a");
        let mut got = rounds.reached().clone();
        got.remove("a"); // the round evaluator counts the start as reached
        assert_eq!(got, expected);
        assert_eq!(
            rounds.rounds(),
            hops + 1,
            "one extra round discovers emptiness"
        );
        assert_eq!(
            rounds.result_tuples("reachable").len(),
            rounds.reached().len()
        );
    }

    #[test]
    fn absorb_ignores_stale_and_malformed_tuples() {
        let mut r = ReachabilityRound::new("a", "src", "dst");
        let newly = r.absorb(&[
            edge("a", "b"),
            edge("z", "q"), // not in frontier
            Tuple::new("links", vec![("src", Value::Str("a".into()))]), // malformed
        ]);
        assert_eq!(newly.len(), 1);
        assert!(newly.contains("b"));
        assert!(r.reached().contains("a"));
        assert!(!r.reached().contains("q"));
    }
}
