//! The admission-control seam: static cost/boundedness gating of queries.
//!
//! PIQL (see PAPERS.md) makes query cost a first-class, *predeclared*
//! contract: "success-tolerant" applications only run queries whose
//! operation count is provably bounded before execution.  This module is
//! the `pier-core` side of that idea — the executor consults an
//! [`AdmissionControl`] implementation at the proxy, **before
//! dissemination**, and either admits the plan untouched, degrades it to a
//! sampled plan (shed-to-sampling, [`QueryPlan::sample_every`]), or rejects
//! it outright with a machine-readable cost report.
//!
//! Like the multi-query sharing seam ([`crate::sharing`]), the trait lives
//! here but the implementation lives upstack (`pier-analyze`, which walks
//! compiled plans and derives the static [`CostReport`]-style bounds); the
//! function-pointer factory keeps `pier-core` free of a dependency cycle.
//! A node built without a factory behaves exactly as before: every query is
//! admitted unconditionally and no report is produced.
//!
//! Budgets are **per tenant** ([`QueryPlan::tenant`]): each tenant has an
//! SLO budget covering predicted rows touched per window per node, window
//! state bytes per node, message volume per flush and root fan-in, and the
//! proxy charges each admitted standing query against it until the query
//! ends.  Admission is proxy-local by design — consistent with PIER's
//! relaxed-consistency stance, there is no global admission coordinator;
//! a tenant's budget is enforced at the proxy its queries are submitted to.

use crate::plan::QueryPlan;
use pier_telemetry::Telemetry;
use std::collections::BTreeMap;

/// Assumptions about the deployment the static cost model multiplies its
/// per-plan bounds by.  These are *declared* inputs, not measurements: a
/// report derived from an `EnvModel` upper-bounds the measured counters of
/// any run whose actual environment stays within these figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvModel {
    /// Nodes participating in a broadcast-disseminated plan.
    pub nodes: u64,
    /// Worst-case stream events per node per second of virtual time.
    pub events_per_node_per_sec: u64,
    /// Worst-case encoded bytes per value (group key parts, accumulator
    /// scalars).
    pub bytes_per_value: u64,
    /// Assumed distinct values of a column no predicate constrains (the
    /// group-count assumption behind `ConditionallyBounded` verdicts).
    pub distinct_values: u64,
    /// Assumed stored rows per node of a table a one-shot query scans.
    pub table_rows_per_node: u64,
}

impl Default for EnvModel {
    fn default() -> Self {
        EnvModel {
            nodes: 64,
            events_per_node_per_sec: 16,
            bytes_per_value: 32,
            distinct_values: 4_096,
            table_rows_per_node: 100_000,
        }
    }
}

/// One tenant's SLO budget: ceilings on the *predicted* per-query cost the
/// proxy will accept on this tenant's behalf.  All ceilings are cumulative
/// over the tenant's concurrently admitted queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBudget {
    /// Ceiling on predicted rows touched per window per node.
    pub max_rows_per_window_per_node: u64,
    /// Ceiling on predicted worst-case window state bytes per node.
    pub max_state_bytes_per_node: u64,
    /// Ceiling on predicted `PutBatch` entries shipped per flush per node.
    pub max_entries_per_flush: u64,
    /// Ceiling on predicted fan-in at the query's aggregation/window root.
    pub max_root_fan_in: u64,
    /// Accept `ConditionallyBounded` verdicts (bounds resting on the
    /// [`EnvModel`] distinct-values / table-size assumptions).  Verdicts of
    /// `Unbounded` are always rejected.
    pub allow_conditional: bool,
    /// Degrade over-budget standing queries to a sampled plan instead of
    /// rejecting them, when a sampling rate exists that fits the remaining
    /// budget.
    pub shed_to_sampling: bool,
}

impl Default for SloBudget {
    fn default() -> Self {
        SloBudget {
            max_rows_per_window_per_node: 1 << 20,
            max_state_bytes_per_node: 64 << 20,
            max_entries_per_flush: 1 << 20,
            max_root_fan_in: 1 << 16,
            allow_conditional: true,
            shed_to_sampling: true,
        }
    }
}

/// The proxy-wide admission policy: the environment model plus per-tenant
/// budgets (tenants not listed get the default budget).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloPolicy {
    /// Budget applied to tenants without an explicit entry.
    pub default_budget: SloBudget,
    /// Per-tenant overrides, keyed by [`QueryPlan::tenant`].
    pub tenants: BTreeMap<u64, SloBudget>,
    /// Deployment assumptions the cost model scales by.
    pub env: EnvModel,
    /// The cluster executes share-eligible plans through a sharing layer
    /// (`pier-mqo`): follow-on members of an existing group are charged
    /// marginal cost, and share-eligible plans are never degraded to
    /// sampling (a sampled member would distort the group's shared store).
    pub shared_execution: bool,
}

impl SloPolicy {
    /// The budget applying to `tenant`.
    pub fn budget_for(&self, tenant: u64) -> SloBudget {
        self.tenants
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_budget)
    }
}

/// The decision arm of an admission outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The plan runs as submitted.
    Admit,
    /// The plan runs degraded: every node keeps only one in `sample_every`
    /// source rows for this query ([`QueryPlan::sample_every`]).
    Shed {
        /// The derived sampling modulus (≥ 2).
        sample_every: u32,
    },
    /// The plan does not run.
    Reject {
        /// Human-readable reason (the machine-readable detail is in the
        /// accompanying report).
        reason: String,
    },
}

/// An admission outcome: the decision plus the machine-readable static
/// cost report (JSON, produced by the analyzer) that justifies it.
#[derive(Debug, Clone)]
pub struct AdmissionDecision {
    /// What the proxy should do with the plan.
    pub verdict: AdmissionVerdict,
    /// The static cost report as a JSON object string (schema documented in
    /// `docs/ANALYSIS.md`).  Present for every decision, including admits.
    pub report: String,
}

impl AdmissionDecision {
    /// An unconditional admit with an empty report (the behaviour of a node
    /// built without an admission layer).
    pub fn admit_unchecked() -> Self {
        AdmissionDecision {
            verdict: AdmissionVerdict::Admit,
            report: String::new(),
        }
    }
}

/// The admission layer a proxy consults before disseminating a plan.
///
/// Implementations derive a static cost/boundedness report for the plan,
/// charge it against the tenant's [`SloBudget`], and answer with one of the
/// three [`AdmissionVerdict`] arms.  `release` returns an admitted query's
/// charge to its tenant's budget when the query ends.
pub trait AdmissionControl: std::fmt::Debug {
    /// Install the policy (budgets + environment model).  Called once at
    /// node construction, before any `assess`.
    fn configure(&mut self, policy: &SloPolicy);

    /// Attach the node's telemetry handle.
    fn set_telemetry(&mut self, tel: &Telemetry);

    /// Assess a plan about to be disseminated from this proxy.  On
    /// `Admit`/`Shed` the charge is recorded against the plan's tenant
    /// until [`AdmissionControl::release`].
    fn assess(&mut self, plan: &QueryPlan) -> AdmissionDecision;

    /// The admitted query ended (timeout or teardown): return its charge.
    fn release(&mut self, query_id: u64);

    /// Queries currently holding budget (diagnostics).
    fn admitted(&self) -> usize;
}

/// Constructor for the admission layer, carried by value in
/// [`crate::node::PierConfig`] (a plain function pointer keeps the config
/// `Clone` and the dependency arrow pointing at `pier-core`, exactly like
/// [`crate::sharing::SharingFactory`]).
pub type AdmissionFactory = fn() -> Box<dyn AdmissionControl + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_budget_lookup_falls_back_to_default() {
        let mut policy = SloPolicy::default();
        let tight = SloBudget {
            max_rows_per_window_per_node: 10,
            ..SloBudget::default()
        };
        policy.tenants.insert(7, tight);
        assert_eq!(policy.budget_for(7).max_rows_per_window_per_node, 10);
        assert_eq!(
            policy.budget_for(8).max_rows_per_window_per_node,
            SloBudget::default().max_rows_per_window_per_node
        );
    }

    #[test]
    fn unchecked_admit_is_an_admit() {
        let d = AdmissionDecision::admit_unchecked();
        assert_eq!(d.verdict, AdmissionVerdict::Admit);
        assert!(d.report.is_empty());
    }
}
