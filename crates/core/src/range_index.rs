//! The range-predicate index: PHT-style prefix buckets over the DHT
//! (§3.3.3 "Range Index Substrate").
//!
//! PIER's three distributed indexes are the broadcast tree (true
//! predicates), the DHT itself (equality predicates) and the **Prefix Hash
//! Tree** for range predicates — "essentially a resilient distributed trie
//! implemented over DHTs" whose nodes are addressed by binary prefixes of
//! the key space.  The paper notes the PHT had been implemented on the DHT
//! codebase but "[had] yet to [be] integrate[d] into PIER"; this module is
//! that integration.
//!
//! The published structure follows the PHT addressing scheme with the trie
//! truncated at a fixed depth (every leaf lives at level `prefix_bits`):
//! a value is stored in the DHT under the namespace of its table with the
//! partition key `"rng:<prefix>"`, where `<prefix>` is the high
//! `prefix_bits` bits of the value rendered in binary.  A range query
//! computes the set of leaf prefixes overlapping `[lo, hi]` and disseminates
//! its opgraph to exactly those partitions ([`Dissemination::ByRange`]),
//! instead of broadcasting to every node.  The trade-off is the classic
//! PHT one: more prefix bits → finer dissemination but more partitions (and
//! more publish traffic per value); fewer bits → coarser buckets that
//! over-approximate the range.
//!
//! The dynamic leaf split/merge of the full PHT is implemented in the
//! `pier-pht` crate; truncating at a fixed level keeps the *distributed*
//! integration simple while preserving the property the paper's ablation
//! cares about — a range query touches `O(buckets overlapping the range)`
//! nodes rather than all of them.

use crate::expr::{CmpOp, Expr};
use crate::plan::{
    Dissemination, OpGraph, OperatorSpec, PlanBuilder, QueryPlan, SinkSpec, SourceSpec,
};
use crate::tuple::Tuple;
use pier_runtime::{Duration, NodeAddr};

/// Configuration of a fixed-depth prefix range index over a non-negative
/// integer column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeIndexConfig {
    /// Number of bits of the value that form the bucket prefix (the trie
    /// depth at which every leaf lives).  `2^prefix_bits` buckets exist.
    pub prefix_bits: u32,
    /// Total width of the indexed domain in bits; values are clamped into
    /// `[0, 2^domain_bits)`.
    pub domain_bits: u32,
}

impl RangeIndexConfig {
    /// A small default: 6-bit prefixes (64 buckets) over a 32-bit domain.
    pub fn new(prefix_bits: u32, domain_bits: u32) -> Self {
        assert!((1..=63).contains(&domain_bits), "domain must be 1–63 bits");
        assert!(
            prefix_bits >= 1 && prefix_bits <= domain_bits,
            "prefix bits must be between 1 and domain_bits"
        );
        RangeIndexConfig {
            prefix_bits,
            domain_bits,
        }
    }

    /// Number of buckets (trie leaves).
    pub fn bucket_count(&self) -> u64 {
        1u64 << self.prefix_bits
    }

    /// Width of one bucket in domain units.
    pub fn bucket_width(&self) -> u64 {
        1u64 << (self.domain_bits - self.prefix_bits)
    }

    fn clamp(&self, value: i64) -> u64 {
        let max = (1u64 << self.domain_bits) - 1;
        if value < 0 {
            0
        } else {
            (value as u64).min(max)
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(&self, value: i64) -> u64 {
        self.clamp(value) >> (self.domain_bits - self.prefix_bits)
    }

    /// The DHT partition key ("rng:<binary prefix>") of a value's bucket —
    /// the PHT leaf label.
    pub fn bucket_key(&self, value: i64) -> String {
        self.label(self.bucket_of(value))
    }

    /// The label of bucket `index`.
    pub fn label(&self, index: u64) -> String {
        format!("rng:{:0width$b}", index, width = self.prefix_bits as usize)
    }

    /// The labels of every bucket overlapping `[lo, hi]` (inclusive).  An
    /// empty range yields no buckets.
    pub fn buckets_for_range(&self, lo: i64, hi: i64) -> Vec<String> {
        if hi < lo {
            return Vec::new();
        }
        let first = self.bucket_of(lo);
        let last = self.bucket_of(hi);
        (first..=last).map(|b| self.label(b)).collect()
    }

    /// The value interval `[start, end)` covered by bucket `index` — what a
    /// node needs to know to filter bucket contents down to the exact range.
    pub fn bucket_interval(&self, index: u64) -> (i64, i64) {
        let width = self.bucket_width();
        let start = index * width;
        (start as i64, (start + width) as i64)
    }
}

/// Build a range-scan plan over `table.column ∈ [lo, hi]` using the range
/// index: the opgraph is disseminated only to the partitions of the buckets
/// that overlap the range, each of which applies the exact predicate before
/// shipping results to the proxy.
#[allow(clippy::too_many_arguments)]
pub fn range_scan_plan(
    proxy: NodeAddr,
    table: &str,
    column: &str,
    lo: i64,
    hi: i64,
    config: RangeIndexConfig,
    projection: Vec<String>,
    timeout: Duration,
) -> QueryPlan {
    let buckets = config.buckets_for_range(lo, hi);
    let mut ops = vec![OperatorSpec::Selection(Expr::all(vec![
        Expr::cmp(CmpOp::Ge, Expr::col(column), Expr::lit(lo)),
        Expr::cmp(CmpOp::Le, Expr::col(column), Expr::lit(hi)),
    ]))];
    if !projection.is_empty() {
        ops.push(OperatorSpec::Projection(projection));
    }
    PlanBuilder::new(proxy)
        .dissemination(Dissemination::ByRange {
            namespace: table.to_string(),
            bucket_keys: buckets,
        })
        .timeout(timeout)
        .opgraph(OpGraph {
            id: 0,
            source: SourceSpec::Table {
                namespace: table.to_string(),
            },
            join: None,
            ops,
            sink: SinkSpec::ToProxy,
        })
        .build()
}

/// The partition key a publisher must use when publishing `tuple` into the
/// range index of `table` on `column` (`None` when the tuple lacks the
/// column or it is not an integer — malformed tuples are simply not
/// indexed).
pub fn publish_key(column: &str, config: RangeIndexConfig, tuple: &Tuple) -> Option<String> {
    let value = tuple.get(column)?.as_i64()?;
    Some(config.bucket_key(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn bucket_arithmetic_is_consistent() {
        let cfg = RangeIndexConfig::new(4, 16);
        assert_eq!(cfg.bucket_count(), 16);
        assert_eq!(cfg.bucket_width(), 4096);
        assert_eq!(cfg.bucket_of(0), 0);
        assert_eq!(cfg.bucket_of(4095), 0);
        assert_eq!(cfg.bucket_of(4096), 1);
        assert_eq!(cfg.bucket_of(65535), 15);
        // Out-of-domain values clamp instead of panicking (best effort).
        assert_eq!(cfg.bucket_of(-5), 0);
        assert_eq!(cfg.bucket_of(1 << 20), 15);
        let (start, end) = cfg.bucket_interval(3);
        assert_eq!((start, end), (12288, 16384));
    }

    #[test]
    fn labels_are_fixed_width_binary_prefixes() {
        let cfg = RangeIndexConfig::new(4, 16);
        assert_eq!(cfg.label(0), "rng:0000");
        assert_eq!(cfg.label(5), "rng:0101");
        assert_eq!(cfg.label(15), "rng:1111");
        assert_eq!(cfg.bucket_key(4097), "rng:0001");
    }

    #[test]
    fn range_covers_exactly_the_overlapping_buckets() {
        let cfg = RangeIndexConfig::new(4, 16);
        // [4000, 9000] touches buckets 0, 1 and 2.
        let buckets = cfg.buckets_for_range(4000, 9000);
        assert_eq!(buckets, vec!["rng:0000", "rng:0001", "rng:0010"]);
        // A range within one bucket touches only it.
        assert_eq!(cfg.buckets_for_range(100, 200), vec!["rng:0000"]);
        // Inverted ranges are empty.
        assert!(cfg.buckets_for_range(10, 5).is_empty());
        // The full domain touches every bucket.
        assert_eq!(cfg.buckets_for_range(0, 65535).len(), 16);
    }

    #[test]
    fn publish_key_follows_the_indexed_column() {
        let cfg = RangeIndexConfig::new(4, 16);
        let t = Tuple::new("readings", vec![("temp", Value::Int(5000))]);
        assert_eq!(publish_key("temp", cfg, &t), Some("rng:0001".to_string()));
        let missing = Tuple::new("readings", vec![("other", Value::Int(1))]);
        assert_eq!(publish_key("temp", cfg, &missing), None);
        let wrong_type = Tuple::new("readings", vec![("temp", Value::Str("hot".into()))]);
        assert_eq!(publish_key("temp", cfg, &wrong_type), None);
    }

    #[test]
    fn range_scan_plan_disseminates_by_range_and_filters_exactly() {
        let cfg = RangeIndexConfig::new(4, 16);
        let plan = range_scan_plan(
            NodeAddr(1),
            "readings",
            "temp",
            4000,
            9000,
            cfg,
            vec!["temp".to_string()],
            5_000_000,
        );
        match &plan.dissemination {
            Dissemination::ByRange {
                namespace,
                bucket_keys,
            } => {
                assert_eq!(namespace, "readings");
                assert_eq!(bucket_keys.len(), 3);
            }
            other => panic!("expected ByRange, got {other:?}"),
        }
        assert_eq!(plan.opgraphs[0].ops.len(), 2);
    }

    #[test]
    #[should_panic(expected = "prefix bits")]
    fn prefix_wider_than_domain_is_rejected() {
        RangeIndexConfig::new(20, 16);
    }
}
