//! The multi-query sharing seam: the executor-side contract of `pier-mqo`.
//!
//! PIER's stated target is *thousands* of simultaneous continuous queries —
//! network-monitoring deployments where many users install near-identical
//! standing queries differing only in constants.  Cross-query work sharing
//! is the decisive optimization at that scale, and it is a *separable
//! subsystem*: plan normalization, predicate indexing and share-group state
//! live in the `pier-mqo` crate, while the executor ([`crate::node`]) only
//! knows this trait.  A node constructed with a
//! [`SharingFactory`](crate::node::PierConfig::sharing) routes query
//! install/uninstall, ingest chunks, window-partial relays and window ticks
//! through the layer; without one it behaves exactly as before.
//!
//! The protocol, in the order a query experiences it:
//!
//! 1. **Install** — a disseminated plan is offered to the layer first
//!    ([`MultiQuerySharing::try_install`]).  If the plan normalizes into a
//!    share group (see `pier-mqo`), the layer absorbs the query as a
//!    *member* and the executor builds **no** per-query dataflow; the
//!    executor arms the member's lease/timeout timers and — for a group's
//!    first member — the group's window-tick chain.
//! 2. **Ingest** — each arriving [`ColumnChunk`] of a namespace some group
//!    reads is handed to the layer **once**
//!    ([`MultiQuerySharing::absorb_chunk`]); the layer fans it out to all
//!    members via its predicate index.
//! 3. **Ticks** — per group (not per member), the executor drives window
//!    maintenance ([`MultiQuerySharing::tick`]): the layer returns one
//!    partial stream to ship toward the group's root and per-member
//!    emissions the executor forwards to each member's proxy.
//! 4. **Teardown** — timeouts and lease lapses route through
//!    [`MultiQuerySharing::uninstall`]; when a group loses its last member
//!    the layer retires it and the executor sweeps its interned schemas
//!    ([`is_share_scoped_table`]), so nothing leaks.

use crate::plan::QueryPlan;
use crate::tuple::{ColumnChunk, Tuple};
use pier_runtime::{Duration, NodeAddr, SimTime};

/// Constructor hook for a sharing layer, carried by
/// [`PierConfig`](crate::node::PierConfig) (a plain function pointer so the
/// config stays `Clone`).  `pier-mqo` exports one.
pub type SharingFactory = fn() -> Box<dyn MultiQuerySharing + Send>;

/// Outcome of offering a plan to the sharing layer.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallOutcome {
    /// The plan does not normalize into a share group; the executor must
    /// install it independently, exactly as without a sharing layer.
    NotShareable,
    /// The query joined a share group; the executor owns its timers.
    Member {
        /// The share-group identifier (the plan fingerprint).
        group: u64,
        /// True when this member created the group — the executor must
        /// start the group's window-tick chain.
        new_group: bool,
        /// The group's incarnation (see [`GroupRoute::epoch`]): the tick
        /// chain the executor starts is stamped with it, so a chain armed
        /// for a retired incarnation stops instead of double-driving a
        /// later group with the same fingerprint.
        epoch: u64,
        /// The group's window slide (tick period).
        slide: Duration,
        /// The member's soft-state lease duration.
        lease: Duration,
    },
}

/// Outcome of removing a member query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UninstallOutcome {
    /// True when the query was a share-group member here.
    pub was_member: bool,
    /// Set when the member was its group's last: the group has been retired
    /// and the executor should sweep its interned schemas.
    pub retired_group: Option<u64>,
}

impl UninstallOutcome {
    /// The "not ours" outcome.
    pub fn not_member() -> Self {
        UninstallOutcome {
            was_member: false,
            retired_group: None,
        }
    }
}

/// Where a group's closed-window partials travel: the DHT namespace/key
/// whose routing identifier names the group's window root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRoute {
    /// The group's window-partial namespace (`g{fingerprint:016x}.windows`).
    pub namespace: String,
    /// The root key hashed to locate the group's window root.
    pub root_key: String,
    /// The group's window slide (tick re-arm period).
    pub slide: Duration,
    /// The group's **incarnation**: groups share a fingerprint across
    /// retire/re-create cycles (the last member leaves, a new
    /// constant-varied query re-forms the group), but every incarnation
    /// gets a fresh epoch.  The executor's tick chain carries the epoch it
    /// was armed with and stops when it no longer matches, so a stale
    /// pending timer from a retired incarnation cannot stack a duplicate
    /// permanent tick chain onto the new one.
    pub epoch: u64,
}

/// One member query's per-window result emission, produced at the group's
/// window root and forwarded by the executor to the member's proxy.
#[derive(Debug, Clone)]
pub struct SharedEmission {
    /// The member query.
    pub query_id: u64,
    /// The member's proxy node (results destination).
    pub proxy: NodeAddr,
    /// Window start (inclusive).
    pub window_start: SimTime,
    /// Window end (exclusive).
    pub window_end: SimTime,
    /// Rows retracted by this emission (delta mode).
    pub retracts: Vec<Tuple>,
    /// Rows inserted by this emission.
    pub inserts: Vec<Tuple>,
}

/// What one group tick produced.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Closed-window partials to ship one hop toward the group's root —
    /// one stream per group, however many members it serves.
    pub partials: Vec<Tuple>,
    /// Per-member emissions (non-empty only at the group's root).
    pub emissions: Vec<SharedEmission>,
}

/// Diagnostics of the sharing layer at one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Live share groups.
    pub groups: usize,
    /// Member queries across all groups.
    pub members: usize,
    /// Open windows across all shared stores.
    pub open_windows: usize,
    /// Accumulator groups across all shared stores (state footprint).
    pub state_groups: usize,
    /// Ingest chunks absorbed.
    pub chunks_absorbed: u64,
    /// Rows scanned by the predicate index.
    pub rows_absorbed: u64,
    /// Rows selected by at least one member (folded into shared state).
    pub rows_selected: u64,
}

/// A pluggable cross-query sharing layer (implemented by `pier-mqo`).
///
/// All methods are infallible from the executor's point of view: a layer
/// that cannot handle something answers `NotShareable` / `None` / `false`
/// and the executor falls back to independent per-query execution, so
/// plugging a layer in can never change *which* queries run — only how
/// much work they share.
pub trait MultiQuerySharing: std::fmt::Debug + Send {
    /// Attach the node's telemetry hub.  Layers that instrument themselves
    /// (share-group membership events, predicate-index fan-out counters —
    /// `pier-mqo` does) override this; the default keeps plain layers
    /// oblivious.
    fn set_telemetry(&mut self, _tel: pier_telemetry::Telemetry) {}

    /// Offer a freshly disseminated plan for shared installation.
    fn try_install(&mut self, plan: &QueryPlan, now: SimTime) -> InstallOutcome;

    /// Renew a member's soft-state lease (a re-dissemination arrived).
    /// `false` when the query is not a member here.
    fn renew(&mut self, query_id: u64, now: SimTime) -> bool;

    /// Remove a member query (timeout or lease lapse), refcounting its
    /// group down and retiring the group when it was the last member.
    fn uninstall(&mut self, query_id: u64) -> UninstallOutcome;

    /// The member's lease expiry instant; `None` when not a member.
    fn lease_expires_at(&self, query_id: u64) -> Option<SimTime>;

    /// True when some share group consumes `namespace`'s tuple stream.
    fn wants_namespace(&self, namespace: &str) -> bool;

    /// Absorb one arriving chunk of `namespace` into every share group
    /// reading it (the shared ingest: one scan, N members).
    fn absorb_chunk(&mut self, namespace: &str, chunk: &ColumnChunk, now: SimTime);

    /// Absorb one arriving tuple (the unbatched delivery path).  The
    /// default wraps it into a one-row chunk and reuses
    /// [`MultiQuerySharing::absorb_chunk`]; layers with a cheaper row path
    /// can override.
    fn absorb_tuple(&mut self, namespace: &str, tuple: &Tuple, now: SimTime) {
        let batch = crate::tuple::TupleBatch::new(vec![tuple.clone()]);
        for chunk in batch.chunks() {
            self.absorb_chunk(namespace, chunk, now);
        }
    }

    /// Absorb a relayed closed-window partial if `namespace` belongs to a
    /// share group.  `None` when it does not (the executor continues its
    /// own routing); `Some((group, absorbed))` otherwise — `absorbed` is
    /// `false` when the group's budget refused the partial.  At **upcall
    /// (en-route) hops** the executor re-ships refused partials toward the
    /// root so a relay's budget cannot lose them; a refusal at the root
    /// itself is a drop, exactly like the per-query best-effort policy.
    fn absorb_window_partial(&mut self, namespace: &str, tuple: &Tuple) -> Option<(u64, bool)>;

    /// The partial route of a live group; `None` once the group is retired
    /// (which also stops the executor's tick chain).
    fn group_route(&self, group: u64) -> Option<GroupRoute>;

    /// Member query ids of a live group, ascending (empty when the group is
    /// unknown).  Tracing charges shared work to the first — the group's
    /// canonical member — so `share.flush` spans have a stable attribution
    /// however many queries ride the group.
    fn member_ids(&self, _group: u64) -> Vec<u64> {
        Vec::new()
    }

    /// One window-maintenance tick for `group`: close due windows, return
    /// the partial stream to ship and (at the root) per-member emissions.
    fn tick(&mut self, group: u64, now: SimTime, is_root: bool) -> TickOutput;

    /// Diagnostics snapshot.
    fn stats(&self) -> SharingStats;
}

/// True for table names of the share-group-scoped form
/// `g{16 hex digits}.{suffix}` — the namespaces a share group interns
/// (`g{fp:016x}.wp`, `g{fp:016x}.windows`, `g{fp:016x}.gv`, …) and the
/// shapes the teardown sweep may evict.  User tables that merely start with
/// `g` do not match.
pub fn is_share_scoped_table(table: &str) -> bool {
    let Some(rest) = table.strip_prefix('g') else {
        return false;
    };
    let Some(dot) = rest.find('.') else {
        return false;
    };
    dot == 16 && rest.as_bytes()[..dot].iter().all(u8::is_ascii_hexdigit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_scoped_tables_are_recognised() {
        assert!(is_share_scoped_table("g00000000deadbeef.wp"));
        assert!(is_share_scoped_table("gabcdef0123456789.windows"));
        assert!(!is_share_scoped_table("gossip.live"));
        assert!(!is_share_scoped_table("g123.wp"), "too few hex digits");
        assert!(!is_share_scoped_table("g00000000deadbeef"), "no suffix");
        assert!(!is_share_scoped_table("q42.wp"));
    }

    #[test]
    fn uninstall_outcome_default_is_not_member() {
        let out = UninstallOutcome::not_member();
        assert!(!out.was_member);
        assert!(out.retired_group.is_none());
    }
}
