//! Secondary indexes (§3.3.3).
//!
//! A *primary* index in PIER is just the table published into the DHT with
//! the partitioning attributes as the index key.  A *secondary* index is, in
//! the paper's words, "simply [a table] of (index-key, tupleID) pairs,
//! published with index-key as the partitioning key.  The tupleID has to be
//! an identifier that PIER can use to access the tuple (e.g., a DHT name).
//! PIER provides no automated logic to maintain consistency between the
//! secondary index and the base tuples."
//!
//! To use one, "a query explicitly specif[ies] a semi-join between the
//! secondary index and the original table; the index serves as the 'outer'
//! relation of a Fetch Matches join that follows the tupleID to fetch the
//! correct tuples from the correct nodes."
//!
//! This module provides exactly those two pieces:
//!
//! * [`index_entry`] / [`index_entries`] build the (index-key, tupleID)
//!   tuples a publisher stores alongside its base tuples (the publisher — not
//!   PIER — is responsible for keeping them in sync), and
//! * [`lookup_plan`] builds the two-step query: equality-index dissemination
//!   to the index partition, selection on the index key, then a Fetch
//!   Matches join that follows `tupleID` (the base table's partitioning key)
//!   back to the base tuples.

use crate::expr::Expr;
use crate::plan::{
    Dissemination, OpGraph, OperatorSpec, PlanBuilder, QueryPlan, SinkSpec, SourceSpec,
};
use crate::tuple::Tuple;
use crate::value::Value;
use pier_runtime::{Duration, NodeAddr};

/// Column of an index entry holding the indexed value.
pub const INDEX_KEY_COL: &str = "index_key";
/// Column of an index entry naming the base table (the tupleID's namespace).
pub const BASE_NAMESPACE_COL: &str = "base_ns";
/// Column of an index entry holding the base tuple's partitioning key (the
/// tupleID's key — what a DHT `get` on the base table needs).
pub const BASE_KEY_COL: &str = "base_key";

/// Conventional name of the secondary index table over `base_table(column)`.
pub fn index_table_name(base_table: &str, column: &str) -> String {
    format!("{base_table}__idx_{column}")
}

/// Build one secondary-index entry for `tuple`:
/// `(index_key = tuple[index_col], tupleID = (base_table, base key))`.
///
/// Returns `None` when the tuple is missing either the indexed column or the
/// base partitioning key — a malformed tuple simply is not indexed, matching
/// the best-effort policy of §3.3.4.
pub fn index_entry(
    base_table: &str,
    base_key_cols: &[String],
    index_col: &str,
    tuple: &Tuple,
) -> Option<Tuple> {
    let index_value = tuple.get(index_col)?.clone();
    let base_key = tuple.partition_key(base_key_cols)?;
    // Fixed shape: one intern for the whole entry (push would re-intern
    // every prefix shape on this publish hot path).
    Some(Tuple::from_parts(
        index_table_name(base_table, index_col),
        vec![
            INDEX_KEY_COL.to_string(),
            BASE_NAMESPACE_COL.to_string(),
            BASE_KEY_COL.to_string(),
        ],
        vec![
            index_value,
            Value::str(base_table),
            Value::Str(base_key.into()),
        ],
    ))
}

/// Build the index entries for several indexed columns at once.
pub fn index_entries(
    base_table: &str,
    base_key_cols: &[String],
    index_cols: &[String],
    tuple: &Tuple,
) -> Vec<Tuple> {
    index_cols
        .iter()
        .filter_map(|col| index_entry(base_table, base_key_cols, col, tuple))
        .collect()
}

/// The partitioning key columns of a secondary index table (always the
/// indexed value).
pub fn index_partition_cols() -> Vec<String> {
    vec![INDEX_KEY_COL.to_string()]
}

/// Build the semi-join lookup plan: route to the index partition for
/// `index_value`, select the matching entries, and Fetch Matches the base
/// tuples through their tupleIDs.  The result tuples carry the columns of
/// the base table joined with the index entry.
pub fn lookup_plan(
    proxy: NodeAddr,
    base_table: &str,
    index_col: &str,
    index_value: Value,
    timeout: Duration,
) -> QueryPlan {
    let index_table = index_table_name(base_table, index_col);
    let output_table = format!("{base_table}__via_{index_col}");
    PlanBuilder::new(proxy)
        .dissemination(Dissemination::ByKey {
            namespace: index_table.clone(),
            key: index_value.key_string(),
        })
        .timeout(timeout)
        .opgraph(OpGraph {
            id: 0,
            source: SourceSpec::Table {
                namespace: index_table,
            },
            join: None,
            ops: vec![
                // The partition may hold entries for other values that hash
                // to the same node; keep only the requested key.
                OperatorSpec::Selection(Expr::eq(INDEX_KEY_COL, index_value)),
                // Follow the tupleID: the index entry is the *outer* relation
                // of a Fetch Matches join into the base table.
                OperatorSpec::FetchByTupleId {
                    inner_namespace: base_table.to_string(),
                    id_col: BASE_KEY_COL.to_string(),
                    output_table,
                },
            ],
            sink: SinkSpec::ToProxy,
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_row(file: &str, keyword: &str, size: i64) -> Tuple {
        Tuple::new(
            "files",
            vec![
                ("file", Value::Str(file.into())),
                ("keyword", Value::Str(keyword.into())),
                ("size", Value::Int(size)),
            ],
        )
    }

    #[test]
    fn index_entry_points_back_at_the_base_tuple() {
        let base_key = vec!["file".to_string()];
        let row = file_row("a.mp3", "rock", 123);
        let entry = index_entry("files", &base_key, "keyword", &row).unwrap();
        assert_eq!(entry.table(), "files__idx_keyword");
        assert_eq!(entry.get(INDEX_KEY_COL), Some(&Value::Str("rock".into())));
        assert_eq!(
            entry.get(BASE_NAMESPACE_COL),
            Some(&Value::Str("files".into()))
        );
        assert_eq!(
            entry.get(BASE_KEY_COL),
            Some(&Value::Str(row.partition_key(&base_key).unwrap().into()))
        );
    }

    #[test]
    fn malformed_tuples_are_not_indexed() {
        let base_key = vec!["file".to_string()];
        let missing_index_col = Tuple::new("files", vec![("file", Value::Str("x".into()))]);
        assert!(index_entry("files", &base_key, "keyword", &missing_index_col).is_none());
        let missing_base_key = Tuple::new("files", vec![("keyword", Value::Str("rock".into()))]);
        assert!(index_entry("files", &base_key, "keyword", &missing_base_key).is_none());
    }

    #[test]
    fn multiple_indexes_produce_one_entry_each() {
        let base_key = vec!["file".to_string()];
        let row = file_row("a.mp3", "rock", 123);
        let entries = index_entries(
            "files",
            &base_key,
            &["keyword".to_string(), "size".to_string()],
            &row,
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].table(), "files__idx_keyword");
        assert_eq!(entries[1].table(), "files__idx_size");
    }

    #[test]
    fn lookup_plan_routes_to_the_index_partition_and_fetches_the_base() {
        let plan = lookup_plan(
            NodeAddr(4),
            "files",
            "keyword",
            Value::Str("rock".into()),
            5_000_000,
        );
        match &plan.dissemination {
            Dissemination::ByKey { namespace, key } => {
                assert_eq!(namespace, "files__idx_keyword");
                assert_eq!(key, &Value::Str("rock".into()).key_string());
            }
            other => panic!("expected ByKey dissemination, got {other:?}"),
        }
        let graph = &plan.opgraphs[0];
        assert!(matches!(graph.ops[0], OperatorSpec::Selection(_)));
        match &graph.ops[1] {
            OperatorSpec::FetchByTupleId {
                inner_namespace,
                id_col,
                ..
            } => {
                assert_eq!(inner_namespace, "files");
                assert_eq!(id_col, BASE_KEY_COL);
            }
            other => panic!("expected FetchByTupleId, got {other:?}"),
        }
    }
}
