//! # pier-core — the PIER query processor
//!
//! This crate is the paper's primary contribution: a relational query
//! processor designed to run on thousands of Internet nodes over a DHT
//! overlay (`pier-dht`) and an event-driven runtime (`pier-runtime`).
//!
//! * [`value`] / [`tuple`] — self-describing tuples with best-effort typing
//!   (no catalog, §3.3.1), held zero-copy: values share string/bytes
//!   payloads behind `Arc`s, tuples pair an interned `Arc<Schema>` with an
//!   `Arc<[Value]>` (cloning is allocation-free), and [`tuple::TupleBatch`]
//!   stores same-schema runs **columnar** ([`tuple::ColumnChunk`], one typed
//!   [`column::Column`] per column — native `i64`/`f64` buffers, dictionary
//!   or arena strings, validity bitmaps) for batch-at-a-time operator scans
//!   and schema-amortised wire accounting.
//! * [`expr`] — predicate and scalar expressions with discard-on-mismatch
//!   semantics (§3.3.4 "Malformed Tuples"), plus their compiled form
//!   ([`expr::CompiledExpr`]/[`expr::CompiledPredicate`]): column names
//!   resolve to positional indices once per interned schema, so selections
//!   and eddies evaluate by index over rows or columnar chunks.
//! * [`aggregate`] — mergeable partial aggregates (distributive/algebraic
//!   classification) used by hierarchical aggregation.
//! * [`eddy`] — the adaptive eddy operator of §4.2.2: runtime reordering of
//!   commutative filters with observation-driven (lottery) routing and
//!   mergeable cross-node statistics.
//! * [`operators`] — the local physical operators: selection, projection,
//!   duplicate elimination, group-by, top-k, limit, queues, Bloom filters,
//!   Symmetric Hash join, and the push-based [`operators::Pipeline`]
//!   realising the non-blocking local dataflow of §3.3.5.
//! * [`plan`] — UFL-style physical plans: opgraphs, sources, sinks
//!   (to-proxy, DHT rehash/Exchange, hierarchical aggregation), and the
//!   dissemination strategies of §3.3.3.
//! * [`node`] — [`node::PierNode`], the runnable node program combining the
//!   overlay and the executor: query dissemination, opgraph installation,
//!   Fetch Matches index joins, hierarchical aggregation with in-network
//!   combining, rehash-based Symmetric Hash joins, proxy result delivery
//!   and timeout-based query termination (§3.3.2).
//! * [`sqlish`] — the "naive SQL-like language" front end of §4.2: a small
//!   SELECT-FROM-WHERE-GROUP BY parser and planner, reflecting the paper's
//!   observation that users preferred SQL to raw UFL.
//!
//! ## Invariants
//!
//! * **Schema interning**: schemas are immutable and interned process-wide
//!   ([`tuple::SchemaRegistry`]); `Arc::ptr_eq` on two live schema handles
//!   is equivalent to deep equality.  Every per-schema cache
//!   ([`tuple::ColumnResolver`], [`tuple::ColumnRef`],
//!   [`expr::CompiledPredicate`], operator output-schema caches) keys on
//!   this.  Query teardown sweeps no-longer-referenced query-scoped shapes
//!   ([`tuple::SchemaRegistry::sweep_matching`]), so the registry stays
//!   bounded by the live working set.
//! * **Parallel shapes**: a tuple's value slice is parallel to its schema's
//!   columns (equal arity); a [`tuple::ColumnChunk`]'s column vectors are
//!   parallel to its schema's columns and of equal length.
//! * **Batch equivalence**: every `push_batch`/`push_chunk` override
//!   produces exactly the tuples per-row dispatch would (pinned by the
//!   batching-equivalence tests); batches preserve row order across the
//!   columnar round trip bit-for-bit (property-tested).
//! * **Best effort everywhere** (§3.3.4): malformed tuples (missing
//!   columns, incompatible types) are silently discarded by the operator
//!   that notices, never surfaced as query errors.
//!
//! See `ARCHITECTURE.md` at the repository root for the cross-crate
//! picture (life of a query, message flows).

pub mod admission;
pub mod aggregate;
pub mod column;
pub mod eddy;
pub mod expr;
pub mod node;
pub mod operators;
pub mod plan;
pub mod range_index;
pub mod recursive;
pub mod secondary_index;
pub mod sharing;
pub mod sqlish;
pub mod tuple;
pub mod value;

pub use admission::{
    AdmissionControl, AdmissionDecision, AdmissionFactory, AdmissionVerdict, EnvModel, SloBudget,
    SloPolicy,
};
pub use aggregate::{AggClass, AggFunc, AggState, PartialDecoder};
pub use column::{Bitmap, Column, DICT_MAX};
pub use eddy::{
    Eddy, EddyFilter, OperatorObservation, PredicateFilter, RoutingPolicy, EDDY_REORDER_ROWS,
    OBS_HALF_LIFE_ROWS,
};
pub use expr::{ArithOp, CmpOp, CompiledExpr, CompiledPredicate, EvalError, Expr};
pub use node::{CqDiagnostics, PierConfig, PierMsg, PierNode, PierOut, PierTimer};
pub use operators::{
    nested_loop_join, BloomFilter, Distinct, GroupBy, JoinSide, Limit, LocalOperator, Pipeline,
    Projection, Queue, Selection, SymmetricHashJoin, TopK,
};
pub use pier_cq::{CqBudget, DeltaMode, WindowSpec};
pub use pier_telemetry::{SpanRecord, Telemetry, TelemetryConfig, TelemetryHub, TraceEvent};
pub use pier_trace::{trace_id_for, TraceConfig, TraceContext};
pub use plan::{
    CqSpec, Dissemination, JoinSpec, OpGraph, OperatorSpec, PlanBuilder, QpObject, QueryPlan,
    SinkSpec, SourceSpec,
};
pub use range_index::RangeIndexConfig;
pub use recursive::TransitiveClosure;
pub use sharing::{
    GroupRoute, InstallOutcome, MultiQuerySharing, SharedEmission, SharingFactory, SharingStats,
    TickOutput, UninstallOutcome,
};
pub use tuple::{
    ChunkRow, ColumnChunk, ColumnRef, ColumnResolver, Schema, SchemaRegistry, Tuple, TupleBatch,
};
pub use value::{Value, ValueRef};
