//! # pier-core — the PIER query processor
//!
//! This crate is the paper's primary contribution: a relational query
//! processor designed to run on thousands of Internet nodes over a DHT
//! overlay (`pier-dht`) and an event-driven runtime (`pier-runtime`).
//!
//! * [`value`] / [`tuple`] — self-describing tuples with best-effort typing
//!   (no catalog, §3.3.1).
//! * [`expr`] — predicate and scalar expressions with discard-on-mismatch
//!   semantics (§3.3.4 "Malformed Tuples").
//! * [`aggregate`] — mergeable partial aggregates (distributive/algebraic
//!   classification) used by hierarchical aggregation.
//! * [`eddy`] — the adaptive eddy operator of §4.2.2: runtime reordering of
//!   commutative filters with observation-driven (lottery) routing and
//!   mergeable cross-node statistics.
//! * [`operators`] — the local physical operators: selection, projection,
//!   duplicate elimination, group-by, top-k, limit, queues, Bloom filters,
//!   Symmetric Hash join, and the push-based [`operators::Pipeline`]
//!   realising the non-blocking local dataflow of §3.3.5.
//! * [`plan`] — UFL-style physical plans: opgraphs, sources, sinks
//!   (to-proxy, DHT rehash/Exchange, hierarchical aggregation), and the
//!   dissemination strategies of §3.3.3.
//! * [`node`] — [`node::PierNode`], the runnable node program combining the
//!   overlay and the executor: query dissemination, opgraph installation,
//!   Fetch Matches index joins, hierarchical aggregation with in-network
//!   combining, rehash-based Symmetric Hash joins, proxy result delivery
//!   and timeout-based query termination (§3.3.2).
//! * [`sqlish`] — the "naive SQL-like language" front end of §4.2: a small
//!   SELECT-FROM-WHERE-GROUP BY parser and planner, reflecting the paper's
//!   observation that users preferred SQL to raw UFL.

pub mod aggregate;
pub mod eddy;
pub mod expr;
pub mod node;
pub mod operators;
pub mod plan;
pub mod range_index;
pub mod recursive;
pub mod secondary_index;
pub mod sqlish;
pub mod tuple;
pub mod value;

pub use aggregate::{AggClass, AggFunc, AggState};
pub use eddy::{Eddy, EddyFilter, OperatorObservation, PredicateFilter, RoutingPolicy};
pub use expr::{ArithOp, CmpOp, EvalError, Expr};
pub use node::{CqDiagnostics, PierConfig, PierMsg, PierNode, PierOut, PierTimer};
pub use operators::{
    nested_loop_join, BloomFilter, Distinct, GroupBy, JoinSide, Limit, LocalOperator, Pipeline,
    Projection, Queue, Selection, SymmetricHashJoin, TopK,
};
pub use pier_cq::{CqBudget, DeltaMode, WindowSpec};
pub use plan::{
    CqSpec, Dissemination, JoinSpec, OpGraph, OperatorSpec, PlanBuilder, QpObject, QueryPlan,
    SinkSpec, SourceSpec,
};
pub use range_index::RangeIndexConfig;
pub use recursive::TransitiveClosure;
pub use tuple::{ColumnRef, ColumnResolver, Schema, SchemaRegistry, Tuple, TupleBatch};
pub use value::Value;
